"""Cortex-M3-like microcontroller simulator with an energy model.

This package stands in for the paper's power-instrumented STM32VLDISCOVERY
board.  It executes linked :class:`~repro.machine.MachineProgram` objects,
counts cycles (including the RAM-contention stalls the paper's ``L_b``
parameter models), attributes per-cycle power according to which memory the
instruction stream is fetched from (flash or RAM, Figure 1), and produces
per-block execution counts used as the "actual frequency" input of Figure 5.

Two timing models are available (``repro.sim.pipeline``): the default
``flat`` accounting the paper calibrates against, and an opt-in
``pipelined`` model with fetch/execute overlap, branch-flush and load-use
hazards, and an optional direct-mapped instruction cache in front of flash.
``flat`` runs are bitwise identical whether or not the pipelined code path
exists; select a model per run with ``Simulator(..., timing_model=...)``.
"""

from repro.sim.memory import MemorySystem, MemoryError_
from repro.sim.energy import EnergyModel, PowerTable, DEFAULT_POWER_TABLE
from repro.sim.profiler import BlockProfile
from repro.sim.pipeline import TIMING_MODELS, TimingSpec
from repro.sim.cpu import Simulator, SimulationResult, SimulationError

__all__ = [
    "MemorySystem",
    "MemoryError_",
    "EnergyModel",
    "PowerTable",
    "DEFAULT_POWER_TABLE",
    "BlockProfile",
    "TIMING_MODELS",
    "TimingSpec",
    "Simulator",
    "SimulationResult",
    "SimulationError",
]
