"""Cortex-M3-like microcontroller simulator with an energy model.

This package stands in for the paper's power-instrumented STM32VLDISCOVERY
board.  It executes linked :class:`~repro.machine.MachineProgram` objects,
counts cycles (including the RAM-contention stalls the paper's ``L_b``
parameter models), attributes per-cycle power according to which memory the
instruction stream is fetched from (flash or RAM, Figure 1), and produces
per-block execution counts used as the "actual frequency" input of Figure 5.
"""

from repro.sim.memory import MemorySystem, MemoryError_
from repro.sim.energy import EnergyModel, PowerTable, DEFAULT_POWER_TABLE
from repro.sim.profiler import BlockProfile
from repro.sim.cpu import Simulator, SimulationResult, SimulationError

__all__ = [
    "MemorySystem",
    "MemoryError_",
    "EnergyModel",
    "PowerTable",
    "DEFAULT_POWER_TABLE",
    "BlockProfile",
    "Simulator",
    "SimulationResult",
    "SimulationError",
]
