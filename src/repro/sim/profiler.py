"""Block-level execution profiling.

The profile provides the "actual basic block frequency" variant of the
paper's ``F_b`` parameter (the dots in Figure 5), as opposed to the static
loop-depth estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class BlockProfile:
    """Execution counts and cycle totals per (function-qualified) block key."""

    counts: Dict[str, int] = field(default_factory=dict)
    cycles: Dict[str, int] = field(default_factory=dict)

    def record(self, block_key: str, cycles: int) -> None:
        self.counts[block_key] = self.counts.get(block_key, 0) + 1
        self.cycles[block_key] = self.cycles.get(block_key, 0) + cycles

    def count(self, block_key: str) -> int:
        return self.counts.get(block_key, 0)

    def total_executions(self) -> int:
        return sum(self.counts.values())

    def hottest(self, limit: int = 10):
        """The *limit* most frequently executed blocks, hottest first."""
        ranked = sorted(self.counts.items(), key=lambda kv: kv[1], reverse=True)
        return ranked[:limit]
