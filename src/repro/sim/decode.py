"""Decode-once predecoding of machine blocks for the simulator hot loop.

The seed simulator re-classified every instruction on every execution: a long
``if/elif`` chain over opcodes, ``isinstance`` checks per operand, symbol
resolution per symbolic operand and a fresh cycle/energy computation per
instruction.  For loop-heavy kernels the same handful of blocks is executed
thousands of times, so all of that work is pure overhead.

This module performs the classification exactly once per block (the
fetch/decode/execute split of classic simulators): each
:class:`~repro.machine.blocks.MachineBlock` is lazily lowered to a list of
:class:`DecodedInstr` records whose ``run`` field is a closure with

* the handler pre-bound (no opcode dispatch at execution time),
* register operands reduced to plain indices and immediate/symbolic operands
  pre-resolved to concrete 32-bit values,
* the taken/not-taken cycle costs, the energy-model instruction class and the
  RAM-contention eligibility precomputed.

The records are cached on the block itself (``block._decode_cache``) stamped
with the program's ``layout_generation``, so any re-layout — in particular the
flash-RAM placement transformation, which moves blocks between sections and
rewrites terminators — transparently invalidates the cache.

Decoding is *observably* identical to the seed interpreter: decode-time errors
(unresolved symbols, unknown callees, inexecutable opcodes) are wrapped into
records that raise the same :class:`SimulationError` only if and when the
faulty instruction is actually executed.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.isa.conditions import Cond, cond_holds
from repro.isa.instructions import Imm, InstrClass, MachineInstr, Opcode, RegList, Sym
from repro.isa.registers import PC, Reg
from repro.isa.timing import cycles_for, instr_class, load_dest, registers_read
from repro.machine.blocks import MachineBlock
from repro.machine.program import MachineProgram

_MASK = 0xFFFFFFFF

#: Shared "no data access, no control transfer" result tuple.
NO_EFFECT: Tuple[None, None] = (None, None)
_RAM_EFFECT: Tuple[str, None] = ("ram", None)

#: Opcodes eligible for the RAM-bus contention stall (the paper's ``L_b``).
_CONTENTION_OPS = frozenset({Opcode.LDR, Opcode.LDRB, Opcode.STR,
                             Opcode.STRB, Opcode.LDR_LIT})

#: Opcodes whose cycle cost depends on whether the branch was taken.
_CONDITIONAL_OPS = frozenset({Opcode.BCC, Opcode.CBZ, Opcode.CBNZ})


class SimulationError(Exception):
    """Raised on illegal execution (unknown symbol, runaway loop, bad jump)."""


def _signed(value: int) -> int:
    value &= _MASK
    return value - (1 << 32) if value & 0x80000000 else value


def resolve_symbol(program: MachineProgram, name: str, current_function: str) -> int:
    """Resolve a symbolic operand to an address (global, function or block)."""
    if name in program.global_addresses:
        return program.global_addresses[name]
    if name in program.functions:
        entry = program.functions[name].entry_block
        if entry.address is None:
            raise SimulationError(f"function {name} has no address")
        return entry.address
    function = program.functions[current_function]
    if name in function.blocks:
        block = function.blocks[name]
        if block.address is None:
            raise SimulationError(f"block {name} has no address")
        return block.address
    raise SimulationError(f"unresolved symbol {name!r} in {current_function}")


class DecodedInstr:
    """One predecoded instruction: a pre-bound handler plus static metadata.

    ``run(sim)`` performs the instruction's effect on the simulator state and
    returns ``(data_region, transfer)``, mirroring the dynamic part of the
    seed interpreter's ``_execute`` result.
    """

    __slots__ = ("run", "cycles_taken", "cycles_not_taken", "klass",
                 "klass_value", "contention", "conditional", "is_it",
                 "predicated", "cond", "instr", "load_dst", "reads")

    def __init__(self, instr: MachineInstr):
        self.instr = instr
        self.cycles_taken = cycles_for(instr, taken=True)
        self.cycles_not_taken = cycles_for(instr, taken=False)
        self.klass = instr_class(instr)
        # Load-use hazard metadata for the pipelined timing model
        # (repro.sim.pipeline); unused by the flat execution paths.
        self.load_dst = load_dest(instr)
        self.reads = registers_read(instr)
        # Plain-string mirror of ``klass`` for energy-count keys: strings
        # hash at C speed (and cache it), Enum.__hash__ is a Python call.
        self.klass_value = self.klass.value
        self.contention = instr.opcode in _CONTENTION_OPS
        self.conditional = instr.opcode in _CONDITIONAL_OPS
        self.is_it = instr.opcode is Opcode.IT
        self.predicated = instr.predicated
        self.cond = instr.cond
        self.run = None  # type: ignore[assignment]


class DecodedBlock:
    """All predecoded records of one block plus its static fetch region.

    ``chainable`` marks blocks eligible for superblock formation
    (:mod:`repro.sim.superblock`): no predication (``it`` blocks carry
    cross-instruction condition state the straight-line fast path does not
    model) and no deferred decode errors (a faulty instruction must keep its
    execute-time error semantics, so the block stays on the generic path).
    """

    __slots__ = ("records", "fetch_region", "fetch_is_ram", "chainable")

    def __init__(self, records: List[DecodedInstr], fetch_region: str,
                 chainable: bool = False):
        self.records = records
        self.fetch_region = fetch_region
        self.fetch_is_ram = fetch_region == "ram"
        self.chainable = chainable


# --------------------------------------------------------------------------- #
# Operand lowering
# --------------------------------------------------------------------------- #
def _operand_cv(operand, program: MachineProgram,
                function_name: str) -> Tuple[Optional[int], Optional[int]]:
    """Lower an operand to ``(const_value, reg_index)``; exactly one is set."""
    if isinstance(operand, Reg):
        return None, operand.index
    if isinstance(operand, Imm):
        return operand.value & _MASK, None
    if isinstance(operand, Sym):
        return (resolve_symbol(program, operand.name, function_name)
                + operand.addend) & _MASK, None
    raise SimulationError(f"cannot evaluate operand {operand!r}")


# --------------------------------------------------------------------------- #
# Handler builders (one closure per instruction, bound at decode time)
# --------------------------------------------------------------------------- #
def _alu_add(a, b):
    return a + b


def _alu_sub(a, b):
    return a - b


def _alu_rsb(a, b):
    return b - a


def _alu_mul(a, b):
    return a * b


def _alu_sdiv(a, b):
    sa, sb = _signed(a), _signed(b)
    return 0 if sb == 0 else int(sa / sb)


def _alu_udiv(a, b):
    return 0 if b == 0 else a // b


def _alu_and(a, b):
    return a & b


def _alu_orr(a, b):
    return a | b


def _alu_eor(a, b):
    return a ^ b


def _alu_lsl(a, b):
    return a << (b & 31)


def _alu_lsr(a, b):
    return a >> (b & 31)


def _alu_asr(a, b):
    return _signed(a) >> (b & 31)


_ALU_FUNCS = {
    Opcode.ADD: _alu_add,
    Opcode.SUB: _alu_sub,
    Opcode.RSB: _alu_rsb,
    Opcode.MUL: _alu_mul,
    Opcode.SDIV: _alu_sdiv,
    Opcode.UDIV: _alu_udiv,
    Opcode.AND: _alu_and,
    Opcode.ORR: _alu_orr,
    Opcode.EOR: _alu_eor,
    Opcode.LSL: _alu_lsl,
    Opcode.LSR: _alu_lsr,
    Opcode.ASR: _alu_asr,
}


def _make_alu(fn, dst: int, a_cv, b_cv):
    ac, ar = a_cv
    bc, br = b_cv
    if ar is None and br is None:
        value = fn(ac, bc) & _MASK

        def run(sim):
            sim.registers[dst] = value
            return NO_EFFECT
    elif br is None:
        def run(sim):
            regs = sim.registers
            regs[dst] = fn(regs[ar], bc) & _MASK
            return NO_EFFECT
    elif ar is None:
        def run(sim):
            regs = sim.registers
            regs[dst] = fn(ac, regs[br]) & _MASK
            return NO_EFFECT
    else:
        def run(sim):
            regs = sim.registers
            regs[dst] = fn(regs[ar], regs[br]) & _MASK
            return NO_EFFECT
    return run


def _make_mov(dst: int, src_cv, invert: bool):
    sc, sr = src_cv
    if sr is None:
        value = (~sc & _MASK) if invert else sc

        def run(sim):
            sim.registers[dst] = value
            return NO_EFFECT
    elif invert:
        def run(sim):
            regs = sim.registers
            regs[dst] = ~regs[sr] & _MASK
            return NO_EFFECT
    else:
        def run(sim):
            regs = sim.registers
            regs[dst] = regs[sr]
            return NO_EFFECT
    return run


def _make_ldr_lit(dst: int, src_cv, region: str):
    sc, sr = src_cv
    effect = (region, None)
    if sr is None:
        def run(sim):
            sim.registers[dst] = sc
            return effect
    else:
        def run(sim):
            regs = sim.registers
            regs[dst] = regs[sr]
            return effect
    return run


def _make_cmp(a_cv, b_cv):
    ac, ar = a_cv
    bc, br = b_cv

    def run(sim):
        regs = sim.registers
        a = regs[ar] if ar is not None else ac
        b = regs[br] if br is not None else bc
        result = (a - b) & _MASK
        sim.flag_n = bool(result & 0x80000000)
        sim.flag_z = result == 0
        sim.flag_c = a >= b
        sim.flag_v = ((a ^ b) & (a ^ result) & 0x80000000) != 0
        return NO_EFFECT
    return run


def _make_load(dst: int, base_cv, off_cv, byte: bool):
    bc, br = base_cv
    oc, orr = off_cv
    if byte:
        def run(sim):
            regs = sim.registers
            base = regs[br] if br is not None else bc
            offset = regs[orr] if orr is not None else oc
            value, region = sim.memory.read_byte_region(
                (base + offset) & _MASK)
            regs[dst] = value
            return region, None
    else:
        def run(sim):
            regs = sim.registers
            base = regs[br] if br is not None else bc
            offset = regs[orr] if orr is not None else oc
            value, region = sim.memory.read_word_region(
                (base + offset) & _MASK)
            regs[dst] = value
            return region, None
    return run


def _make_store(src: int, base_cv, off_cv, byte: bool):
    bc, br = base_cv
    oc, orr = off_cv
    if byte:
        def run(sim):
            regs = sim.registers
            base = regs[br] if br is not None else bc
            offset = regs[orr] if orr is not None else oc
            region = sim.memory.write_byte_region(
                (base + offset) & _MASK, regs[src])
            return region, None
    else:
        def run(sim):
            regs = sim.registers
            base = regs[br] if br is not None else bc
            offset = regs[orr] if orr is not None else oc
            region = sim.memory.write_word_region(
                (base + offset) & _MASK, regs[src])
            return region, None
    return run


def _make_push(indices: List[int]):
    count = len(indices)

    def run(sim):
        regs = sim.registers
        memory = sim.memory
        sp = regs[13] - 4 * count
        address = sp
        for idx in indices:
            memory.write_word(address, regs[idx])
            address += 4
        regs[13] = sp & _MASK
        return _RAM_EFFECT
    return run


def _make_pop(indices: List[int]):
    count = len(indices)

    def run(sim):
        regs = sim.registers
        memory = sim.memory
        sp = regs[13]
        jump_value = None
        position = 0
        for idx in indices:
            value = memory.read_word(sp + 4 * position)
            position += 1
            if idx == 15:
                jump_value = value
            else:
                regs[idx] = value
        regs[13] = (sp + 4 * count) & _MASK
        if jump_value is not None:
            return "ram", sim._transfer_to_address(jump_value)
        return _RAM_EFFECT
    return run


def _make_goto(transfer):
    effect = (None, transfer)

    def run(sim):
        return effect
    return run


def _make_bcc(cond: Cond, transfer):
    taken = (None, transfer)

    def run(sim):
        if cond_holds(cond, sim.flag_n, sim.flag_z, sim.flag_c, sim.flag_v):
            return taken
        return NO_EFFECT
    return run


def _make_cbz(reg: int, transfer, want_zero: bool):
    taken = (None, transfer)

    def run(sim):
        if (sim.registers[reg] == 0) == want_zero:
            return taken
        return NO_EFFECT
    return run


def _make_bx(reg: int):
    def run(sim):
        return None, sim._transfer_to_address(sim.registers[reg])
    return run


def _make_indirect_block(region: str, transfer):
    effect = (region, transfer)

    def run(sim):
        return effect
    return run


def _make_nop():
    def run(sim):
        return NO_EFFECT
    return run


def _make_deferred_error(exc: Exception):
    """Raise *exc* if (and only if) the faulty instruction is executed."""
    def run(sim):
        raise exc
    return run


# --------------------------------------------------------------------------- #
# Block decoding
# --------------------------------------------------------------------------- #
def _build_handler(program: MachineProgram, block: MachineBlock,
                   instr: MachineInstr, index: int):
    op = instr.opcode
    operands = instr.operands
    function_name = block.function_name
    fetch_data_region = "ram" if block.section == "ram" else "flash"

    if op in (Opcode.MOV, Opcode.MVN):
        return _make_mov(operands[0].index,
                         _operand_cv(operands[1], program, function_name),
                         invert=op is Opcode.MVN)

    if op is Opcode.LDR_LIT:
        return _make_ldr_lit(operands[0].index,
                             _operand_cv(operands[1], program, function_name),
                             fetch_data_region)

    alu = _ALU_FUNCS.get(op)
    if alu is not None:
        return _make_alu(alu, operands[0].index,
                         _operand_cv(operands[1], program, function_name),
                         _operand_cv(operands[2], program, function_name))

    if op is Opcode.CMP:
        return _make_cmp(_operand_cv(operands[0], program, function_name),
                         _operand_cv(operands[1], program, function_name))

    if op in (Opcode.LDR, Opcode.LDRB):
        return _make_load(operands[0].index,
                          _operand_cv(operands[1], program, function_name),
                          _operand_cv(operands[2], program, function_name),
                          byte=op is Opcode.LDRB)

    if op in (Opcode.STR, Opcode.STRB):
        return _make_store(operands[0].index,
                           _operand_cv(operands[1], program, function_name),
                           _operand_cv(operands[2], program, function_name),
                           byte=op is Opcode.STRB)

    if op is Opcode.PUSH:
        regs = sorted(operands[0].regs, key=lambda r: r.index)
        return _make_push([reg.index for reg in regs])

    if op is Opcode.POP:
        regs = sorted(operands[0].regs, key=lambda r: r.index)
        return _make_pop([reg.index for reg in regs])

    if op is Opcode.B:
        return _make_goto(("block", (function_name, operands[0].name)))

    if op is Opcode.BCC:
        return _make_bcc(instr.cond,
                         ("block", (function_name, operands[0].name)))

    if op in (Opcode.CBZ, Opcode.CBNZ):
        return _make_cbz(operands[0].index,
                         ("block", (function_name, operands[1].name)),
                         want_zero=op is Opcode.CBZ)

    if op is Opcode.BL:
        callee = operands[0].name
        if callee not in program.functions:
            raise SimulationError(f"call to unknown function {callee!r}")
        return_site = (function_name, block.name, index + 1)
        return _make_goto(("call", (callee, return_site)))

    if op is Opcode.BX:
        return _make_bx(operands[0].index)

    if op is Opcode.LDR_PC_LIT:
        return _make_indirect_block(
            fetch_data_region, ("block", (function_name, operands[0].name)))

    if op in (Opcode.NOP, Opcode.IT):
        return _make_nop()

    raise SimulationError(f"cannot execute {instr}")


def _build_block(program: MachineProgram, block: MachineBlock) -> DecodedBlock:
    records: List[DecodedInstr] = []
    chainable = True
    for index, instr in enumerate(block.instructions):
        record = DecodedInstr(instr)
        try:
            record.run = _build_handler(program, block, instr, index)
        except SimulationError as exc:
            # Match the seed interpreter: the error surfaces only if the
            # instruction is actually executed.
            record.run = _make_deferred_error(exc)
            chainable = False
        if record.is_it or record.predicated:
            chainable = False
        records.append(record)
    fetch_region = "ram" if block.section == "ram" else "flash"
    return DecodedBlock(records, fetch_region, chainable)


def predecode(program: MachineProgram, block: MachineBlock) -> DecodedBlock:
    """Return the decoded form of *block*, building and caching it on demand."""
    stamp = (program.layout_generation, block.section, len(block.instructions))
    cache = block._decode_cache
    if cache is not None and cache[0] == stamp:
        return cache[1]
    decoded = _build_block(program, block)
    block._decode_cache = (stamp, decoded)
    return decoded
