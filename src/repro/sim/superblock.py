"""Trace-compiled superblocks: the simulator's second-stage speed layer.

Decode-once (:mod:`repro.sim.decode`) removed per-instruction *decoding* from
the hot loop, but every executed instruction still paid the interpreter-loop
tax: an instruction-budget check, a record fetch, predication tests, the
conditional/contention branches, four accounting updates and a transfer
check — plus a per-block dict lookup and ``predecode`` call on every control
transfer.  For loop-heavy kernels those overheads dominate once the handlers
themselves are closures.

This module chains *hot* decoded blocks into **superblocks** specialised on
the successor path that was actually observed:

* the simulator counts block entries; when a block crosses
  :data:`HOT_THRESHOLD` it records the trace execution takes next (classic
  trace compilation: the observed path IS the prediction);
* the traced blocks are compiled into one flat :class:`Superblock` — per
  block, runs of "static-accounting" instructions (ALU/moves/compares,
  literal loads, push/pop: everything whose cycles, energy key and lack of
  control transfer are known at decode time) collapse into a single
  **batch step** with ONE cycle add, ONE instruction-count add and one
  energy-counter bump per distinct energy key for the whole segment;
* each node's step list is then flattened into one *generated* Python
  function (:func:`_codegen_node`): handler calls unrolled straight-line,
  all static accounting folded into constants, only data regions and branch
  directions left as run-time branches — the step tuples never pay an
  interpretive dispatch at execution time;
* loads/stores with run-time data regions keep per-instruction accounting
  (their RAM-contention stall and energy key depend on the address), and
  every control-transfer instruction becomes a **guard step**: if the
  transfer goes where the trace predicted, execution continues inside the
  superblock (a trace that closes back on its head runs whole loop
  iterations without ever touching the outer dispatch loop); any other
  outcome is a **side exit** that hands the ordinary transfer back to the
  generic decode-once loop;
* fetch-region and contention flags are hoisted: each constituent block's
  section is static, so its ``cycles_by_section`` bucket and the
  fetch-is-RAM half of the contention predicate are baked into the steps.

Bit-exactness: cycle counts, instruction counts, per-block profile deltas and
section buckets are integer sums, which batching cannot change.  Energy is
exact because the simulator accounts energy as *event counts* per
``(cycles, fetch_region, instr_class, data_region)`` key and reduces them in
one deterministic pass at the end of the run (see ``Simulator._finish``) —
bumping a counter by N for a whole segment is bitwise-identical to bumping
it N times.  The only observable difference is error *timing*: the runaway
guard (``max_instructions``) is checked per constituent block instead of per
instruction, so a diverging program may execute up to one superblock
iteration more before raising the same :class:`SimulationError`.

Invalidation rides ``MachineProgram.layout_generation`` exactly like the
decode cache: superblocks live on the program in a generation-stamped map
(:meth:`~repro.machine.program.MachineProgram.superblock_map`), so any
re-layout — in particular the flash-RAM placement transformation — discards
them wholesale and the next run re-forms them from fresh observations.

Superblocks are **flat-timing only**: their batched accounting bakes in the
flat cycle model, so a simulator constructed with a pipelined
``timing_model`` (:mod:`repro.sim.pipeline`) side-exits before this layer —
``Simulator.run`` dispatches to ``run_pipelined`` ahead of the decode-once
and superblock paths, and never forms or executes superblocks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.isa.instructions import Opcode
from repro.isa.timing import RAM_CONTENTION_STALL
from repro.machine.program import MachineProgram
from repro.sim.decode import SimulationError, predecode

#: Block-entry count after which a block's observed trace is compiled.
HOT_THRESHOLD = 16

#: Maximum number of constituent blocks in one superblock.
MAX_CHAIN = 16

#: Step tags (plain ints: fastest to dispatch on in the executor).  Energy
#: keys are ``(cycles, fetch_region, klass_value, data_region)`` tuples — the
#: same shape the generic loops build, with the InstrClass *value* string so
#: dict operations never call the Python-level ``Enum.__hash__``.
STEP_BATCH = 0   # (tag, runs, n, cycles, energy_items)
STEP_MEM = 1     # (tag, run, cycles, ekey_ram, ekey_flash, ekey_none)
STEP_CTRL = 2    # (tag, run, conditional, cycles_taken, ekey_taken, cycles_nt, ekey_nt)

#: Opcodes whose decoded handler never returns a data region or a transfer
#: and whose cycle cost is static — eligible for batch steps as-is.
_PURE_OPS = frozenset({
    Opcode.MOV, Opcode.MVN, Opcode.ADD, Opcode.SUB, Opcode.RSB, Opcode.MUL,
    Opcode.SDIV, Opcode.UDIV, Opcode.AND, Opcode.ORR, Opcode.EOR, Opcode.LSL,
    Opcode.LSR, Opcode.ASR, Opcode.CMP, Opcode.NOP,
})

#: Loads/stores whose data region (and hence contention and energy key) is
#: only known at run time.
_DYNAMIC_MEM_OPS = frozenset({Opcode.LDR, Opcode.LDRB, Opcode.STR, Opcode.STRB})


def _codegen_node(steps: List[tuple]):
    """Flatten a node's step list into one generated Python function.

    Interpreting the step tuples still pays, per step, a tag dispatch, a
    tuple unpack and the inner ``for run in runs`` loop — measured at more
    than half the superblocked run time on loop-heavy kernels.  Generating
    straight-line source instead removes all of it: handler calls are
    unrolled, every statically-known cycle count and energy bump is folded
    into ONE constant add / one dict update per distinct key for the whole
    node, and only the genuinely dynamic parts remain as branches (the data
    region of a load/store, the direction of a conditional transfer).

    The generated function has signature ``(sim, energy_counts, get)`` and
    returns ``(block_cycles, instructions, transfer)``; handler closures and
    energy-key tuples are bound as keyword defaults, which makes them
    local-variable loads at call time.  Accounting identity with the
    interpreted step loop is exact: cycles and energy-event counts are
    integer sums, so folding and reordering the updates cannot change any
    result bit (see the module docstring).
    """
    binds: Dict[str, object] = {}

    def bind(stem: str, value) -> str:
        name = f"{stem}{len(binds)}"
        binds[name] = value
        return name

    lines: List[str] = ["    cycles = 0", "    transfer = None"]
    static_cycles = 0
    static_energy: Dict[tuple, int] = {}
    count = 0

    def flush() -> None:
        # Apply the statically-known accounting accumulated so far; called
        # before any point the function can return.
        nonlocal static_cycles
        if static_cycles:
            lines.append(f"    cycles += {static_cycles}")
            static_cycles = 0
        for key, bump in static_energy.items():
            k = bind("k", key)
            lines.append(f"    energy_counts[{k}] = get({k}, 0) + {bump}")
        static_energy.clear()

    for position, step in enumerate(steps):
        tag = step[0]
        last = position == len(steps) - 1
        if tag == STEP_BATCH:
            _tag, runs, n, cycles, energy_items = step
            count += n
            static_cycles += cycles
            for run in runs:
                lines.append(f"    {bind('r', run)}(sim)")
            for key, bump in energy_items:
                static_energy[key] = static_energy.get(key, 0) + bump
        elif tag == STEP_MEM:
            _tag, run, cycles, ekey_ram, ekey_flash, ekey_none = step
            count += 1
            kr = bind("k", ekey_ram)
            kf = bind("k", ekey_flash)
            kn = bind("k", ekey_none)
            lines.append(f"    region = {bind('r', run)}(sim)[0]")
            lines.append("    if region == 'ram':")
            lines.append(f"        cycles += {ekey_ram[0]}")
            lines.append(f"        energy_counts[{kr}] = get({kr}, 0) + 1")
            lines.append("    elif region == 'flash':")
            lines.append(f"        cycles += {cycles}")
            lines.append(f"        energy_counts[{kf}] = get({kf}, 0) + 1")
            lines.append("    else:")
            lines.append(f"        cycles += {cycles}")
            lines.append(f"        energy_counts[{kn}] = get({kn}, 0) + 1")
        else:  # STEP_CTRL
            _tag, run, conditional, cycles, ekey_taken, cycles_nt, ekey_nt = step
            count += 1
            if conditional:
                kt = bind("k", ekey_taken)
                knt = bind("k", ekey_nt)
                lines.append(f"    transfer = {bind('r', run)}(sim)[1]")
                lines.append("    if transfer is None:")
                lines.append(f"        cycles += {cycles_nt}")
                lines.append(f"        energy_counts[{knt}] = get({knt}, 0) + 1")
                lines.append("    else:")
                lines.append(f"        cycles += {cycles}")
                lines.append(f"        energy_counts[{kt}] = get({kt}, 0) + 1")
            else:
                # Unconditionally taken: its accounting is static too.
                static_cycles += cycles
                static_energy[ekey_taken] = static_energy.get(ekey_taken, 0) + 1
                lines.append(f"    transfer = {bind('r', run)}(sim)[1]")
            if not last:
                # A mid-node transfer skips the remaining steps, exactly like
                # the interpreted loop's ``break`` (basic blocks normally end
                # at their one control transfer, so this is a cold path).
                flush()
                lines.append("    if transfer is not None:")
                lines.append(f"        return cycles, {count}, transfer")
    flush()
    lines.append(f"    return cycles, {count}, transfer")

    defaults = "".join(f", {name}={name}" for name in binds)
    source = (f"def _run_node(sim, energy_counts, get{defaults}):\n"
              + "\n".join(lines) + "\n")
    namespace = dict(binds)
    exec(compile(source, "<superblock-node>", "exec"), namespace)
    return namespace["_run_node"]


class SuperblockNode:
    """One constituent block of a superblock: compiled steps + statics."""

    __slots__ = ("key", "payload", "function_name", "block_name",
                 "fetch_region", "steps", "run_node", "chain_next",
                 "fall_payload", "next_index")

    def __init__(self, key: str, payload: Tuple[str, str], fetch_region: str,
                 steps: List[tuple], fall_payload: Optional[Tuple[str, str]]):
        self.key = key
        self.payload = payload
        self.function_name, self.block_name = payload
        self.fetch_region = fetch_region
        self.steps = steps
        self.run_node = _codegen_node(steps)
        self.fall_payload = fall_payload
        #: Filled in by :func:`build_superblock` once the chain is known.
        self.chain_next: Optional[Tuple[str, str]] = None
        self.next_index: int = -1


class Superblock:
    """A compiled chain of blocks specialised on one observed path."""

    __slots__ = ("entry_payload", "nodes", "loop")

    def __init__(self, entry_payload: Tuple[str, str],
                 nodes: List[SuperblockNode], loop: bool):
        self.entry_payload = entry_payload
        self.nodes = nodes
        self.loop = loop

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        chain = " -> ".join(f"{fn}/{bn}" for fn, bn in
                            (n.payload for n in self.nodes))
        return f"<Superblock {chain}{' (loop)' if self.loop else ''}>"


def _compile_node(program: MachineProgram, payload: Tuple[str, str]
                  ) -> Optional[SuperblockNode]:
    """Compile one block into a step list, or ``None`` if it is ineligible."""
    function_name, block_name = payload
    block = program.functions[function_name].blocks[block_name]
    decoded = predecode(program, block)
    if not decoded.chainable:
        return None
    fetch_region = decoded.fetch_region
    fetch_is_ram = decoded.fetch_is_ram
    # The data region of a literal load is the block's own fetch section.
    static_data_region = "ram" if block.section == "ram" else "flash"

    steps: List[tuple] = []
    batch_runs: List = []
    batch_cycles = 0
    batch_energy: Dict[tuple, int] = {}

    def flush_batch() -> None:
        nonlocal batch_runs, batch_cycles, batch_energy
        if batch_runs:
            steps.append((STEP_BATCH, tuple(batch_runs), len(batch_runs),
                          batch_cycles, tuple(batch_energy.items())))
            batch_runs, batch_cycles, batch_energy = [], 0, {}

    def batch(record, cycles: int, data_region: Optional[str]) -> None:
        nonlocal batch_cycles
        batch_runs.append(record.run)
        batch_cycles += cycles
        key = (cycles, fetch_region, record.klass_value, data_region)
        batch_energy[key] = batch_energy.get(key, 0) + 1

    for record in decoded.records:
        op = record.instr.opcode
        cycles = record.cycles_taken
        if op in _PURE_OPS:
            batch(record, cycles, None)
        elif op is Opcode.LDR_LIT:
            # Static data region; the contention stall applies exactly when
            # the block executes from RAM (data region == fetch region).
            if fetch_is_ram and static_data_region == "ram":
                cycles += RAM_CONTENTION_STALL
            batch(record, cycles, static_data_region)
        elif op is Opcode.PUSH:
            batch(record, cycles, "ram")
        elif op is Opcode.POP and not any(reg.index == 15 for reg
                                          in record.instr.operands[0].regs):
            batch(record, cycles, "ram")
        elif op in _DYNAMIC_MEM_OPS:
            flush_batch()
            # These ops are all contention-eligible: a RAM data access stalls
            # exactly when the block itself executes from RAM, so the stall
            # is baked into the RAM-region energy key (its cycle component).
            stalled = cycles + RAM_CONTENTION_STALL if fetch_is_ram else cycles
            steps.append((STEP_MEM, record.run, cycles,
                          (stalled, fetch_region, record.klass_value, "ram"),
                          (cycles, fetch_region, record.klass_value, "flash"),
                          (cycles, fetch_region, record.klass_value, None)))
        else:
            # Control transfers: B/BCC/CBZ/CBNZ/BL/BX/LDR_PC_LIT/POP{...,pc}.
            flush_batch()
            data_region: Optional[str] = None
            if op is Opcode.LDR_PC_LIT:
                # Static data region, but LDR_PC_LIT is not a contention op
                # (not in decode._CONTENTION_OPS), so no stall either way.
                data_region = static_data_region
            elif op is Opcode.POP:
                data_region = "ram"
            ekey_taken = (cycles, fetch_region, record.klass_value, data_region)
            cycles_nt = record.cycles_not_taken
            ekey_nt = (cycles_nt, fetch_region, record.klass_value, data_region)
            steps.append((STEP_CTRL, record.run, record.conditional,
                          cycles, ekey_taken, cycles_nt, ekey_nt))
    flush_batch()

    fall_payload = (None if block.fallthrough is None
                    else (function_name, block.fallthrough))
    return SuperblockNode(program.block_key(block), payload, fetch_region,
                          steps, fall_payload)


def build_superblock(program: MachineProgram,
                     trace: List[Tuple[str, str]],
                     loop: bool) -> Optional[Superblock]:
    """Compile an observed *trace* of block payloads into a superblock.

    ``loop=True`` means the block executed after ``trace[-1]`` was
    ``trace[0]`` again, so the chain wraps around on itself.  Returns
    ``None`` when any traced block is ineligible (the caller then leaves
    the trace uncompiled and execution stays on the generic path).
    """
    if not trace:
        return None
    nodes: List[SuperblockNode] = []
    for payload in trace:
        node = _compile_node(program, payload)
        if node is None:
            return None
        nodes.append(node)
    for index, node in enumerate(nodes):
        if index + 1 < len(nodes):
            node.chain_next = nodes[index + 1].payload
            node.next_index = index + 1
        elif loop:
            node.chain_next = nodes[0].payload
            node.next_index = 0
    return Superblock(trace[0], nodes, loop)


def execute_superblock(sim, sb: Superblock, superblocks: Dict[Tuple[str, str], Superblock],
                       total_cycles: int, total_instructions: int,
                       cycles_by_section: Dict[str, int],
                       energy_counts: Dict[tuple, int], profile,
                       max_instructions: int
                       ) -> Tuple[str, object, int, int]:
    """Run *sb* until a side exit; returns the pending transfer + totals.

    The caller owns all accounting state: ``cycles_by_section``,
    ``energy_counts`` and ``profile`` are mutated in place, the integer
    totals travel through the return value.  A side exit whose ``"block"``
    target has its own superblock in *superblocks* chains straight into it
    (ping-ponging hot paths never touch the outer dispatch loop).  The
    returned ``(kind, payload)`` is exactly the transfer the generic loop
    would have seen (with end-of-block fallthrough normalised to a
    ``"block"`` transfer, which is dispatch-equivalent), and the profile
    entry for the block that produced it has already been recorded.
    """
    nodes = sb.nodes
    index = 0
    get = energy_counts.get
    profile_counts = profile.counts
    profile_cycles = profile.cycles
    counts_get = profile_counts.get
    cycles_get = profile_cycles.get
    while True:
        node = nodes[index]
        if total_instructions > max_instructions:
            raise SimulationError(
                f"instruction limit exceeded ({max_instructions}); "
                f"likely an infinite loop in {node.function_name}")

        block_cycles, count, transfer = node.run_node(sim, energy_counts, get)
        total_instructions += count
        total_cycles += block_cycles
        cycles_by_section[node.fetch_region] += block_cycles
        block_key = node.key
        profile_counts[block_key] = counts_get(block_key, 0) + 1
        profile_cycles[block_key] = cycles_get(block_key, 0) + block_cycles

        if transfer is None:
            if node.fall_payload is None:
                raise SimulationError(
                    f"fell off the end of "
                    f"{node.function_name}/{node.block_name}")
            transfer = ("block", node.fall_payload)
        kind, payload = transfer
        if kind == "block":
            if payload == node.chain_next:
                index = node.next_index
                continue
            target = superblocks.get(payload)
            if target is not None:
                nodes = target.nodes
                index = 0
                continue
        return kind, payload, total_cycles, total_instructions
