"""Per-cycle power/energy model calibrated against the paper's Figure 1.

Figure 1 of the paper measures the average power of 16-instruction loops of a
single instruction kind, executed once from flash and once from RAM.  The key
observations encoded here:

* executing from RAM costs roughly 40 % less power than from flash for every
  instruction class;
* the exception is a load whose *data* resides in flash while the code runs
  from RAM — the flash stays active and the power remains as high as
  flash-fetched execution (the last bar of Figure 1);
* loads and stores are the most expensive classes, nops the cheapest.

The absolute milliwatt numbers are representative of an STM32F100 at 24 MHz;
only the *relative* structure matters for reproducing the paper's results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.isa.instructions import InstrClass
from repro.isa.timing import CYCLE_TIME_S

#: (fetch region, instruction class) -> average power in milliwatts.
_FLASH_POWER_MW: Dict[InstrClass, float] = {
    InstrClass.NOP: 11.6,
    InstrClass.ALU: 12.4,
    InstrClass.MUL: 13.0,
    InstrClass.DIV: 13.2,
    InstrClass.LOAD: 15.8,
    InstrClass.STORE: 14.6,
    InstrClass.BRANCH: 12.8,
    InstrClass.CALL: 13.0,
    InstrClass.RETURN: 12.8,
    InstrClass.STACK: 14.0,
    InstrClass.OTHER: 12.4,
}

_RAM_POWER_MW: Dict[InstrClass, float] = {
    InstrClass.NOP: 6.6,
    InstrClass.ALU: 7.2,
    InstrClass.MUL: 7.8,
    InstrClass.DIV: 8.0,
    InstrClass.LOAD: 9.4,
    InstrClass.STORE: 8.8,
    InstrClass.BRANCH: 7.6,
    InstrClass.CALL: 7.8,
    InstrClass.RETURN: 7.6,
    InstrClass.STACK: 8.4,
    InstrClass.OTHER: 7.2,
}

#: Power of a load executed from RAM whose data lives in flash: the flash
#: remains active, so little is saved (Figure 1, right-most bar).
_RAM_FETCH_FLASH_DATA_LOAD_MW = 15.2


@dataclass
class PowerTable:
    """Average power (mW) per (fetch region, instruction class)."""

    flash: Dict[InstrClass, float] = field(default_factory=lambda: dict(_FLASH_POWER_MW))
    ram: Dict[InstrClass, float] = field(default_factory=lambda: dict(_RAM_POWER_MW))
    ram_fetch_flash_data_load: float = _RAM_FETCH_FLASH_DATA_LOAD_MW

    def power_mw(self, fetch_region: str, instr_class: InstrClass,
                 data_region: Optional[str] = None) -> float:
        if fetch_region == "ram":
            if (instr_class is InstrClass.LOAD and data_region == "flash"):
                return self.ram_fetch_flash_data_load
            return self.ram[instr_class]
        return self.flash[instr_class]

    def average_power_mw(self, fetch_region: str) -> float:
        """Unweighted average over instruction classes (used by the cost model)."""
        table = self.ram if fetch_region == "ram" else self.flash
        return sum(table.values()) / len(table)


DEFAULT_POWER_TABLE = PowerTable()


@dataclass
class EnergyModel:
    """Accumulates energy from per-instruction (cycles, power) contributions."""

    table: PowerTable = field(default_factory=PowerTable)
    cycle_time_s: float = CYCLE_TIME_S

    def energy_j(self, cycles: int, fetch_region: str, instr_class: InstrClass,
                 data_region: Optional[str] = None) -> float:
        power_w = self.table.power_mw(fetch_region, instr_class, data_region) * 1e-3
        return power_w * cycles * self.cycle_time_s

    # Convenience coefficients for the placement cost model (Section 4.1).
    @property
    def e_flash(self) -> float:
        """Energy cost coefficient per cycle when executing from flash (J)."""
        return self.table.average_power_mw("flash") * 1e-3 * self.cycle_time_s

    @property
    def e_ram(self) -> float:
        """Energy cost coefficient per cycle when executing from RAM (J)."""
        return self.table.average_power_mw("ram") * 1e-3 * self.cycle_time_s
