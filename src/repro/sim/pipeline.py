"""Pipelined/cached timing model: an alternative cycle accounting scheme.

The default (**flat**) timing model charges every instruction its Cortex-M3
table cost (:mod:`repro.isa.timing`) regardless of which memory the
instruction stream comes from: flash wait-states are folded into the table
and the only memory-dependent term is the RAM-bus contention stall.  That is
the model the paper's evaluation uses, and every stored sweep record was
produced under it.

This module adds a second, selectable model — ``timing_model="pipelined"`` —
with classic 3-stage fetch/decode/execute accounting:

* **Flash fetch stalls.**  Fetching from flash costs
  :data:`~repro.isa.timing.FLASH_WAIT_STATES` extra cycles unless the fetch
  hides behind a multi-cycle instruction already occupying the execute
  stage: after an instruction that spent ``c`` cycles executing, ``c - 1``
  cycles of the next fetch are overlapped.  RAM fetches are single-cycle.
* **Branch flushes.**  Taken control transfers flush the fetch overlap
  window (and the hazard window below); the refill cycles themselves are
  already part of the table costs (``BRANCH_TAKEN_PENALTY``).
* **Load-use hazards.**  An instruction reading the destination register of
  the immediately preceding load stalls
  :data:`~repro.isa.timing.LOAD_USE_STALL` cycle(s) for the missing
  writeback.
* **Optional instruction cache** (``timing_model="pipelined+icache:LxB"``):
  a direct-mapped cache of ``L`` lines of ``B`` bytes in front of flash.
  A hit fetches in one cycle **and is charged at RAM fetch power** (the
  cache is SRAM); a miss refills the whole line from flash —
  ``FLASH_WAIT_STATES`` per word — before the stall/overlap rule above
  applies.

Everything stays integer event counts reduced by
:meth:`~repro.sim.cpu.Simulator._finish`, so pipelined runs are exactly as
bitwise-deterministic as flat ones.  The **bitwise-determinism contract** of
the flat model is untouched: ``timing_model="flat"`` takes the pre-existing
execution paths verbatim and produces byte-identical results and stores.
Pipelined runs side-exit to their own generic decode-once loop
(:func:`run_pipelined`) and never enter the superblock fast path, whose
batched static cycle counts are precomputed under flat accounting.

:class:`TimingSpec` is the parsed form of a ``timing_model`` string; it also
provides the *static* per-block cost estimates (flash-stall and hazard
cycles) the placement cost model folds into ``C_b``, and the blended
``e_flash`` coefficient an icache implies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

from repro.isa.conditions import cond_holds
from repro.isa.instructions import InstrClass
from repro.isa.timing import (
    FLASH_WAIT_STATES,
    LOAD_USE_STALL,
    RAM_CONTENTION_STALL,
    cycles_for,
    load_dest,
    registers_read,
)
from repro.machine.blocks import MachineBlock
from repro.sim.decode import SimulationError, predecode
from repro.sim.profiler import BlockProfile

#: The timing-model axis values the CLI offers.  Parameterized icache
#: geometries (``pipelined+icache:32x8``) are accepted everywhere a
#: timing-model string is, they just are not enumerated here.
TIMING_MODELS: Tuple[str, ...] = ("flat", "pipelined", "pipelined+icache")

#: Default direct-mapped instruction-cache geometry (256 bytes: 16 x 16).
DEFAULT_ICACHE_LINES = 16
DEFAULT_ICACHE_LINE_BYTES = 16

#: Hit rate the *static* cost model assumes for an instruction cache when
#: estimating per-block flash stalls (the dynamic simulation models the
#: cache exactly; this only steers the placement solver).
ICACHE_ASSUMED_HIT_RATE = 0.875

_ALU_VALUE = InstrClass.ALU.value


@dataclass(frozen=True)
class TimingSpec:
    """Parsed form of a ``timing_model`` string.

    ``kind`` is ``"flat"`` or ``"pipelined"``; ``icache_lines == 0`` means no
    instruction cache.  Construct via :meth:`parse`:

    >>> TimingSpec.parse("flat").is_flat
    True
    >>> TimingSpec.parse("pipelined+icache").name
    'pipelined+icache:16x16'
    >>> TimingSpec.parse("pipelined+icache:32x8").miss_penalty
    2
    """

    kind: str = "flat"
    icache_lines: int = 0
    icache_line_bytes: int = DEFAULT_ICACHE_LINE_BYTES

    @classmethod
    def parse(cls, value: Union[str, "TimingSpec"]) -> "TimingSpec":
        """Parse a ``timing_model`` string (idempotent on specs).

        Accepted forms: ``"flat"``, ``"pipelined"``, ``"pipelined+icache"``
        (default 16x16-byte geometry) and ``"pipelined+icache:LxB"`` with
        ``L`` direct-mapped lines of ``B`` bytes (``B`` a power of two >= 4).
        """
        if isinstance(value, TimingSpec):
            return value
        text = str(value).strip()
        if text == "flat":
            return cls()
        if text == "pipelined":
            return cls(kind="pipelined")
        if text == "pipelined+icache":
            return cls(kind="pipelined", icache_lines=DEFAULT_ICACHE_LINES,
                       icache_line_bytes=DEFAULT_ICACHE_LINE_BYTES)
        if text.startswith("pipelined+icache:"):
            geometry = text.split(":", 1)[1]
            lines_text, sep, bytes_text = geometry.partition("x")
            if sep:
                try:
                    lines = int(lines_text)
                    line_bytes = int(bytes_text)
                except ValueError:
                    lines = line_bytes = 0
                if (lines >= 1 and line_bytes >= 4
                        and line_bytes & (line_bytes - 1) == 0):
                    return cls(kind="pipelined", icache_lines=lines,
                               icache_line_bytes=line_bytes)
        raise ValueError(
            f"unknown timing model {value!r}; expected 'flat', 'pipelined', "
            f"'pipelined+icache' or 'pipelined+icache:LxB' "
            f"(B a power of two >= 4)")

    @property
    def name(self) -> str:
        """Canonical string form (``parse(spec.name) == spec``)."""
        if self.kind == "flat":
            return "flat"
        if not self.icache_lines:
            return "pipelined"
        return (f"pipelined+icache:{self.icache_lines}"
                f"x{self.icache_line_bytes}")

    @property
    def is_flat(self) -> bool:
        return self.kind == "flat"

    @property
    def has_icache(self) -> bool:
        return self.kind == "pipelined" and self.icache_lines > 0

    @property
    def miss_penalty(self) -> int:
        """Extra cycles to refill one icache line from flash on a miss.

        Zero without an icache — the uncached pipeline pays
        :data:`~repro.isa.timing.FLASH_WAIT_STATES` per fetch instead.
        """
        if not self.has_icache:
            return 0
        return FLASH_WAIT_STATES * (self.icache_line_bytes // 4)

    # ------------------------------------------------------------------ #
    # Static estimates for the placement cost model
    # ------------------------------------------------------------------ #
    def effective_e_flash(self, energy_model) -> float:
        """The per-cycle flash-fetch energy coefficient this model implies.

        With an instruction cache most flash fetches are served from cache
        SRAM, so the cost model's ``E_flash`` blends toward ``E_ram`` at the
        assumed hit rate.  Flat (and cache-less pipelined) return the energy
        model's ``e_flash`` unchanged — the exact same float.
        """
        if not self.has_icache:
            return energy_model.e_flash
        hit = ICACHE_ASSUMED_HIT_RATE
        return hit * energy_model.e_ram + (1.0 - hit) * energy_model.e_flash

    def static_block_costs(self, block: MachineBlock) -> Tuple[int, float]:
        """``(hazard_cycles, flash_stall_cycles)`` estimates for one block.

        *hazard_cycles* counts load-use pairs (a memory-independent pipeline
        property, added to ``C_b``); *flash_stall_cycles* estimates the extra
        fetch cycles one execution pays **iff the block stays in flash** —
        the term a RAM placement removes.  Without an icache the estimate
        runs the same overlap recurrence as the dynamic loop over the
        taken-path costs; with one it charges the expected miss cost
        ``(1 - hit_rate) * miss_penalty`` per instruction.
        """
        if self.kind != "pipelined":
            return 0, 0.0
        hazard = 0
        stall = 0
        overlap = 0
        previous_load_dst = -1
        for instr in block.instructions:
            if previous_load_dst >= 0 and previous_load_dst in registers_read(instr):
                hazard += LOAD_USE_STALL
            if not self.has_icache:
                pending = FLASH_WAIT_STATES - overlap
                if pending > 0:
                    stall += pending
            cycles = cycles_for(instr, taken=True)
            overlap = cycles - 1
            previous_load_dst = load_dest(instr)
        if self.has_icache:
            miss_rate = 1.0 - ICACHE_ASSUMED_HIT_RATE
            return hazard, len(block.instructions) * miss_rate * self.miss_penalty
        return hazard, float(stall)


# --------------------------------------------------------------------------- #
# The pipelined execution loop
# --------------------------------------------------------------------------- #
def run_pipelined(sim, entry: str):
    """Execute *sim*'s program under the pipelined timing model.

    This is the decode-once loop of :meth:`Simulator._run_decoded` extended
    with the fetch-overlap window, the direct-mapped icache and the load-use
    hazard described in the module docstring.  It is the **only** execution
    path for pipelined runs: superblocks batch statically-precomputed flat
    cycles, so pipelined simulations side-exit to this generic loop instead.
    Energy stays integer event counts keyed
    ``(cycles, fetch_region, instr_class, data_region)`` and is reduced once
    in :meth:`Simulator._finish`, so results are bitwise deterministic.
    """
    timing: TimingSpec = sim.timing
    program = sim.program
    functions = program.functions
    max_instructions = sim.max_instructions

    profile = BlockProfile()
    total_cycles = 0
    total_instructions = 0
    energy_counts = {}
    counts_get = energy_counts.get
    cycles_by_section = {"flash": 0, "ram": 0}

    lines = timing.icache_lines
    line_shift = timing.icache_line_bytes.bit_length() - 1
    miss_penalty = timing.miss_penalty
    tags = [-1] * lines if lines else None
    # Icache telemetry: plain locals in the fetch stage (hot), published to
    # the hub once at finish.
    icache_hits = 0
    icache_misses = 0
    #: (function, block) -> (layout generation, per-instruction line ids).
    line_memo = {}

    def block_line_ids(block):
        key = (block.function_name, block.name)
        cached = line_memo.get(key)
        if cached is not None and cached[0] == program.layout_generation:
            return cached[1]
        if block.address is None:
            raise SimulationError(
                f"block {block.function_name}/{block.name} has no address "
                f"(layout not run?)")
        base = block.address
        ids = [(base + offset) >> line_shift
               for offset in block.instruction_offsets()]
        line_memo[key] = (program.layout_generation, ids)
        return ids

    function_name = entry
    block = functions[entry].entry_block
    decoded = predecode(program, block)
    records = decoded.records
    fetch_region = decoded.fetch_region
    fetch_is_ram = decoded.fetch_is_ram
    line_ids = (block_line_ids(block)
                if lines and not fetch_is_ram else None)
    index = 0
    pending_cond = None
    block_cycle_start = 0
    current_block_key = program.block_key(block)

    #: Fetch cycles the previous instruction's execute time can hide.
    overlap = 0
    #: Destination register of an immediately preceding load, else -1.
    load_dst = -1

    while True:
        if total_instructions > max_instructions:
            raise SimulationError(
                f"instruction limit exceeded ({sim.max_instructions}); "
                f"likely an infinite loop in {function_name}")

        if index >= len(records):
            # Fall through: no branch, the pipeline keeps streaming, so the
            # overlap window and the hazard register survive the boundary.
            profile.record(current_block_key, total_cycles - block_cycle_start)
            next_name = block.fallthrough
            if next_name is None:
                raise SimulationError(
                    f"fell off the end of {function_name}/{block.name}")
            block = functions[function_name].blocks[next_name]
            decoded = predecode(program, block)
            records = decoded.records
            fetch_region = decoded.fetch_region
            fetch_is_ram = decoded.fetch_is_ram
            line_ids = (block_line_ids(block)
                        if lines and not fetch_is_ram else None)
            index = 0
            block_cycle_start = total_cycles
            current_block_key = program.block_key(block)
            continue

        record = records[index]

        # --- fetch stage ---------------------------------------------- #
        stall = 0
        region = fetch_region
        if not fetch_is_ram:
            if lines:
                line = line_ids[index]
                slot = line % lines
                if tags[slot] == line:
                    # Hit: single-cycle fetch from cache SRAM, charged at
                    # RAM fetch power.
                    region = "ram"
                    icache_hits += 1
                else:
                    tags[slot] = line
                    icache_misses += 1
                    stall = miss_penalty - overlap
                    if stall < 0:
                        stall = 0
            else:
                stall = FLASH_WAIT_STATES - overlap
                if stall < 0:
                    stall = 0

        # --- predication (it blocks) ----------------------------------- #
        if record.is_it:
            pending_cond = record.cond
            cycles = 1 + stall
            total_cycles += cycles
            total_instructions += 1
            cycles_by_section[region] += cycles
            key = (cycles, region, _ALU_VALUE, None)
            energy_counts[key] = counts_get(key, 0) + 1
            overlap = cycles - 1
            load_dst = -1
            index += 1
            continue

        if record.predicated:
            condition = record.cond if record.cond is not None else pending_cond
            if not cond_holds(condition, sim.flag_n, sim.flag_z,
                              sim.flag_c, sim.flag_v):
                cycles = 1 + stall
                total_cycles += cycles
                total_instructions += 1
                cycles_by_section[region] += cycles
                key = (cycles, region, _ALU_VALUE, None)
                energy_counts[key] = counts_get(key, 0) + 1
                overlap = cycles - 1
                load_dst = -1
                index += 1
                continue

        # --- execute ---------------------------------------------------- #
        data_region, transfer = record.run(sim)

        if record.conditional and transfer is None:
            cycles = record.cycles_not_taken
        else:
            cycles = record.cycles_taken

        # Load-use hazard: reading the previous load's destination.
        if load_dst >= 0 and load_dst in record.reads:
            cycles += LOAD_USE_STALL

        # RAM bus contention: executing from RAM while touching RAM data.
        if fetch_is_ram and data_region == "ram" and record.contention:
            cycles += RAM_CONTENTION_STALL

        cycles += stall
        total_cycles += cycles
        total_instructions += 1
        cycles_by_section[region] += cycles
        key = (cycles, region, record.klass_value, data_region)
        energy_counts[key] = counts_get(key, 0) + 1

        if transfer is None:
            overlap = cycles - 1
            load_dst = record.load_dst
            index += 1
            continue

        # Taken control transfer: the pipeline flushes — both the fetch
        # overlap window and the load-use hazard register reset.
        overlap = 0
        load_dst = -1

        kind, payload = transfer
        profile.record(current_block_key, total_cycles - block_cycle_start)
        block_cycle_start = total_cycles

        if kind == "exit":
            if lines:
                from repro.telemetry import get_telemetry
                hub = get_telemetry()
                if hub.enabled:
                    hub.add("sim.icache.hits", icache_hits)
                    hub.add("sim.icache.misses", icache_misses)
            return sim._finish(total_cycles, total_instructions,
                               energy_counts, profile, cycles_by_section)
        if kind == "block":
            target_function, target_block = payload
            function_name = target_function
            block = functions[target_function].blocks[target_block]
            index = 0
        elif kind == "call":
            callee, return_site = payload
            sim.registers[14] = sim._intern_return_site(return_site)
            function_name = callee
            block = functions[callee].entry_block
            index = 0
        elif kind == "return":
            site_function, site_block, site_index = payload
            function_name = site_function
            block = functions[site_function].blocks[site_block]
            index = site_index
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown transfer kind {kind}")
        decoded = predecode(program, block)
        records = decoded.records
        fetch_region = decoded.fetch_region
        fetch_is_ram = decoded.fetch_is_ram
        line_ids = (block_line_ids(block)
                    if lines and not fetch_is_ram else None)
        current_block_key = program.block_key(block)
