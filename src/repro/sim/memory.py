"""Byte-addressable memory system with flash and RAM regions."""

from __future__ import annotations

from typing import Dict, Optional

from repro.machine.program import MemoryRegion


class MemoryError_(Exception):
    """Raised on out-of-range or illegal accesses (flash writes at runtime)."""


class MemorySystem:
    """Sparse byte-addressable memory backed by a dictionary.

    Two regions exist, mirroring the paper's SoC: embedded flash (code +
    constant data + literal pools) and SRAM (mutable data, stack, and the
    ``.ramcode`` section the optimization creates).
    """

    def __init__(self, flash: MemoryRegion, ram: MemoryRegion,
                 allow_flash_writes: bool = False):
        self.flash = flash
        self.ram = ram
        self.allow_flash_writes = allow_flash_writes
        self._bytes: Dict[int, int] = {}

    # ------------------------------------------------------------------ #
    def region_of(self, address: int) -> Optional[str]:
        if self.flash.contains(address):
            return "flash"
        if self.ram.contains(address):
            return "ram"
        return None

    def _check(self, address: int, for_write: bool) -> str:
        region = self.region_of(address)
        if region is None:
            raise MemoryError_(f"access to unmapped address {address:#010x}")
        if for_write and region == "flash" and not self.allow_flash_writes:
            raise MemoryError_(f"write to flash address {address:#010x} at runtime")
        return region

    # ------------------------------------------------------------------ #
    def read_byte(self, address: int) -> int:
        self._check(address, for_write=False)
        return self._bytes.get(address, 0)

    def write_byte(self, address: int, value: int, initializing: bool = False) -> None:
        if not initializing:
            self._check(address, for_write=True)
        self._bytes[address] = value & 0xFF

    def read_word(self, address: int) -> int:
        self._check(address, for_write=False)
        return (self._bytes.get(address, 0)
                | (self._bytes.get(address + 1, 0) << 8)
                | (self._bytes.get(address + 2, 0) << 16)
                | (self._bytes.get(address + 3, 0) << 24))

    def write_word(self, address: int, value: int, initializing: bool = False) -> None:
        if not initializing:
            self._check(address, for_write=True)
        value &= 0xFFFFFFFF
        self._bytes[address] = value & 0xFF
        self._bytes[address + 1] = (value >> 8) & 0xFF
        self._bytes[address + 2] = (value >> 16) & 0xFF
        self._bytes[address + 3] = (value >> 24) & 0xFF

    # ------------------------------------------------------------------ #
    def load_words(self, address: int, words, initializing: bool = True) -> None:
        """Bulk-initialise a region with 32-bit words (startup data load)."""
        for index, word in enumerate(words):
            self.write_word(address + 4 * index, word, initializing=initializing)
