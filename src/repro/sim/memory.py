"""Byte-addressable memory system with flash and RAM regions."""

from __future__ import annotations

from typing import Optional

from repro.machine.program import MemoryRegion


class MemoryError_(Exception):
    """Raised on out-of-range or illegal accesses (flash writes at runtime)."""


class MemorySystem:
    """Byte-addressable memory backed by one ``bytearray`` per region.

    Two regions exist, mirroring the paper's SoC: embedded flash (code +
    constant data + literal pools) and SRAM (mutable data, stack, and the
    ``.ramcode`` section the optimization creates).  Regions are frozen
    dataclasses, so their bounds are flattened to plain ints once — these
    methods run on every simulated memory access and the bounds tests plus
    buffer indexing must stay free of nested method calls.
    """

    def __init__(self, flash: MemoryRegion, ram: MemoryRegion,
                 allow_flash_writes: bool = False):
        self.flash = flash
        self.ram = ram
        self.allow_flash_writes = allow_flash_writes
        self._flash_start = flash.origin
        self._flash_size = flash.size
        self._flash_end = flash.end
        self._ram_start = ram.origin
        self._ram_size = ram.size
        self._ram_end = ram.end
        self._flash_bytes = bytearray(flash.size)
        self._ram_bytes = bytearray(ram.size)

    # ------------------------------------------------------------------ #
    def region_of(self, address: int) -> Optional[str]:
        if self._flash_start <= address < self._flash_end:
            return "flash"
        if self._ram_start <= address < self._ram_end:
            return "ram"
        return None

    def _check(self, address: int, for_write: bool) -> str:
        if self._flash_start <= address < self._flash_end:
            if for_write and not self.allow_flash_writes:
                raise MemoryError_(
                    f"write to flash address {address:#010x} at runtime")
            return "flash"
        if self._ram_start <= address < self._ram_end:
            return "ram"
        raise MemoryError_(f"access to unmapped address {address:#010x}")

    # ------------------------------------------------------------------ #
    def read_byte(self, address: int) -> int:
        offset = address - self._flash_start
        if 0 <= offset < self._flash_size:
            return self._flash_bytes[offset]
        offset = address - self._ram_start
        if 0 <= offset < self._ram_size:
            return self._ram_bytes[offset]
        raise MemoryError_(f"access to unmapped address {address:#010x}")

    def write_byte(self, address: int, value: int, initializing: bool = False) -> None:
        offset = address - self._ram_start
        if 0 <= offset < self._ram_size:
            self._ram_bytes[offset] = value & 0xFF
            return
        offset = address - self._flash_start
        if 0 <= offset < self._flash_size:
            if not (initializing or self.allow_flash_writes):
                raise MemoryError_(
                    f"write to flash address {address:#010x} at runtime")
            self._flash_bytes[offset] = value & 0xFF
            return
        if initializing:
            return  # startup data outside both regions is unreadable anyway
        raise MemoryError_(f"access to unmapped address {address:#010x}")

    def read_word(self, address: int) -> int:
        offset = address - self._flash_start
        if 0 <= offset < self._flash_size:
            buffer = self._flash_bytes
        else:
            offset = address - self._ram_start
            if 0 <= offset < self._ram_size:
                buffer = self._ram_bytes
            else:
                raise MemoryError_(
                    f"access to unmapped address {address:#010x}")
        # A slice past the region end truncates, so the missing high bytes
        # read as zero — same as unmapped bytes always have.
        return int.from_bytes(buffer[offset:offset + 4], "little")

    def write_word(self, address: int, value: int, initializing: bool = False) -> None:
        value &= 0xFFFFFFFF
        offset = address - self._ram_start
        if 0 <= offset < self._ram_size:
            buffer = self._ram_bytes
        else:
            offset = address - self._flash_start
            if 0 <= offset < self._flash_size:
                if not (initializing or self.allow_flash_writes):
                    raise MemoryError_(
                        f"write to flash address {address:#010x} at runtime")
                buffer = self._flash_bytes
            else:
                if initializing:
                    return
                raise MemoryError_(
                    f"access to unmapped address {address:#010x}")
        end = offset + 4
        if end <= len(buffer):
            buffer[offset:end] = value.to_bytes(4, "little")
        else:
            data = value.to_bytes(4, "little")
            for i in range(len(buffer) - offset):
                buffer[offset + i] = data[i]

    # ------------------------------------------------------------------ #
    # Fused access + region classification: the load/store handlers need
    # both the value and the data region for energy accounting, and paying
    # the bounds tests once per access instead of twice is measurable on
    # memory-heavy kernels.
    # ------------------------------------------------------------------ #
    def read_word_region(self, address: int):
        offset = address - self._flash_start
        if 0 <= offset < self._flash_size:
            return (int.from_bytes(self._flash_bytes[offset:offset + 4],
                                   "little"), "flash")
        offset = address - self._ram_start
        if 0 <= offset < self._ram_size:
            return (int.from_bytes(self._ram_bytes[offset:offset + 4],
                                   "little"), "ram")
        raise MemoryError_(f"access to unmapped address {address:#010x}")

    def read_byte_region(self, address: int):
        offset = address - self._flash_start
        if 0 <= offset < self._flash_size:
            return self._flash_bytes[offset], "flash"
        offset = address - self._ram_start
        if 0 <= offset < self._ram_size:
            return self._ram_bytes[offset], "ram"
        raise MemoryError_(f"access to unmapped address {address:#010x}")

    def write_word_region(self, address: int, value: int) -> str:
        offset = address - self._ram_start
        if 0 <= offset < self._ram_size:
            end = offset + 4
            value &= 0xFFFFFFFF
            if end <= self._ram_size:
                self._ram_bytes[offset:end] = value.to_bytes(4, "little")
            else:
                data = value.to_bytes(4, "little")
                for i in range(self._ram_size - offset):
                    self._ram_bytes[offset + i] = data[i]
            return "ram"
        # Flash write (raises unless allow_flash_writes) or unmapped (raises).
        region = self._check(address, for_write=True)
        self.write_word(address, value)  # pragma: no cover - flash writes
        return region  # pragma: no cover

    def write_byte_region(self, address: int, value: int) -> str:
        offset = address - self._ram_start
        if 0 <= offset < self._ram_size:
            self._ram_bytes[offset] = value & 0xFF
            return "ram"
        region = self._check(address, for_write=True)
        self.write_byte(address, value)  # pragma: no cover - flash writes
        return region  # pragma: no cover

    # ------------------------------------------------------------------ #
    def load_words(self, address: int, words, initializing: bool = True) -> None:
        """Bulk-initialise a region with 32-bit words (startup data load)."""
        for index, word in enumerate(words):
            self.write_word(address + 4 * index, word, initializing=initializing)
