"""Instruction-level simulator for linked machine programs.

The simulator is structural rather than binary: it walks
:class:`~repro.machine.blocks.MachineBlock` objects directly, using the
addresses assigned by the layout stage only where real code would need them
(indirect branches, literal loads of symbol addresses, data accesses).  This
keeps it fast while still modelling everything the paper's evaluation needs:
cycle counts with RAM-contention stalls, per-cycle power depending on the
fetch memory, per-block execution counts and return values for correctness
checks.

Three execution strategies share identical observable behaviour:

* the **superblock fast path** (default): hot decoded blocks are chained
  along their observed successor paths into trace-compiled superblocks
  (:mod:`repro.sim.superblock`) with batched accounting and side-exit
  guards;
* the **decode-once path** (``superblocks=False``): blocks are lazily
  lowered to predecoded instruction records (:mod:`repro.sim.decode`) with
  pre-bound handlers, pre-resolved operands and precomputed cycle/energy
  metadata, cached on the blocks themselves;
* the **interpreted reference path** (``decode_once=False``): the original
  per-instruction dispatch, kept as the bit-exact oracle the regression tests
  compare the fast paths against.

All paths produce bitwise-identical :class:`SimulationResult` values.  To
make that hold under batching, energy is accounted uniformly as *event
counts* per ``(cycles, fetch_region, instr_class, data_region)`` key and
reduced to a float in one deterministic pass at the end of the run
(:meth:`Simulator._finish`): identical counts give identical floats no
matter which path — or what grouping — produced them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.isa.conditions import Cond, cond_holds
from repro.isa.instructions import Imm, InstrClass, MachineInstr, Opcode, RegList, Sym
from repro.isa.registers import LR, PC, SP, Reg
from repro.isa.timing import RAM_CONTENTION_STALL, cycles_for, instr_class
from repro.machine.blocks import MachineBlock, MachineFunction
from repro.machine.program import MachineProgram
from repro.sim.decode import SimulationError, predecode, resolve_symbol
from repro.sim.energy import EnergyModel
from repro.sim.memory import MemorySystem
from repro.sim.pipeline import TimingSpec, run_pipelined
from repro.sim.profiler import BlockProfile
from repro.sim.superblock import (
    HOT_THRESHOLD,
    MAX_CHAIN,
    build_superblock,
    execute_superblock,
)
from repro.telemetry import get_telemetry

_MASK = 0xFFFFFFFF

#: Energy-count keys carry the InstrClass *value* string, not the enum:
#: str hashes at C speed and caches its hash, Enum.__hash__ is a Python call.
_ALU_VALUE = InstrClass.ALU.value

#: Link-register token returned to when the entry function finishes.
EXIT_TOKEN = 0xFFFFFFF1
#: Base value for call-site return tokens.
RETURN_TOKEN_BASE = 0xF0000000


@dataclass
class SimulationResult:
    """Everything the evaluation harness needs from one program run."""

    return_value: int
    cycles: int
    instructions: int
    energy_j: float
    time_s: float
    profile: BlockProfile
    cycles_by_section: Dict[str, int] = field(default_factory=dict)

    @property
    def average_power_w(self) -> float:
        return self.energy_j / self.time_s if self.time_s > 0 else 0.0

    @property
    def average_power_mw(self) -> float:
        return self.average_power_w * 1e3

    @property
    def signed_return_value(self) -> int:
        value = self.return_value & _MASK
        return value - (1 << 32) if value & 0x80000000 else value


def _signed(value: int) -> int:
    value &= _MASK
    return value - (1 << 32) if value & 0x80000000 else value


class Simulator:
    """Executes a linked machine program and accounts cycles and energy.

    ``timing_model`` selects the cycle-accounting scheme: the default
    ``"flat"`` keeps the three bit-exact execution paths described in the
    module docstring; ``"pipelined"`` (optionally with ``+icache[:LxB]``)
    switches to the 3-stage fetch/decode/execute accounting of
    :mod:`repro.sim.pipeline`.  Pipelined runs always use their own
    decode-once loop — the ``decode_once``/``superblocks`` flags only pick
    between the flat paths — because superblocks batch statically
    precomputed *flat* cycles.
    """

    def __init__(self, program: MachineProgram,
                 energy_model: Optional[EnergyModel] = None,
                 max_instructions: int = 20_000_000,
                 decode_once: bool = True,
                 superblocks: bool = True,
                 timing_model: Union[str, TimingSpec] = "flat"):
        self.program = program
        self.energy_model = energy_model or EnergyModel()
        self.max_instructions = max_instructions
        self.decode_once = decode_once
        self.superblocks = superblocks
        self.timing = TimingSpec.parse(timing_model)

        self.memory = MemorySystem(program.flash, program.ram)
        self._init_data()

        self._address_to_block: Dict[int, Tuple[str, str]] = {}
        for function in program.iter_functions():
            for block in function.iter_blocks():
                if block.address is not None:
                    self._address_to_block[block.address] = (function.name, block.name)

        # Return tokens for calls: interned so that a call site executed many
        # times (loops, periodic sensing) maps to ONE token instead of growing
        # the table by one entry per dynamic call.
        self._return_sites: List[Tuple[str, str, int]] = []
        self._return_site_tokens: Dict[Tuple[str, str, int], int] = {}

        self.registers: List[int] = [0] * 16
        self.flag_n = False
        self.flag_z = False
        self.flag_c = False
        self.flag_v = False

    # ------------------------------------------------------------------ #
    # Setup helpers
    # ------------------------------------------------------------------ #
    def _init_data(self) -> None:
        for name, data in self.program.globals.items():
            address = self.program.global_addresses.get(name)
            if address is None:
                raise SimulationError(f"global {name} has no address (layout not run?)")
            self.memory.load_words(address, data.words)

    def _resolve_symbol(self, name: str, current_function: str) -> int:
        return resolve_symbol(self.program, name, current_function)

    def _intern_return_site(self, site: Tuple[str, str, int]) -> int:
        """Token for a call return site; one token per distinct static site."""
        token = self._return_site_tokens.get(site)
        if token is None:
            token = RETURN_TOKEN_BASE + len(self._return_sites)
            self._return_site_tokens[site] = token
            self._return_sites.append(site)
        return token

    # ------------------------------------------------------------------ #
    # Register / flag helpers
    # ------------------------------------------------------------------ #
    def _get(self, reg: Reg) -> int:
        return self.registers[reg.index] & _MASK

    def _set(self, reg: Reg, value: int) -> None:
        self.registers[reg.index] = value & _MASK

    def _operand_value(self, operand, current_function: str) -> int:
        if isinstance(operand, Reg):
            return self._get(operand)
        if isinstance(operand, Imm):
            return operand.value & _MASK
        if isinstance(operand, Sym):
            return (self._resolve_symbol(operand.name, current_function)
                    + operand.addend) & _MASK
        raise SimulationError(f"cannot evaluate operand {operand!r}")

    def _set_flags_sub(self, a: int, b: int) -> None:
        result = (a - b) & _MASK
        self.flag_n = bool(result & 0x80000000)
        self.flag_z = result == 0
        self.flag_c = a >= b
        self.flag_v = ((a ^ b) & (a ^ result) & 0x80000000) != 0

    def _finish(self, total_cycles: int, total_instructions: int,
                energy_counts: Dict[Tuple, int], profile: BlockProfile,
                cycles_by_section: Dict[str, int]) -> SimulationResult:
        """Reduce the energy event counts and assemble the result.

        Every execution path accounts energy as integer event counts keyed
        by ``(cycles, fetch_region, instr_class, data_region)``.  The
        reduction here visits the keys in one fixed order with one
        multiply-add per key, so identical counts yield bitwise-identical
        ``energy_j`` regardless of which path (or what batching) produced
        them — integer counts are associative where float sums are not.

        Two invariants are asserted before the reduction.  Every execution
        path bumps exactly one energy-event count and one section bucket per
        retired instruction/cycle, so the event total must equal the
        instruction total and the section buckets must sum to the cycle
        total.  Batched superblock accounting, the pipelined loop and any
        future path all feed the same counters — a silent drift between
        them would quietly skew ``energy_j``, which is the paper's core
        measurement, so the reconciliation is checked on every run (two
        integer sums; the run itself dwarfs the cost).
        """
        event_total = sum(energy_counts.values())
        if event_total != total_instructions:
            raise AssertionError(
                f"energy-event counts do not reconcile with the decode-once "
                f"instruction total: {event_total} events != "
                f"{total_instructions} instructions")
        section_total = sum(cycles_by_section.values())
        if section_total != total_cycles:
            raise AssertionError(
                f"per-section cycle buckets do not reconcile with the cycle "
                f"total: {section_total} != {total_cycles}")
        hub = get_telemetry()
        if hub.enabled:
            hub.add("sim.runs")
            hub.add("sim.instructions", total_instructions)
            hub.add("sim.cycles", total_cycles)
        energy_j = self.energy_model.energy_j
        total_energy = 0.0
        for key in sorted(energy_counts,
                          key=lambda k: (k[0], k[1], k[2], k[3] or "")):
            cycles, fetch_region, klass_value, data_region = key
            total_energy += energy_counts[key] * energy_j(
                cycles, fetch_region, InstrClass(klass_value), data_region)
        return SimulationResult(
            return_value=self.registers[0] & _MASK,
            cycles=total_cycles,
            instructions=total_instructions,
            energy_j=total_energy,
            time_s=total_cycles * self.energy_model.cycle_time_s,
            profile=profile,
            cycles_by_section=cycles_by_section,
        )

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def run(self, entry: Optional[str] = None,
            args: Optional[List[int]] = None) -> SimulationResult:
        entry = entry or self.program.entry
        if entry not in self.program.functions:
            raise SimulationError(f"entry function {entry!r} not found")

        self.registers = [0] * 16
        for index, value in enumerate(args or []):
            self.registers[index] = value & _MASK
        self.registers[SP.index] = self.program.ram.end
        self.registers[LR.index] = EXIT_TOKEN

        if not self.timing.is_flat:
            return run_pipelined(self, entry)
        if not self.decode_once:
            return self._run_interpreted(entry)
        if self.superblocks:
            return self._run_superblocked(entry)
        return self._run_decoded(entry)

    # ------------------------------------------------------------------ #
    # Decode-once fast path
    # ------------------------------------------------------------------ #
    def _run_decoded(self, entry: str) -> SimulationResult:
        program = self.program
        functions = program.functions
        max_instructions = self.max_instructions

        profile = BlockProfile()
        total_cycles = 0
        total_instructions = 0
        energy_counts: Dict[Tuple, int] = {}
        counts_get = energy_counts.get
        cycles_by_section = {"flash": 0, "ram": 0}

        function_name = entry
        block = functions[entry].entry_block
        decoded = predecode(program, block)
        records = decoded.records
        fetch_region = decoded.fetch_region
        fetch_is_ram = decoded.fetch_is_ram
        index = 0
        pending_cond: Optional[Cond] = None
        block_cycle_start = 0
        current_block_key = program.block_key(block)

        while True:
            if total_instructions > max_instructions:
                raise SimulationError(
                    f"instruction limit exceeded ({self.max_instructions}); "
                    f"likely an infinite loop in {function_name}")

            if index >= len(records):
                # End of block without explicit control transfer: fall through.
                profile.record(current_block_key, total_cycles - block_cycle_start)
                next_name = block.fallthrough
                if next_name is None:
                    raise SimulationError(
                        f"fell off the end of {function_name}/{block.name}")
                block = functions[function_name].blocks[next_name]
                decoded = predecode(program, block)
                records = decoded.records
                fetch_region = decoded.fetch_region
                fetch_is_ram = decoded.fetch_is_ram
                index = 0
                block_cycle_start = total_cycles
                current_block_key = program.block_key(block)
                continue

            record = records[index]

            # --- predication (it blocks) ---------------------------------- #
            if record.is_it:
                pending_cond = record.cond
                total_cycles += 1
                total_instructions += 1
                cycles_by_section[fetch_region] += 1
                key = (1, fetch_region, _ALU_VALUE, None)
                energy_counts[key] = counts_get(key, 0) + 1
                index += 1
                continue

            if record.predicated:
                condition = record.cond if record.cond is not None else pending_cond
                if not cond_holds(condition, self.flag_n, self.flag_z,
                                  self.flag_c, self.flag_v):
                    total_cycles += 1
                    total_instructions += 1
                    cycles_by_section[fetch_region] += 1
                    key = (1, fetch_region, _ALU_VALUE, None)
                    energy_counts[key] = counts_get(key, 0) + 1
                    index += 1
                    continue

            # --- execute --------------------------------------------------- #
            data_region, transfer = record.run(self)

            if record.conditional and transfer is None:
                cycles = record.cycles_not_taken
            else:
                cycles = record.cycles_taken

            # RAM bus contention: executing from RAM while touching RAM data.
            if fetch_is_ram and data_region == "ram" and record.contention:
                cycles += RAM_CONTENTION_STALL

            total_cycles += cycles
            total_instructions += 1
            cycles_by_section[fetch_region] += cycles
            key = (cycles, fetch_region, record.klass_value, data_region)
            energy_counts[key] = counts_get(key, 0) + 1

            if transfer is None:
                index += 1
                continue

            kind, payload = transfer
            profile.record(current_block_key, total_cycles - block_cycle_start)
            block_cycle_start = total_cycles

            if kind == "exit":
                return self._finish(total_cycles, total_instructions,
                                    energy_counts, profile, cycles_by_section)
            if kind == "block":
                target_function, target_block = payload
                function_name = target_function
                block = functions[target_function].blocks[target_block]
                index = 0
            elif kind == "call":
                callee, return_site = payload
                self.registers[LR.index] = self._intern_return_site(return_site)
                function_name = callee
                block = functions[callee].entry_block
                index = 0
            elif kind == "return":
                site_function, site_block, site_index = payload
                function_name = site_function
                block = functions[site_function].blocks[site_block]
                index = site_index
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown transfer kind {kind}")
            decoded = predecode(program, block)
            records = decoded.records
            fetch_region = decoded.fetch_region
            fetch_is_ram = decoded.fetch_is_ram
            current_block_key = program.block_key(block)

    # ------------------------------------------------------------------ #
    # Superblock fast path: decode-once plus trace compilation of hot paths
    # ------------------------------------------------------------------ #
    def _run_superblocked(self, entry: str) -> SimulationResult:
        """The decode-once loop, extended with trace-compiled superblocks.

        Every arrival at the *start* of a block goes through the dispatch
        prologue: an installed superblock is executed directly; otherwise the
        block's hotness counter is bumped and, past :data:`HOT_THRESHOLD`,
        the path execution takes next is recorded and compiled
        (:func:`build_superblock`).  Blocks without superblocks — and block
        tails re-entered mid-block after a call returns — run on the generic
        decode-once machinery below, which is accounting-identical to
        :meth:`_run_decoded`.
        """
        program = self.program
        functions = program.functions
        max_instructions = self.max_instructions
        superblocks, hot_counts = program.superblock_state()

        profile = BlockProfile()
        total_cycles = 0
        total_instructions = 0
        energy_counts: Dict[Tuple, int] = {}
        counts_get = energy_counts.get
        cycles_by_section = {"flash": 0, "ram": 0}

        # Superblock telemetry: counted in plain locals (the dispatch prologue
        # is hot) and published to the hub once, at finish.
        sb_compiles = 0
        sb_dispatches = 0
        sb_side_exits = 0

        def publish_counters() -> None:
            hub = get_telemetry()
            if hub.enabled:
                hub.add("sim.superblock.compiles", sb_compiles)
                hub.add("sim.superblock.dispatches", sb_dispatches)
                hub.add("sim.superblock.side_exits", sb_side_exits)

        # Trace recording state: payload list of the trace being recorded
        # (None when idle) plus a membership set for O(1) cycle detection.
        trace: Optional[List[Tuple[str, str]]] = None
        trace_set = None

        def compile_trace(loop: bool) -> None:
            nonlocal trace, trace_set, sb_compiles
            compiled = build_superblock(program, trace, loop)
            if compiled is not None:
                superblocks[trace[0]] = compiled
                sb_compiles += 1
            trace = None
            trace_set = None

        function_name = entry
        block = functions[entry].entry_block
        payload = (entry, block.name)
        decoded = predecode(program, block)
        records = decoded.records
        fetch_region = decoded.fetch_region
        fetch_is_ram = decoded.fetch_is_ram
        index = 0
        entering = True
        pending_cond: Optional[Cond] = None
        block_cycle_start = 0
        current_block_key = program.block_key(block)

        while True:
            if entering:
                # ---- block-entry dispatch: superblocks and trace state ---- #
                entering = False
                sb = superblocks.get(payload)
                if sb is not None:
                    if trace is not None:
                        # Chain the recorded prefix up to (not into) the
                        # existing superblock; execution continues inside it.
                        compile_trace(False)
                    sb_dispatches += 1
                    kind, target, total_cycles, total_instructions = \
                        execute_superblock(self, sb, superblocks,
                                           total_cycles, total_instructions,
                                           cycles_by_section, energy_counts,
                                           profile, max_instructions)
                    block_cycle_start = total_cycles
                    if kind == "exit":
                        publish_counters()
                        return self._finish(total_cycles, total_instructions,
                                            energy_counts, profile,
                                            cycles_by_section)
                    sb_side_exits += 1
                    if kind == "block":
                        function_name, target_block = target
                        payload = target
                        block = functions[function_name].blocks[target_block]
                        index = 0
                        entering = True
                    elif kind == "call":
                        callee, return_site = target
                        self.registers[LR.index] = \
                            self._intern_return_site(return_site)
                        function_name = callee
                        block = functions[callee].entry_block
                        payload = (callee, block.name)
                        index = 0
                        entering = True
                    elif kind == "return":
                        site_function, site_block, site_index = target
                        function_name = site_function
                        block = functions[site_function].blocks[site_block]
                        payload = (site_function, site_block)
                        index = site_index
                    else:  # pragma: no cover - defensive
                        raise SimulationError(f"unknown transfer kind {kind}")
                    decoded = predecode(program, block)
                    records = decoded.records
                    fetch_region = decoded.fetch_region
                    fetch_is_ram = decoded.fetch_is_ram
                    current_block_key = program.block_key(block)
                    continue
                if trace is not None:
                    if payload == trace[0]:
                        # The trace closed back on its head: a loop.  Compile
                        # and immediately dispatch the new superblock.
                        compile_trace(True)
                        entering = True
                        continue
                    if (payload in trace_set or not decoded.chainable
                            or len(trace) >= MAX_CHAIN):
                        compile_trace(False)
                    else:
                        trace.append(payload)
                        trace_set.add(payload)
                if trace is None:
                    count = hot_counts.get(payload, 0) + 1
                    hot_counts[payload] = count
                    if count >= HOT_THRESHOLD and decoded.chainable:
                        trace = [payload]
                        trace_set = {payload}

            # ---- generic decode-once execution (mirrors _run_decoded) ---- #
            if total_instructions > max_instructions:
                raise SimulationError(
                    f"instruction limit exceeded ({self.max_instructions}); "
                    f"likely an infinite loop in {function_name}")

            if index >= len(records):
                # End of block without explicit control transfer: fall through.
                profile.record(current_block_key, total_cycles - block_cycle_start)
                next_name = block.fallthrough
                if next_name is None:
                    raise SimulationError(
                        f"fell off the end of {function_name}/{block.name}")
                block = functions[function_name].blocks[next_name]
                payload = (function_name, next_name)
                decoded = predecode(program, block)
                records = decoded.records
                fetch_region = decoded.fetch_region
                fetch_is_ram = decoded.fetch_is_ram
                index = 0
                entering = True
                block_cycle_start = total_cycles
                current_block_key = program.block_key(block)
                continue

            record = records[index]

            # --- predication (it blocks) ---------------------------------- #
            if record.is_it:
                pending_cond = record.cond
                total_cycles += 1
                total_instructions += 1
                cycles_by_section[fetch_region] += 1
                key = (1, fetch_region, _ALU_VALUE, None)
                energy_counts[key] = counts_get(key, 0) + 1
                index += 1
                continue

            if record.predicated:
                condition = record.cond if record.cond is not None else pending_cond
                if not cond_holds(condition, self.flag_n, self.flag_z,
                                  self.flag_c, self.flag_v):
                    total_cycles += 1
                    total_instructions += 1
                    cycles_by_section[fetch_region] += 1
                    key = (1, fetch_region, _ALU_VALUE, None)
                    energy_counts[key] = counts_get(key, 0) + 1
                    index += 1
                    continue

            # --- execute --------------------------------------------------- #
            data_region, transfer = record.run(self)

            if record.conditional and transfer is None:
                cycles = record.cycles_not_taken
            else:
                cycles = record.cycles_taken

            # RAM bus contention: executing from RAM while touching RAM data.
            if fetch_is_ram and data_region == "ram" and record.contention:
                cycles += RAM_CONTENTION_STALL

            total_cycles += cycles
            total_instructions += 1
            cycles_by_section[fetch_region] += cycles
            key = (cycles, fetch_region, record.klass_value, data_region)
            energy_counts[key] = counts_get(key, 0) + 1

            if transfer is None:
                index += 1
                continue

            kind, target = transfer
            profile.record(current_block_key, total_cycles - block_cycle_start)
            block_cycle_start = total_cycles

            if kind == "exit":
                publish_counters()
                return self._finish(total_cycles, total_instructions,
                                    energy_counts, profile, cycles_by_section)
            if kind == "block":
                function_name, target_block = target
                payload = target
                block = functions[function_name].blocks[target_block]
                index = 0
                entering = True
            elif kind == "call":
                # The superblock executor side-exits on call transfers, so a
                # chain crossing one could never be followed: end the trace.
                if trace is not None:
                    compile_trace(False)
                callee, return_site = target
                self.registers[LR.index] = self._intern_return_site(return_site)
                function_name = callee
                block = functions[callee].entry_block
                payload = (callee, block.name)
                index = 0
                entering = True
            elif kind == "return":
                # Re-enters the calling block mid-stream: not a block entry,
                # likewise ends any live trace.
                if trace is not None:
                    compile_trace(False)
                site_function, site_block, site_index = target
                function_name = site_function
                block = functions[site_function].blocks[site_block]
                payload = (site_function, site_block)
                index = site_index
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown transfer kind {kind}")
            decoded = predecode(program, block)
            records = decoded.records
            fetch_region = decoded.fetch_region
            fetch_is_ram = decoded.fetch_is_ram
            current_block_key = program.block_key(block)

    # ------------------------------------------------------------------ #
    # Interpreted reference path (the seed implementation, kept as oracle)
    # ------------------------------------------------------------------ #
    def _run_interpreted(self, entry: str) -> SimulationResult:
        profile = BlockProfile()
        total_cycles = 0
        total_instructions = 0
        energy_counts: Dict[Tuple, int] = {}
        counts_get = energy_counts.get
        cycles_by_section = {"flash": 0, "ram": 0}

        function_name = entry
        block = self.program.functions[entry].entry_block
        index = 0
        pending_cond: Optional[Cond] = None
        block_cycle_start = 0
        current_block_key = self.program.block_key(block)

        while True:
            if total_instructions > self.max_instructions:
                raise SimulationError(
                    f"instruction limit exceeded ({self.max_instructions}); "
                    f"likely an infinite loop in {function_name}")

            function = self.program.functions[function_name]
            if index >= len(block.instructions):
                # End of block without explicit control transfer: fall through.
                profile.record(current_block_key, total_cycles - block_cycle_start)
                next_name = block.fallthrough
                if next_name is None:
                    raise SimulationError(
                        f"fell off the end of {function_name}/{block.name}")
                block = function.blocks[next_name]
                index = 0
                block_cycle_start = total_cycles
                current_block_key = self.program.block_key(block)
                continue

            instr = block.instructions[index]
            fetch_region = "ram" if block.section == "ram" else "flash"

            # --- predication (it blocks) ---------------------------------- #
            if instr.opcode is Opcode.IT:
                pending_cond = instr.cond
                total_cycles += 1
                total_instructions += 1
                cycles_by_section[fetch_region] += 1
                key = (1, fetch_region, _ALU_VALUE, None)
                energy_counts[key] = counts_get(key, 0) + 1
                index += 1
                continue

            if instr.predicated:
                condition = instr.cond if instr.cond is not None else pending_cond
                take = cond_holds(condition, self.flag_n, self.flag_z,
                                  self.flag_c, self.flag_v)
                if not take:
                    total_cycles += 1
                    total_instructions += 1
                    cycles_by_section[fetch_region] += 1
                    key = (1, fetch_region, _ALU_VALUE, None)
                    energy_counts[key] = counts_get(key, 0) + 1
                    index += 1
                    continue

            # --- execute --------------------------------------------------- #
            outcome = self._execute(instr, function_name, block, index)
            (cycles, data_region, transfer) = outcome

            # RAM bus contention: executing from RAM while touching RAM data.
            if (fetch_region == "ram" and data_region == "ram"
                    and instr.opcode in (Opcode.LDR, Opcode.LDRB, Opcode.STR,
                                         Opcode.STRB, Opcode.LDR_LIT)):
                cycles += RAM_CONTENTION_STALL

            total_cycles += cycles
            total_instructions += 1
            cycles_by_section[fetch_region] += cycles
            key = (cycles, fetch_region, instr_class(instr).value, data_region)
            energy_counts[key] = counts_get(key, 0) + 1

            if transfer is None:
                index += 1
                continue

            kind, payload = transfer
            profile.record(current_block_key, total_cycles - block_cycle_start)
            block_cycle_start = total_cycles

            if kind == "exit":
                return self._finish(total_cycles, total_instructions,
                                    energy_counts, profile, cycles_by_section)
            if kind == "block":
                target_function, target_block = payload
                function_name = target_function
                block = self.program.functions[target_function].blocks[target_block]
                index = 0
            elif kind == "call":
                callee, return_site = payload
                self.registers[LR.index] = self._intern_return_site(return_site)
                function_name = callee
                block = self.program.functions[callee].entry_block
                index = 0
            elif kind == "return":
                site_function, site_block, site_index = payload
                function_name = site_function
                block = self.program.functions[site_function].blocks[site_block]
                index = site_index
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown transfer kind {kind}")
            current_block_key = self.program.block_key(block)

    # ------------------------------------------------------------------ #
    # Instruction execution
    # ------------------------------------------------------------------ #
    def _execute(self, instr: MachineInstr, function_name: str,
                 block: MachineBlock, index: int):
        """Execute one instruction.

        Returns ``(cycles, data_region, transfer)`` where *transfer* is None
        for straight-line execution or a tuple describing a control transfer.
        """
        op = instr.opcode
        operands = instr.operands
        data_region: Optional[str] = None
        transfer = None
        taken = True

        if op in (Opcode.MOV, Opcode.MVN):
            value = self._operand_value(operands[1], function_name)
            if op is Opcode.MVN:
                value = ~value & _MASK
            self._set(operands[0], value)

        elif op is Opcode.LDR_LIT:
            value = self._operand_value(operands[1], function_name)
            self._set(operands[0], value)
            data_region = "ram" if block.section == "ram" else "flash"

        elif op in (Opcode.ADD, Opcode.SUB, Opcode.RSB, Opcode.MUL, Opcode.SDIV,
                    Opcode.UDIV, Opcode.AND, Opcode.ORR, Opcode.EOR, Opcode.LSL,
                    Opcode.LSR, Opcode.ASR):
            self._execute_alu(op, operands, function_name)

        elif op is Opcode.CMP:
            a = self._operand_value(operands[0], function_name)
            b = self._operand_value(operands[1], function_name)
            self._set_flags_sub(a, b)

        elif op in (Opcode.LDR, Opcode.LDRB):
            base = self._operand_value(operands[1], function_name)
            offset = self._operand_value(operands[2], function_name)
            address = (base + offset) & _MASK
            data_region = self.memory.region_of(address)
            value = (self.memory.read_word(address) if op is Opcode.LDR
                     else self.memory.read_byte(address))
            self._set(operands[0], value)

        elif op in (Opcode.STR, Opcode.STRB):
            value = self._get(operands[0])
            base = self._operand_value(operands[1], function_name)
            offset = self._operand_value(operands[2], function_name)
            address = (base + offset) & _MASK
            data_region = self.memory.region_of(address)
            if op is Opcode.STR:
                self.memory.write_word(address, value)
            else:
                self.memory.write_byte(address, value)

        elif op is Opcode.PUSH:
            regs = sorted(operands[0].regs, key=lambda r: r.index)
            sp = self._get(SP) - 4 * len(regs)
            for position, reg in enumerate(regs):
                self.memory.write_word(sp + 4 * position, self._get(reg))
            self._set(SP, sp)
            data_region = "ram"

        elif op is Opcode.POP:
            regs = sorted(operands[0].regs, key=lambda r: r.index)
            sp = self._get(SP)
            jump_value = None
            for position, reg in enumerate(regs):
                value = self.memory.read_word(sp + 4 * position)
                if reg is PC:
                    jump_value = value
                else:
                    self._set(reg, value)
            self._set(SP, sp + 4 * len(regs))
            data_region = "ram"
            if jump_value is not None:
                transfer = self._transfer_to_address(jump_value, function_name)

        elif op is Opcode.B:
            target = operands[0].name
            transfer = ("block", (function_name, target))

        elif op is Opcode.BCC:
            taken = cond_holds(instr.cond, self.flag_n, self.flag_z,
                               self.flag_c, self.flag_v)
            if taken:
                transfer = ("block", (function_name, operands[0].name))

        elif op in (Opcode.CBZ, Opcode.CBNZ):
            value = self._get(operands[0])
            zero = value == 0
            taken = zero if op is Opcode.CBZ else not zero
            if taken:
                transfer = ("block", (function_name, operands[1].name))

        elif op is Opcode.BL:
            callee = operands[0].name
            if callee not in self.program.functions:
                raise SimulationError(f"call to unknown function {callee!r}")
            return_site = (function_name, block.name, index + 1)
            transfer = ("call", (callee, return_site))

        elif op is Opcode.BX:
            value = self._get(operands[0])
            transfer = self._transfer_to_address(value, function_name)

        elif op is Opcode.LDR_PC_LIT:
            target = operands[0].name
            transfer = ("block", (function_name, target))
            data_region = "ram" if block.section == "ram" else "flash"

        elif op is Opcode.NOP:
            pass

        else:  # pragma: no cover - defensive
            raise SimulationError(f"cannot execute {instr}")

        cycles = cycles_for(instr, taken=taken)
        return cycles, data_region, transfer

    def _execute_alu(self, op: Opcode, operands, function_name: str) -> None:
        dst = operands[0]
        a = self._operand_value(operands[1], function_name)
        b = self._operand_value(operands[2], function_name)
        if op is Opcode.ADD:
            result = a + b
        elif op is Opcode.SUB:
            result = a - b
        elif op is Opcode.RSB:
            result = b - a
        elif op is Opcode.MUL:
            result = a * b
        elif op is Opcode.SDIV:
            sa, sb = _signed(a), _signed(b)
            result = 0 if sb == 0 else int(sa / sb)
        elif op is Opcode.UDIV:
            result = 0 if b == 0 else a // b
        elif op is Opcode.AND:
            result = a & b
        elif op is Opcode.ORR:
            result = a | b
        elif op is Opcode.EOR:
            result = a ^ b
        elif op is Opcode.LSL:
            result = a << (b & 31)
        elif op is Opcode.LSR:
            result = a >> (b & 31)
        elif op is Opcode.ASR:
            result = _signed(a) >> (b & 31)
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown ALU op {op}")
        self._set(dst, result)

    # ------------------------------------------------------------------ #
    def _transfer_to_address(self, value: int, function_name: str = ""):
        """Classify an indirect jump value: exit token, return token or address."""
        if value == EXIT_TOKEN:
            return ("exit", None)
        if value >= RETURN_TOKEN_BASE and value != EXIT_TOKEN:
            site_index = value - RETURN_TOKEN_BASE
            if site_index >= len(self._return_sites):
                raise SimulationError(f"bad return token {value:#010x}")
            return ("return", self._return_sites[site_index])
        target = self._address_to_block.get(value)
        if target is None:
            raise SimulationError(
                f"indirect jump to {value:#010x} does not hit a block start")
        return ("block", target)
