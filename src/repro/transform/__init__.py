"""Code transformation: basic-block relocation to RAM and branch instrumentation."""

from repro.transform.instrumentation import (
    instrumentation_overhead,
    instrumentation_sequence,
    figure4_cost_table,
    InstrumentationCost,
)
from repro.transform.relocation import apply_placement, TransformError

__all__ = [
    "instrumentation_overhead",
    "instrumentation_sequence",
    "figure4_cost_table",
    "InstrumentationCost",
    "apply_placement",
    "TransformError",
]
