"""Branch instrumentation sequences and their costs (the paper's Figure 4).

A basic block whose successors may live in the other memory must end in
long-range *indirect* branches.  Figure 4 of the paper gives one rewrite per
terminator kind; this module builds those instruction sequences and derives
the per-block instrumentation costs ``T_b`` (extra cycles) and ``K_b`` (extra
bytes) that feed the ILP cost model.  Costs are computed from the very same
sequences the transformation emits, so the model and the generated code are
self-consistent by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.isa.conditions import Cond, invert_cond
from repro.isa.encoding import size_of
from repro.isa.instructions import Imm, MachineInstr, Opcode, Sym
from repro.isa.registers import SCRATCH_REG, Reg
from repro.isa.timing import cycles_for
from repro.machine.blocks import TerminatorKind


@dataclass(frozen=True)
class InstrumentationCost:
    """Cycles/bytes of the original terminator and of its indirect rewrite."""

    original_cycles: int
    original_bytes: int
    instrumented_cycles: int
    instrumented_bytes: int

    @property
    def extra_cycles(self) -> int:
        """The paper's ``T_b`` contribution for this terminator kind."""
        return self.instrumented_cycles - self.original_cycles

    @property
    def extra_bytes(self) -> int:
        """The paper's ``K_b`` contribution for this terminator kind."""
        return self.instrumented_bytes - self.original_bytes


def _sequence_cost(instrs: List[MachineInstr], taken_index: Optional[int]) -> Tuple[int, int]:
    """(cycles, bytes) of a sequence; at most one predicated instr is 'taken'."""
    cycles = 0
    size = 0
    for index, instr in enumerate(instrs):
        taken = True
        if instr.predicated:
            taken = (taken_index is None) or (index == taken_index)
        cycles += cycles_for(instr, taken=taken)
        size += size_of(instr)
    return cycles, size


def instrumentation_sequence(kind: TerminatorKind, then_label: str,
                             else_label: Optional[str] = None,
                             cond: Optional[Cond] = None,
                             compare_reg: Optional[Reg] = None,
                             compare_is_nonzero: bool = False) -> List[MachineInstr]:
    """Build the indirect-branch sequence replacing a terminator of *kind*.

    * unconditional / fall-through: ``ldr pc, =label``
    * conditional: ``it <c>; ldr<c> r12, =then; ldr<!c> r12, =else; bx r12``
    * short conditional (``cbz``/``cbnz``): the conditional form prefixed with
      an explicit ``cmp reg, #0`` because the compare was fused into the
      original instruction.
    """
    scratch = SCRATCH_REG
    if kind in (TerminatorKind.UNCONDITIONAL, TerminatorKind.FALLTHROUGH):
        return [MachineInstr(Opcode.LDR_PC_LIT, [Sym(then_label)],
                             comment="long branch")]
    if kind in (TerminatorKind.CONDITIONAL, TerminatorKind.SHORT_CONDITIONAL):
        if cond is None or else_label is None:
            raise ValueError("conditional instrumentation needs a condition and "
                             "both targets")
        sequence: List[MachineInstr] = []
        if kind is TerminatorKind.SHORT_CONDITIONAL:
            if compare_reg is None:
                raise ValueError("short conditional instrumentation needs the "
                                 "compared register")
            sequence.append(MachineInstr(Opcode.CMP, [compare_reg, Imm(0)],
                                         comment="was cbz/cbnz"))
            cond = Cond.NE if compare_is_nonzero else Cond.EQ
        sequence.extend([
            MachineInstr(Opcode.IT, [], cond=cond),
            MachineInstr(Opcode.LDR_LIT, [scratch, Sym(then_label)], cond=cond,
                         predicated=True, comment="long branch (taken)"),
            MachineInstr(Opcode.LDR_LIT, [scratch, Sym(else_label)],
                         cond=invert_cond(cond), predicated=True,
                         comment="long branch (not taken)"),
            MachineInstr(Opcode.BX, [scratch]),
        ])
        return sequence
    raise ValueError(f"terminator kind {kind} needs no instrumentation")


def _original_terminator_cost(kind: TerminatorKind) -> Tuple[int, int]:
    if kind is TerminatorKind.UNCONDITIONAL:
        instr = MachineInstr(Opcode.B, [Sym("x")])
        return cycles_for(instr), size_of(instr)
    if kind is TerminatorKind.CONDITIONAL:
        instr = MachineInstr(Opcode.BCC, [Sym("x")], cond=Cond.NE)
        # Average of taken / not-taken, matching C_b's treatment.
        cycles = (cycles_for(instr, taken=True) + cycles_for(instr, taken=False)) // 2
        return cycles, size_of(instr)
    if kind is TerminatorKind.SHORT_CONDITIONAL:
        instr = MachineInstr(Opcode.CBNZ, [Reg(0), Sym("x")])
        cycles = (cycles_for(instr, taken=True) + cycles_for(instr, taken=False)) // 2
        return cycles, size_of(instr)
    if kind is TerminatorKind.FALLTHROUGH:
        return 0, 0
    return 0, 0


def instrumentation_overhead(kind: TerminatorKind) -> InstrumentationCost:
    """Cost of instrumenting a block whose terminator is of *kind*.

    Returns zero overhead for returns and already-indirect terminators.
    """
    if kind in (TerminatorKind.RETURN, TerminatorKind.INDIRECT):
        return InstrumentationCost(0, 0, 0, 0)
    original_cycles, original_bytes = _original_terminator_cost(kind)
    if kind in (TerminatorKind.UNCONDITIONAL, TerminatorKind.FALLTHROUGH):
        sequence = instrumentation_sequence(kind, "x")
        cycles, size = _sequence_cost(sequence, taken_index=None)
    else:
        sequence = instrumentation_sequence(
            kind, "x", "y", cond=Cond.NE, compare_reg=Reg(0))
        taken_index = next(i for i, instr in enumerate(sequence) if instr.predicated)
        cycles, size = _sequence_cost(sequence, taken_index=taken_index)
    return InstrumentationCost(original_cycles, original_bytes, cycles, size)


#: The paper's Figure 4 numbers (cycles, bytes) for original and instrumented
#: terminators, kept as reference data for the reproduction report.
PAPER_FIGURE4 = {
    TerminatorKind.UNCONDITIONAL: InstrumentationCost(3, 2, 4, 4),
    TerminatorKind.CONDITIONAL: InstrumentationCost(3, 2, 7, 8),
    TerminatorKind.SHORT_CONDITIONAL: InstrumentationCost(3, 2, 8, 10),
    TerminatorKind.FALLTHROUGH: InstrumentationCost(0, 0, 4, 4),
}


def figure4_cost_table() -> Dict[str, Dict[str, InstrumentationCost]]:
    """Paper vs model instrumentation costs, keyed by terminator kind name."""
    table: Dict[str, Dict[str, InstrumentationCost]] = {}
    for kind, paper in PAPER_FIGURE4.items():
        table[kind.value] = {"paper": paper, "model": instrumentation_overhead(kind)}
    return table
