"""Apply a placement solution: relocate blocks to RAM and rewrite branches.

This is the paper's Section 5 transformation, performed "at the very end of
compilation": the chosen basic blocks are moved into a section loaded to RAM
at start-up and every block with a successor in the other memory has its
terminator rewritten into the long-range indirect forms of Figure 4.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.isa.conditions import Cond
from repro.isa.instructions import MachineInstr, Opcode, Sym
from repro.isa.registers import Reg
from repro.machine.blocks import MachineBlock, MachineFunction, TerminatorKind
from repro.machine.layout import assign_addresses
from repro.machine.program import MachineProgram
from repro.transform.instrumentation import instrumentation_sequence


class TransformError(Exception):
    """Raised when a placement cannot be applied to the program."""


def apply_placement(program: MachineProgram, ram_blocks: Iterable[str],
                    stack_reserve: int = 1024) -> List[str]:
    """Move the blocks named in *ram_blocks* (function-qualified keys) to RAM.

    Returns the list of block keys that had to be instrumented.  The program
    is modified in place and re-laid-out; callers can simulate it directly
    afterwards.
    """
    ram_set: Set[str] = set(ram_blocks)

    # Validate and set sections.
    for key in ram_set:
        block = _find_block(program, key)
        if program.functions[block.function_name].is_library:
            raise TransformError(f"cannot move library block {key} to RAM")
        block.section = "ram"
    for block in program.iter_blocks():
        if program.block_key(block) not in ram_set:
            block.section = "flash"
        block.instrumented = False

    instrumented: List[str] = []
    for function in program.iter_functions():
        for block in function.iter_blocks():
            if _needs_instrumentation(function, block):
                _instrument_block(function, block)
                block.instrumented = True
                instrumented.append(program.block_key(block))

    assign_addresses(program, stack_reserve=stack_reserve)
    return instrumented


def _find_block(program: MachineProgram, key: str) -> MachineBlock:
    try:
        return program.find_block(key)
    except KeyError as exc:
        raise TransformError(f"unknown block key {key!r}") from exc


def _needs_instrumentation(function: MachineFunction, block: MachineBlock) -> bool:
    """Equation 5: instrument when any successor lives in the other memory."""
    for succ_name in block.successors():
        succ = function.blocks[succ_name]
        if succ.section != block.section:
            return True
    return False


def _instrument_block(function: MachineFunction, block: MachineBlock) -> None:
    kind = block.terminator_kind()
    if kind in (TerminatorKind.RETURN, TerminatorKind.INDIRECT):
        return

    if kind is TerminatorKind.FALLTHROUGH:
        target = block.fallthrough
        if target is None:
            raise TransformError(
                f"{block.function_name}/{block.name} has no successor to reach")
        block.instructions.extend(instrumentation_sequence(kind, target))
        block.branch_target = target
        block.fallthrough = None
        return

    if kind is TerminatorKind.UNCONDITIONAL:
        branch = block.instructions[-1]
        target = branch.operands[0].name
        block.instructions = block.instructions[:-1]
        block.instructions.extend(instrumentation_sequence(kind, target))
        block.branch_target = target
        block.fallthrough = None
        return

    if kind in (TerminatorKind.CONDITIONAL, TerminatorKind.SHORT_CONDITIONAL):
        then_label, else_label, cond, compare_reg, nonzero, keep = \
            _analyse_conditional(block)
        block.instructions = keep
        block.instructions.extend(instrumentation_sequence(
            kind, then_label, else_label, cond=cond, compare_reg=compare_reg,
            compare_is_nonzero=nonzero))
        block.branch_target = then_label
        block.extra_target = else_label
        block.fallthrough = None
        return

    raise TransformError(f"cannot instrument terminator kind {kind}")


def _analyse_conditional(block: MachineBlock):
    """Pull apart a conditional terminator (bcc/cbz [+ trailing b])."""
    instrs = block.instructions
    trailing_branch: Optional[MachineInstr] = None
    conditional_index = len(instrs) - 1
    if instrs and instrs[-1].opcode is Opcode.B:
        trailing_branch = instrs[-1]
        conditional_index -= 1
    conditional = instrs[conditional_index]

    if conditional.opcode is Opcode.BCC:
        then_label = conditional.operands[0].name
        cond = conditional.cond
        compare_reg = None
        nonzero = False
    elif conditional.opcode in (Opcode.CBZ, Opcode.CBNZ):
        compare_reg = conditional.operands[0]
        then_label = conditional.operands[1].name
        cond = Cond.EQ if conditional.opcode is Opcode.CBZ else Cond.NE
        nonzero = conditional.opcode is Opcode.CBNZ
    else:
        raise TransformError(
            f"block {block.function_name}/{block.name} has no conditional terminator")

    if trailing_branch is not None:
        else_label = trailing_branch.operands[0].name
    else:
        else_label = block.fallthrough
    if else_label is None:
        raise TransformError(
            f"block {block.function_name}/{block.name} has no else successor")

    keep = instrs[:conditional_index]
    return then_label, else_label, cond, compare_reg, nonzero, keep
