"""Figure 2: the motivating example function and what the optimizer does to it.

The paper's example is a small function whose inner loop dominates execution;
the optimizer moves the loop block (and the small joining block after it, to
avoid instrumenting the hot loop) into RAM.
"""

from __future__ import annotations

from typing import Dict

from repro.codegen import CompileOptions
from repro.engine import default_cache
from repro.placement import FlashRAMOptimizer, PlacementConfig
from repro.sim import Simulator

MOTIVATING_SOURCE = r"""
// The function of Figure 2: x = k^64 clamped to 255.
int fn(int k)
{
    int i;
    int x;
    x = 1;
    for (i = 0; i < 64; ++i) {
        x *= k;
    }
    if (x > 255) {
        x = 255;
    }
    return x;
}

int main(void)
{
    int total = 0;
    for (int k = 1; k <= 8; ++k) {
        total += fn(k);
    }
    return total;
}
"""


def motivating_example_report(opt_level: str = "O2",
                              x_limit: float = 1.5) -> Dict:
    """Compile, optimize and simulate the Figure 2 example; return a summary."""
    cache = default_cache()
    options = CompileOptions.for_level(opt_level, program_name="fig2")
    baseline_program = cache.get(MOTIVATING_SOURCE, options)
    baseline = Simulator(baseline_program).run()

    optimized_program = cache.get_mutable(MOTIVATING_SOURCE, options)
    optimizer = FlashRAMOptimizer(optimized_program,
                                  config=PlacementConfig(x_limit=x_limit))
    solution = optimizer.optimize()
    optimized = Simulator(optimized_program).run()

    loop_blocks_in_ram = [key for key in solution.ram_blocks if "for" in key
                          or "loop" in key]
    return {
        "return_value": baseline.signed_return_value,
        "result_preserved": baseline.return_value == optimized.return_value,
        "ram_blocks": sorted(solution.ram_blocks),
        "loop_blocks_in_ram": sorted(loop_blocks_in_ram),
        "instrumented_blocks": sorted(solution.instrumented),
        "energy_change": optimized.energy_j / baseline.energy_j - 1.0,
        "time_change": optimized.cycles / baseline.cycles - 1.0,
        "power_change": (optimized.average_power_w / baseline.average_power_w) - 1.0,
    }
