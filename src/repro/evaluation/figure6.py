"""Figure 6: the design space of possible placements and the solver trajectory.

For a benchmark the harness enumerates the ``2^k`` combinations of its ``k``
most significant basic blocks (the paper notes int_matmult's clusters are made
by its three large hot blocks), evaluates each with the cost model, and traces
which solutions the ILP picks as ``R_spare`` and ``X_limit`` are relaxed —
the solid and dashed lines of the figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.engine import default_cache
from repro.placement import FlashRAMOptimizer, PlacementConfig
from repro.placement.solvers.exhaustive import enumerate_placements, significant_blocks
from repro.sim import EnergyModel


@dataclass
class DesignSpacePoint:
    """One placement of the enumerated space."""

    ram_blocks: int
    energy_j: float
    time_ratio: float
    ram_bytes: int


def _build_model(benchmark_name: str, opt_level: str):
    # The sweeps only *evaluate* placements (select_blocks never applies the
    # transformation), so everything can work on one cached private copy.
    program = default_cache().get_benchmark_mutable(benchmark_name, opt_level)
    optimizer = FlashRAMOptimizer(program, config=PlacementConfig())
    model = optimizer.build_cost_model()
    return program, optimizer, model


def design_space(benchmark_name: str, opt_level: str = "O2",
                 max_blocks: int = 12) -> List[DesignSpacePoint]:
    """Enumerate the placement space of one benchmark (the cloud of Figure 6)."""
    _, _, model = _build_model(benchmark_name, opt_level)
    blocks = significant_blocks(model, max_blocks)
    points: List[DesignSpacePoint] = []
    for point in enumerate_placements(model, blocks, max_blocks):
        estimate = point.estimate
        points.append(DesignSpacePoint(
            ram_blocks=len(point.ram_blocks),
            energy_j=estimate.energy_j,
            time_ratio=estimate.time_ratio,
            ram_bytes=estimate.ram_bytes,
        ))
    return points


def solver_trajectories(benchmark_name: str, opt_level: str = "O2",
                        ram_steps: Optional[List[int]] = None,
                        time_steps: Optional[List[float]] = None) -> Dict[str, List[Dict]]:
    """The solid (R_spare sweep) and dashed (X_limit sweep) lines of Figure 6."""
    program, optimizer, model = _build_model(benchmark_name, opt_level)
    ram_steps = ram_steps or [0, 32, 64, 128, 256, 512, 1024, 2048]
    time_steps = time_steps or [1.0, 1.05, 1.1, 1.2, 1.3, 1.5, 2.0]

    trajectories: Dict[str, List[Dict]] = {"ram_sweep": [], "time_sweep": []}

    for r_spare in ram_steps:
        config = PlacementConfig(x_limit=10.0, r_spare=r_spare)
        sweep_optimizer = FlashRAMOptimizer(program, config=config)
        solution = sweep_optimizer.select_blocks()
        trajectories["ram_sweep"].append({
            "r_spare": r_spare,
            "energy_j": solution.estimate.energy_j,
            "time_ratio": solution.estimate.time_ratio,
            "ram_bytes": solution.estimate.ram_bytes,
            "blocks": len(solution.ram_blocks),
        })

    for x_limit in time_steps:
        config = PlacementConfig(x_limit=x_limit, r_spare=4096)
        sweep_optimizer = FlashRAMOptimizer(program, config=config)
        solution = sweep_optimizer.select_blocks()
        trajectories["time_sweep"].append({
            "x_limit": x_limit,
            "energy_j": solution.estimate.energy_j,
            "time_ratio": solution.estimate.time_ratio,
            "ram_bytes": solution.estimate.ram_bytes,
            "blocks": len(solution.ram_blocks),
        })
    return trajectories
