"""Figure 9: post-optimization energy vs the sensing period ``T``.

The measured ``ke`` / ``kt`` factors of the named benchmarks (fdct,
int_matmult, 2dfir in the paper) are fed into the periodic-sensing model and
evaluated at ``T = m * TA`` for increasing multiples ``m``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.engine import ExperimentEngine, default_engine
from repro.power.sleep_model import PeriodicSensingModel, SleepParameters

FIGURE9_BENCHMARKS = ["fdct", "int_matmult", "2dfir"]
DEFAULT_MULTIPLES = [1.5, 2, 3, 4, 6, 8, 12, 16]


def period_sweep(benchmarks: Optional[Sequence[str]] = None,
                 opt_level: str = "O2",
                 multiples: Optional[Sequence[float]] = None,
                 sleep_power_w: float = 3.5e-3,
                 x_limit: float = 1.5,
                 engine: Optional[ExperimentEngine] = None) -> Dict[str, List[Dict]]:
    """For each benchmark, the energy-percentage series of Figure 9."""
    engine = engine if engine is not None else default_engine()
    series: Dict[str, List[Dict]] = {}
    for name in (benchmarks or FIGURE9_BENCHMARKS):
        run = engine.run_optimized(name, opt_level, x_limit=x_limit)
        params = SleepParameters(
            active_energy_j=run.baseline.energy_j,
            active_time_s=run.baseline.time_s,
            energy_factor=run.ke,
            time_factor=run.kt,
            sleep_power_w=sleep_power_w,
        )
        model = PeriodicSensingModel(params)
        rows = model.sweep_periods(list(multiples or DEFAULT_MULTIPLES))
        for row in rows:
            row["benchmark"] = name
            row["ke"] = run.ke
            row["kt"] = run.kt
        series[name] = rows
    return series
