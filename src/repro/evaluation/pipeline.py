"""Shared compile/optimize/simulate pipeline used by every experiment.

Since the engine refactor these helpers are thin wrappers over
:class:`repro.engine.ExperimentEngine`: programs are compiled exactly once per
process through the content-addressed cache (the seed implementation compiled
each optimized benchmark twice from source), baselines are simulated on the
shared pristine program, and the placement optimizer works on a private deep
copy.  :class:`BenchmarkRun` now lives in :mod:`repro.engine.results` and is
re-exported here for compatibility.
"""

from __future__ import annotations

from typing import Optional

from repro.beebs import Benchmark, get_benchmark
from repro.codegen import CompileOptions
from repro.engine.cache import default_cache
from repro.engine.engine import ExperimentEngine, default_engine
from repro.engine.results import BenchmarkRun
from repro.machine.program import MachineProgram
from repro.sim import EnergyModel

__all__ = [
    "BenchmarkRun",
    "compile_benchmark",
    "run_benchmark",
    "run_optimized_benchmark",
]


def _engine_for(energy_model: Optional[EnergyModel]) -> ExperimentEngine:
    """The default engine, or an ephemeral one for a custom energy model.

    The ephemeral engine still shares the process-wide program cache —
    compilation is independent of the energy model — but keeps its own
    baseline-result memo, which does depend on it.
    """
    if energy_model is None:
        return default_engine()
    return ExperimentEngine(energy_model=energy_model)


def compile_benchmark(benchmark: Benchmark, opt_level: str = "O2") -> MachineProgram:
    """Compile one benchmark at the requested level.

    Returns a private copy (callers may transform it); the underlying compile
    happens at most once per process.
    """
    options = CompileOptions.for_level(opt_level, program_name=benchmark.name)
    return default_cache().get_mutable(benchmark.source, options)


def run_benchmark(name: str, opt_level: str = "O2",
                  energy_model: Optional[EnergyModel] = None) -> BenchmarkRun:
    """Compile and simulate one benchmark without the optimization."""
    return _engine_for(energy_model).run_baseline(name, opt_level)


def run_optimized_benchmark(name: str, opt_level: str = "O2",
                            x_limit: float = 1.5,
                            r_spare: Optional[int] = None,
                            frequency_mode: str = "static",
                            solver: str = "ilp",
                            energy_model: Optional[EnergyModel] = None) -> BenchmarkRun:
    """Run the full experiment for one benchmark: baseline, optimize, re-run.

    ``frequency_mode="profile"`` first simulates the baseline to collect block
    counts and feeds them to the optimizer (the dotted points of Figure 5).
    """
    get_benchmark(name)  # fail fast on unknown names, as the seed did
    return _engine_for(energy_model).run_optimized(
        name, opt_level, x_limit=x_limit, r_spare=r_spare,
        frequency_mode=frequency_mode, solver=solver)
