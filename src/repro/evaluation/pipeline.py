"""Shared compile/optimize/simulate pipeline used by every experiment."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.beebs import Benchmark, get_benchmark
from repro.codegen import CompileOptions, OptLevel, compile_source
from repro.machine.program import MachineProgram
from repro.placement import FlashRAMOptimizer, PlacementConfig, PlacementSolution
from repro.sim import EnergyModel, SimulationResult, Simulator


@dataclass
class BenchmarkRun:
    """Everything measured for one benchmark at one optimization level."""

    name: str
    opt_level: str
    baseline: SimulationResult
    optimized: Optional[SimulationResult] = None
    solution: Optional[PlacementSolution] = None

    @property
    def energy_change(self) -> float:
        """Relative energy change (negative = saving), e.g. -0.22 for -22 %."""
        if self.optimized is None:
            return 0.0
        return self.optimized.energy_j / self.baseline.energy_j - 1.0

    @property
    def time_change(self) -> float:
        if self.optimized is None:
            return 0.0
        return self.optimized.cycles / self.baseline.cycles - 1.0

    @property
    def power_change(self) -> float:
        if self.optimized is None:
            return 0.0
        return (self.optimized.average_power_w / self.baseline.average_power_w) - 1.0

    @property
    def ke(self) -> float:
        """The case-study energy factor k_e."""
        return 1.0 + self.energy_change

    @property
    def kt(self) -> float:
        """The case-study time factor k_t."""
        return 1.0 + self.time_change


def compile_benchmark(benchmark: Benchmark, opt_level: str = "O2") -> MachineProgram:
    """Compile one benchmark at the requested level."""
    options = CompileOptions.for_level(opt_level, program_name=benchmark.name)
    return compile_source(benchmark.source, options)


def run_benchmark(name: str, opt_level: str = "O2",
                  energy_model: Optional[EnergyModel] = None) -> BenchmarkRun:
    """Compile and simulate one benchmark without the optimization."""
    benchmark = get_benchmark(name)
    program = compile_benchmark(benchmark, opt_level)
    result = Simulator(program, energy_model=energy_model).run()
    return BenchmarkRun(name=name, opt_level=opt_level, baseline=result)


def run_optimized_benchmark(name: str, opt_level: str = "O2",
                            x_limit: float = 1.5,
                            r_spare: Optional[int] = None,
                            frequency_mode: str = "static",
                            solver: str = "ilp",
                            energy_model: Optional[EnergyModel] = None) -> BenchmarkRun:
    """Run the full experiment for one benchmark: baseline, optimize, re-run.

    ``frequency_mode="profile"`` first simulates the baseline to collect block
    counts and feeds them to the optimizer (the dotted points of Figure 5).
    """
    benchmark = get_benchmark(name)
    energy_model = energy_model or EnergyModel()

    baseline_program = compile_benchmark(benchmark, opt_level)
    baseline = Simulator(baseline_program, energy_model=energy_model).run()

    optimized_program = compile_benchmark(benchmark, opt_level)
    config = PlacementConfig(x_limit=x_limit, r_spare=r_spare,
                             frequency_mode=frequency_mode, solver=solver)
    optimizer = FlashRAMOptimizer(optimized_program, energy_model=energy_model,
                                  config=config)
    profile = baseline.profile if frequency_mode == "profile" else None
    solution = optimizer.optimize(profile=profile)
    optimized = Simulator(optimized_program, energy_model=energy_model).run()

    if optimized.return_value != baseline.return_value:
        raise AssertionError(
            f"{name}/{opt_level}: optimization changed the result "
            f"({baseline.return_value} -> {optimized.return_value})")

    return BenchmarkRun(name=name, opt_level=opt_level, baseline=baseline,
                        optimized=optimized, solution=solution)
