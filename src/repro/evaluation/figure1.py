"""Figure 1: average power per instruction type, executed from flash vs RAM.

The paper runs loops of 16 identical instructions from each memory.  We build
the same microbenchmarks directly at the IR level, place the loop body either
in flash or in RAM (via the standard transformation machinery) and measure the
simulator's average power.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.ir import GlobalData, IRBuilder, Function, Module, Const
from repro.codegen import CompileOptions, compile_ir_module
from repro.sim import EnergyModel, Simulator
from repro.transform import apply_placement

#: Instruction kinds shown in Figure 1 (``flash load`` = load of flash data
#: while executing from RAM).
FIGURE1_KINDS = ["store", "ram load", "add", "nop", "branch", "flash load"]

_LOOP_ITERATIONS = 200
_UNROLL = 16


def _build_microbenchmark(kind: str) -> Module:
    """A loop of 16 identical instructions of *kind*, plus loop control."""
    module = Module(f"fig1_{kind.replace(' ', '_')}")
    module.add_global(GlobalData("ram_buffer", [7] * 4, const=False))
    module.add_global(GlobalData("flash_table", [11] * 4, const=True))

    function = Function("main", num_params=0, returns_value=True)
    module.add_function(function)
    builder = IRBuilder(function)

    entry = builder.new_block("entry")
    loop = builder.new_block("loop")
    exit_block = builder.new_block("exit")

    builder.set_block(entry)
    counter = builder.mov(Const(_LOOP_ITERATIONS))
    ram_base = builder.addr_of("ram_buffer")
    flash_base = builder.addr_of("flash_table")
    value = builder.mov(Const(21))
    builder.jump(loop)

    builder.set_block(loop)
    for _ in range(_UNROLL):
        if kind == "store":
            builder.store(value, ram_base, Const(0))
        elif kind == "ram load":
            value = builder.load(ram_base, Const(0))
        elif kind == "flash load":
            value = builder.load(flash_base, Const(0))
        elif kind == "add":
            value = builder.add(value, Const(1))
        elif kind == "nop":
            # A register-to-register move is the closest IR equivalent; the
            # selector emits a single-cycle `mov`.
            value = builder.mov(value)
        elif kind == "branch":
            value = builder.add(value, Const(0))
        else:
            raise ValueError(f"unknown Figure 1 kind {kind!r}")
    next_counter = builder.sub(counter, Const(1))
    # Re-use the same virtual register as loop counter.
    from repro.ir.instructions import Mov
    builder.block.append(Mov(counter, next_counter))
    builder.branch("gt", counter, Const(0), loop, exit_block)

    builder.set_block(exit_block)
    builder.ret(value)
    return module


def _measure(kind: str, in_ram: bool,
             energy_model: Optional[EnergyModel] = None) -> float:
    module = _build_microbenchmark(kind)
    program = compile_ir_module(module, CompileOptions.for_level(
        "O1", program_name=module.name, link_runtime=False))
    if in_ram:
        loop_keys = [program.block_key(b) for b in program.iter_blocks()
                     if b.name.startswith("loop")]
        apply_placement(program, loop_keys)
    result = Simulator(program, energy_model=energy_model).run()
    return result.average_power_mw


def instruction_power_rows(energy_model: Optional[EnergyModel] = None) -> List[Dict]:
    """Rows of Figure 1: per instruction kind, power from flash and from RAM.

    The ``flash load`` row keeps its data in flash, which is the paper's
    "executing from RAM still hits the flash" exception.
    """
    rows: List[Dict] = []
    for kind in FIGURE1_KINDS:
        flash_power = _measure(kind, in_ram=False, energy_model=energy_model)
        ram_power = _measure(kind, in_ram=True, energy_model=energy_model)
        rows.append({
            "instruction": kind,
            "flash_power_mw": flash_power,
            "ram_power_mw": ram_power,
            "ram_saving_percent": 100.0 * (1.0 - ram_power / flash_power),
        })
    return rows
