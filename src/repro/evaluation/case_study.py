"""Section 7 case study: periodic sensing with the fdct kernel.

Two views are produced:

* the paper's own worked example (E0 = 16.9 mJ, TA = 1.18 s, ke = 0.825,
  kt = 1.33, PS = 3.5 mW), which must give Es = 4.32 mJ, and
* the same calculation with *our* measured E0/TA/ke/kt from the simulator, to
  show the qualitative conclusions (energy saved even when active-region
  energy barely drops; battery life extended up to ~32 %) carry over.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.engine import ExperimentEngine, default_engine
from repro.power.sleep_model import (
    PAPER_FDCT_E0_J,
    PAPER_FDCT_KE,
    PAPER_FDCT_KT,
    PAPER_FDCT_TA_S,
    PAPER_SLEEP_POWER_W,
    PeriodicSensingModel,
    SleepParameters,
)

#: Energy saving the paper derives from Equation 12 for its fdct example.
PAPER_ENERGY_SAVED_J = 4.32e-3
#: Battery-life extension the paper quotes for the best case.
PAPER_BATTERY_EXTENSION = 0.32


def paper_worked_example() -> Dict[str, float]:
    """Evaluate Equations 10-12 with the paper's own constants."""
    model = PeriodicSensingModel(SleepParameters(
        active_energy_j=PAPER_FDCT_E0_J,
        active_time_s=PAPER_FDCT_TA_S,
        energy_factor=PAPER_FDCT_KE,
        time_factor=PAPER_FDCT_KT,
        sleep_power_w=PAPER_SLEEP_POWER_W,
    ))
    shortest_period = PAPER_FDCT_KT * PAPER_FDCT_TA_S
    return {
        "energy_saved_j": model.energy_saved(),
        "paper_energy_saved_j": PAPER_ENERGY_SAVED_J,
        "battery_extension_at_2ta": model.battery_life_extension(2 * PAPER_FDCT_TA_S),
        "battery_extension_best": model.battery_life_extension(shortest_period),
        "energy_ratio_at_2ta": model.energy_ratio(2 * PAPER_FDCT_TA_S),
    }


def case_study_report(benchmark: str = "fdct", opt_level: str = "O2",
                      sleep_power_w: float = PAPER_SLEEP_POWER_W,
                      x_limit: float = 1.5,
                      engine: Optional[ExperimentEngine] = None) -> Dict[str, Dict]:
    """Paper constants vs our measured pipeline, side by side."""
    engine = engine if engine is not None else default_engine()
    run = engine.run_optimized(benchmark, opt_level, x_limit=x_limit)
    measured_params = SleepParameters(
        active_energy_j=run.baseline.energy_j,
        active_time_s=run.baseline.time_s,
        energy_factor=run.ke,
        time_factor=run.kt,
        sleep_power_w=sleep_power_w,
    )
    measured_model = PeriodicSensingModel(measured_params)
    shortest = max(run.kt, 1.0) * run.baseline.time_s
    measured = {
        "active_energy_j": run.baseline.energy_j,
        "active_time_s": run.baseline.time_s,
        "ke": run.ke,
        "kt": run.kt,
        "energy_saved_j": measured_model.energy_saved(),
        "battery_extension_best": measured_model.battery_life_extension(shortest),
        "battery_extension_at_2ta": measured_model.battery_life_extension(
            max(2 * run.baseline.time_s, shortest)),
    }
    return {"paper": paper_worked_example(), "measured": measured}
