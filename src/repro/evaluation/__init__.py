"""Evaluation harness: one module per figure / reported number of the paper."""

from repro.evaluation.pipeline import (
    BenchmarkRun,
    run_benchmark,
    run_optimized_benchmark,
)
from repro.evaluation.figure1 import instruction_power_rows
from repro.evaluation.figure2 import motivating_example_report
from repro.evaluation.figure5 import evaluate_suite, summarize, suite_specs, SuiteRow
from repro.evaluation.figure6 import design_space, solver_trajectories
from repro.evaluation.figure9 import period_sweep
from repro.evaluation.case_study import case_study_report
from repro.evaluation.exploration import exploration_report, exploration_sweep

__all__ = [
    "BenchmarkRun",
    "run_benchmark",
    "run_optimized_benchmark",
    "instruction_power_rows",
    "motivating_example_report",
    "evaluate_suite",
    "summarize",
    "suite_specs",
    "SuiteRow",
    "design_space",
    "solver_trajectories",
    "period_sweep",
    "case_study_report",
    "exploration_sweep",
    "exploration_report",
]
