"""Figure 5/6-style design-space sweep over the BEEBS suite.

Where ``figure5`` measures one (X_limit, energy model) point per benchmark
and ``figure6`` enumerates raw placements of a single benchmark, this module
sweeps the *solved* trade-off space: for every benchmark it runs the
placement optimizer across a grid of ``X_limit`` × spare-RAM × flash/RAM
energy-ratio × solver settings through ``repro.explore`` and marks the
energy/time/RAM Pareto frontier of each benchmark's cloud — the paper's
Section 6 exploration as one deterministic artifact.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.beebs import BENCHMARK_NAMES
from repro.engine import ExperimentEngine
from repro.explore import SweepSpec, mark_pareto, run_sweep, sweep_report

#: Default exploration axes: the paper's X_limit range (Figure 6 relaxes it
#: from 1.0 to well past 1.5) and a flash/RAM energy-ratio span around the
#: calibrated Figure 1 tables (ratio ~1.7 on the STM32F100).
DEFAULT_X_LIMITS: Tuple[float, ...] = (1.05, 1.1, 1.2, 1.5, 2.0)
DEFAULT_RATIOS: Tuple[Optional[float], ...] = (None, 1.25, 2.5)


def exploration_sweep(benchmarks: Optional[Sequence[str]] = None,
                      opt_levels: Sequence[str] = ("O2",),
                      x_limits: Sequence[float] = DEFAULT_X_LIMITS,
                      r_spares: Sequence[Optional[int]] = (None,),
                      flash_ram_ratios: Sequence[Optional[float]] = DEFAULT_RATIOS,
                      solvers: Sequence[str] = ("ilp",),
                      frequency_modes: Sequence[str] = ("static",),
                      timing_models: Sequence[str] = ("flat",),
                      engine: Optional[ExperimentEngine] = None,
                      max_workers: Optional[int] = None) -> Tuple[List[Dict], Dict]:
    """Run the sweep; returns (records, meta) ready for a result store.

    Every record carries a ``pareto`` flag (frontier of its benchmark's
    energy / time-ratio / RAM-bytes cloud); the meta block summarises the
    axes and frontier sizes.  Records are in deterministic cell order and
    parallel runs are bitwise identical to sequential ones.
    """
    sweep = SweepSpec(
        benchmarks=tuple(benchmarks or BENCHMARK_NAMES),
        opt_levels=tuple(opt_levels),
        x_limits=tuple(x_limits),
        r_spares=tuple(r_spares),
        flash_ram_ratios=tuple(flash_ram_ratios),
        solvers=tuple(solvers),
        frequency_modes=tuple(frequency_modes),
        timing_models=tuple(timing_models),
    )
    result = run_sweep(sweep, engine=engine, max_workers=max_workers)
    records = mark_pareto(result.records)
    meta = result.meta()
    meta["pareto_points"] = sum(1 for record in records if record["pareto"])
    meta["pareto_by_benchmark"] = {
        name: sum(1 for record in records
                  if record["benchmark"] == name and record["pareto"])
        for name in sweep.benchmarks
    }
    return records, meta


def exploration_report(records: Sequence[Dict]) -> Dict:
    """The Figure 5/6 artifacts rebuilt from stored sweep records.

    Takes the raw records of a (possibly merged) keyed sweep store and
    returns per-benchmark Pareto fronts, the energy/time-vs-``X_limit``
    envelope table and frontier sizes — no simulation involved.  This is the
    library face of ``repro-eval report``.
    """
    return sweep_report(list(records))
