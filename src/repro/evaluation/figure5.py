"""Figure 5 and the Section 6 headline numbers.

For every benchmark and optimization level the harness measures the percentage
change in energy, execution time and average power caused by the optimization,
optionally with profiled instead of estimated block frequencies, and
aggregates the averages the paper quotes (−7.7 % energy, −21.9 % power,
+19.5 % time across all benchmarks and levels).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.beebs import BENCHMARK_NAMES
from repro.engine import ExperimentEngine, ExperimentSpec, default_engine

#: Optimization levels of the paper's full sweep and of Figure 5 itself.
ALL_LEVELS = ["O0", "O1", "O2", "O3", "Os"]
FIGURE5_LEVELS = ["O2", "Os"]

#: Paper-reported aggregate numbers (for EXPERIMENTS.md comparisons).
PAPER_AVERAGE_ENERGY_CHANGE = -0.077
PAPER_AVERAGE_POWER_CHANGE = -0.219
PAPER_AVERAGE_TIME_CHANGE = +0.195
PAPER_BEST_ENERGY_CHANGE = -0.22       # int_matmult at O2
PAPER_BEST_POWER_CHANGE = -0.41        # fdct at O2


@dataclass
class SuiteRow:
    """One bar pair of Figure 5."""

    benchmark: str
    opt_level: str
    frequency_mode: str
    energy_change: float
    time_change: float
    power_change: float
    ram_bytes: int
    blocks_moved: int

    def as_dict(self) -> Dict:
        return {
            "benchmark": self.benchmark,
            "opt_level": self.opt_level,
            "frequency_mode": self.frequency_mode,
            "energy_change_percent": 100.0 * self.energy_change,
            "time_change_percent": 100.0 * self.time_change,
            "power_change_percent": 100.0 * self.power_change,
            "ram_bytes": self.ram_bytes,
            "blocks_moved": self.blocks_moved,
        }


def suite_specs(benchmarks: Optional[Sequence[str]] = None,
                levels: Optional[Sequence[str]] = None,
                frequency_modes: Sequence[str] = ("static",),
                x_limit: float = 1.5) -> List[ExperimentSpec]:
    """The experiment grid of Figure 5 as engine specs (row order of the figure)."""
    return [
        ExperimentSpec(benchmark=name, opt_level=level, frequency_mode=mode,
                       x_limit=x_limit)
        for name in (benchmarks or BENCHMARK_NAMES)
        for level in (levels or FIGURE5_LEVELS)
        for mode in frequency_modes
    ]


def evaluate_suite(benchmarks: Optional[Sequence[str]] = None,
                   levels: Optional[Sequence[str]] = None,
                   frequency_modes: Sequence[str] = ("static",),
                   x_limit: float = 1.5,
                   engine: Optional[ExperimentEngine] = None,
                   max_workers: Optional[int] = None) -> List[SuiteRow]:
    """Run the optimization experiment over the benchmark/level grid.

    The grid runs through the experiment engine: one compile per (benchmark,
    level), memoised baselines, and — when ``max_workers`` (or the engine
    default) allows it — a process-pool fan-out with deterministic, bitwise
    reproducible results in grid order.
    """
    engine = engine if engine is not None else default_engine()
    specs = suite_specs(benchmarks, levels, frequency_modes, x_limit)
    runs = engine.run_grid(specs, max_workers=max_workers)
    rows: List[SuiteRow] = []
    for spec, run in zip(specs, runs):
        estimate = run.solution.estimate if run.solution else None
        rows.append(SuiteRow(
            benchmark=spec.benchmark,
            opt_level=spec.opt_level,
            frequency_mode=spec.frequency_mode,
            energy_change=run.energy_change,
            time_change=run.time_change,
            power_change=run.power_change,
            ram_bytes=estimate.ram_bytes if estimate else 0,
            blocks_moved=len(run.solution.ram_blocks) if run.solution else 0,
        ))
    return rows


def summarize(rows: Sequence[SuiteRow]) -> Dict[str, float]:
    """Aggregate the averages / extremes the paper reports in Section 6."""
    if not rows:
        return {}
    energy = [row.energy_change for row in rows]
    time = [row.time_change for row in rows]
    power = [row.power_change for row in rows]
    return {
        "average_energy_change": sum(energy) / len(energy),
        "average_time_change": sum(time) / len(time),
        "average_power_change": sum(power) / len(power),
        "best_energy_change": min(energy),
        "best_power_change": min(power),
        "worst_time_change": max(time),
        "rows": len(rows),
    }
