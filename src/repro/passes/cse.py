"""Block-local common subexpression elimination.

Within a block, identical pure expressions (binary operations, address
formation) whose operands have not been redefined since are replaced by a
copy of the earlier result.  Loads are also unified until a store or call is
seen (which may alias anything in this simple memory model).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.ir.function import Function
from repro.ir.instructions import AddrOf, BinOp, Call, FrameAddr, Load, Mov, Store
from repro.ir.module import Module
from repro.ir.values import Const, VReg
from repro.passes.pass_manager import FunctionPass


def _operand_key(operand) -> Tuple[str, int]:
    if isinstance(operand, Const):
        return ("const", operand.value)
    return ("vreg", operand.index)


class CommonSubexpressionEliminationPass(FunctionPass):
    """Replaces recomputed pure expressions with copies inside a block."""

    name = "cse"

    def run(self, function: Function, module: Module) -> bool:
        changed = False
        for block in function.iter_blocks():
            available: Dict[tuple, VReg] = {}
            new_instructions = []
            for instr in block.instructions:
                key = self._expression_key(instr)
                if key is not None and key in available:
                    new_instructions.append(Mov(instr.result(), available[key]))
                    changed = True
                    continue

                result = instr.result()
                if result is not None:
                    # Invalidate expressions that used the redefined register,
                    # and expressions that produced it.
                    available = {
                        k: v for k, v in available.items()
                        if v != result and ("vreg", result.index) not in k[1:]
                    }
                if isinstance(instr, (Store, Call)):
                    # Conservatively kill remembered loads.
                    available = {k: v for k, v in available.items()
                                 if k[0] != "load"}
                if key is not None and instr.result() is not None:
                    available[key] = instr.result()
                new_instructions.append(instr)
            block.instructions = new_instructions
        return changed

    @staticmethod
    def _expression_key(instr):
        if isinstance(instr, BinOp):
            return ("binop", ("op", hash(instr.op)), _operand_key(instr.lhs),
                    _operand_key(instr.rhs), ("name", hash(instr.op)))
        if isinstance(instr, AddrOf):
            return ("addrof", ("sym", hash(instr.symbol)))
        if isinstance(instr, FrameAddr):
            return ("frameaddr", ("sym", hash(instr.object_name)))
        if isinstance(instr, Load):
            return ("load", _operand_key(instr.base), _operand_key(instr.offset),
                    ("width", instr.width))
        return None
