"""Pass manager: runs an ordered list of function passes over a module."""

from __future__ import annotations

from typing import Iterable, List

from repro.ir.function import Function
from repro.ir.module import Module


class FunctionPass:
    """Base class for passes operating on a single function.

    ``run`` returns True if the pass changed anything, which lets the pass
    manager iterate pass groups to a fixed point.
    """

    name = "function-pass"

    def run(self, function: Function, module: Module) -> bool:
        raise NotImplementedError


class PassManager:
    """Runs passes over every function of a module.

    ``iterate`` controls how many times the whole pipeline is repeated (later
    passes often expose opportunities for earlier ones); iteration stops early
    once a full sweep makes no changes.
    """

    def __init__(self, passes: Iterable[FunctionPass], iterate: int = 2):
        self.passes: List[FunctionPass] = list(passes)
        self.iterate = max(1, iterate)

    def run(self, module: Module) -> bool:
        changed_any = False
        for _ in range(self.iterate):
            changed_this_round = False
            for function in module.functions.values():
                for pass_ in self.passes:
                    if pass_.run(function, module):
                        changed_this_round = True
            changed_any = changed_any or changed_this_round
            if not changed_this_round:
                break
        return changed_any
