"""CFG simplification: unreachable-block removal, jump threading, merging."""

from __future__ import annotations

from repro.analysis.cfg import cfg_of_ir_function, reachable_blocks
from repro.ir.function import Function
from repro.ir.instructions import Branch, Jump
from repro.ir.module import Module
from repro.passes.pass_manager import FunctionPass


class SimplifyCFGPass(FunctionPass):
    """Cleans up the control-flow graph after other passes."""

    name = "simplify-cfg"

    def run(self, function: Function, module: Module) -> bool:
        changed = False
        changed |= self._remove_unreachable(function)
        changed |= self._thread_jumps(function)
        changed |= self._merge_blocks(function)
        if changed:
            self._remove_unreachable(function)
        return changed

    # ------------------------------------------------------------------ #
    @staticmethod
    def _remove_unreachable(function: Function) -> bool:
        cfg = cfg_of_ir_function(function)
        reachable = reachable_blocks(cfg)
        dead = [name for name in function.block_order if name not in reachable]
        for name in dead:
            function.remove_block(name)
        return bool(dead)

    # ------------------------------------------------------------------ #
    @staticmethod
    def _thread_jumps(function: Function) -> bool:
        """Redirect edges that point at empty forwarding blocks."""
        changed = False
        forwarding = {}
        for block in function.iter_blocks():
            if (not block.instructions and isinstance(block.terminator, Jump)
                    and block.terminator.target != block.name):
                forwarding[block.name] = block.terminator.target

        def resolve(name: str) -> str:
            seen = set()
            while name in forwarding and name not in seen:
                seen.add(name)
                name = forwarding[name]
            return name

        for block in function.iter_blocks():
            term = block.terminator
            if isinstance(term, Jump):
                target = resolve(term.target)
                if target != term.target:
                    term.target = target
                    changed = True
            elif isinstance(term, Branch):
                then_target = resolve(term.then_target)
                else_target = resolve(term.else_target)
                if then_target != term.then_target or else_target != term.else_target:
                    term.then_target = then_target
                    term.else_target = else_target
                    changed = True
        return changed

    # ------------------------------------------------------------------ #
    @staticmethod
    def _merge_blocks(function: Function) -> bool:
        """Merge ``A -> jump B`` when B's only predecessor is A."""
        changed = True
        any_change = False
        while changed:
            changed = False
            preds = function.predecessors()
            for block in list(function.iter_blocks()):
                term = block.terminator
                if not isinstance(term, Jump):
                    continue
                target_name = term.target
                if target_name == block.name or target_name == function.block_order[0]:
                    continue
                if len(preds.get(target_name, [])) != 1:
                    continue
                target = function.blocks[target_name]
                block.instructions.extend(target.instructions)
                block.terminator = target.terminator
                function.remove_block(target_name)
                changed = True
                any_change = True
                break
        return any_change
