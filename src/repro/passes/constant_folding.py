"""Constant folding of IR binary operations and constant branches."""

from __future__ import annotations

from typing import Optional

from repro.ir.function import Function
from repro.ir.instructions import BinOp, Branch, Jump, Mov
from repro.ir.module import Module
from repro.ir.values import Const
from repro.passes.pass_manager import FunctionPass

_MASK = 0xFFFFFFFF


def _signed(value: int) -> int:
    value &= _MASK
    return value - (1 << 32) if value & 0x80000000 else value


def fold_binop(op: str, lhs: int, rhs: int) -> Optional[int]:
    """Fold one binary operation on 32-bit values; None if undefined (div 0)."""
    lhs &= _MASK
    rhs &= _MASK
    slhs, srhs = _signed(lhs), _signed(rhs)
    if op == "add":
        return (lhs + rhs) & _MASK
    if op == "sub":
        return (lhs - rhs) & _MASK
    if op == "mul":
        return (lhs * rhs) & _MASK
    if op == "and":
        return lhs & rhs
    if op == "or":
        return lhs | rhs
    if op == "xor":
        return lhs ^ rhs
    if op == "shl":
        return (lhs << (rhs & 31)) & _MASK
    if op == "lshr":
        return (lhs >> (rhs & 31)) & _MASK
    if op == "ashr":
        return (slhs >> (rhs & 31)) & _MASK
    if op == "sdiv":
        if srhs == 0:
            return None
        return int(slhs / srhs) & _MASK if srhs else None
    if op == "udiv":
        if rhs == 0:
            return None
        return (lhs // rhs) & _MASK
    if op == "srem":
        if srhs == 0:
            return None
        return (slhs - int(slhs / srhs) * srhs) & _MASK
    if op == "urem":
        if rhs == 0:
            return None
        return (lhs % rhs) & _MASK
    return None


def evaluate_condition(cond: str, lhs: int, rhs: int) -> bool:
    """Evaluate an IR compare condition on constant operands."""
    lhs &= _MASK
    rhs &= _MASK
    slhs, srhs = _signed(lhs), _signed(rhs)
    table = {
        "eq": lhs == rhs,
        "ne": lhs != rhs,
        "lt": slhs < srhs,
        "le": slhs <= srhs,
        "gt": slhs > srhs,
        "ge": slhs >= srhs,
        "lo": lhs < rhs,
        "ls": lhs <= rhs,
        "hi": lhs > rhs,
        "hs": lhs >= rhs,
    }
    return table[cond]


class ConstantFoldingPass(FunctionPass):
    """Folds BinOps with constant operands and branches with constant inputs."""

    name = "constant-folding"

    def run(self, function: Function, module: Module) -> bool:
        changed = False
        for block in function.iter_blocks():
            new_instructions = []
            for instr in block.instructions:
                if (isinstance(instr, BinOp) and isinstance(instr.lhs, Const)
                        and isinstance(instr.rhs, Const)):
                    folded = fold_binop(instr.op, instr.lhs.value, instr.rhs.value)
                    if folded is not None:
                        new_instructions.append(Mov(instr.dst, Const(folded)))
                        changed = True
                        continue
                # Algebraic identities.
                if isinstance(instr, BinOp) and isinstance(instr.rhs, Const):
                    value = instr.rhs.value & _MASK
                    if value == 0 and instr.op in ("add", "sub", "or", "xor",
                                                   "shl", "lshr", "ashr"):
                        new_instructions.append(Mov(instr.dst, instr.lhs))
                        changed = True
                        continue
                    if value == 1 and instr.op in ("mul", "sdiv", "udiv"):
                        new_instructions.append(Mov(instr.dst, instr.lhs))
                        changed = True
                        continue
                    if value == 0 and instr.op in ("mul", "and"):
                        new_instructions.append(Mov(instr.dst, Const(0)))
                        changed = True
                        continue
                new_instructions.append(instr)
            block.instructions = new_instructions

            term = block.terminator
            if (isinstance(term, Branch) and isinstance(term.lhs, Const)
                    and isinstance(term.rhs, Const)):
                taken = evaluate_condition(term.cond, term.lhs.value, term.rhs.value)
                target = term.then_target if taken else term.else_target
                block.terminator = Jump(target)
                changed = True
        return changed
