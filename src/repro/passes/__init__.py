"""IR-level optimization passes and the pass manager."""

from repro.passes.pass_manager import PassManager, FunctionPass
from repro.passes.constant_folding import ConstantFoldingPass
from repro.passes.copy_propagation import CopyPropagationPass
from repro.passes.dce import DeadCodeEliminationPass
from repro.passes.cse import CommonSubexpressionEliminationPass
from repro.passes.simplify_cfg import SimplifyCFGPass

__all__ = [
    "PassManager",
    "FunctionPass",
    "ConstantFoldingPass",
    "CopyPropagationPass",
    "DeadCodeEliminationPass",
    "CommonSubexpressionEliminationPass",
    "SimplifyCFGPass",
]
