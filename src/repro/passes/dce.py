"""Dead code elimination.

Removes instructions whose result is never used anywhere in the function and
which have no side effects.  Calls, stores and loads are always kept: loads
are treated as observable because embedded code frequently reads
memory-mapped peripherals, and the energy model cares about the memory
traffic they generate.
"""

from __future__ import annotations

from typing import Set

from repro.ir.function import Function
from repro.ir.instructions import Call, Instruction, Load, Store
from repro.ir.module import Module
from repro.ir.values import VReg
from repro.passes.pass_manager import FunctionPass


def _used_registers(function: Function) -> Set[VReg]:
    used: Set[VReg] = set()
    for block in function.iter_blocks():
        for instr in block.all_instructions():
            for operand in instr.operands():
                if isinstance(operand, VReg):
                    used.add(operand)
    return used


class DeadCodeEliminationPass(FunctionPass):
    """Iteratively removes side-effect-free instructions with unused results."""

    name = "dce"

    def run(self, function: Function, module: Module) -> bool:
        changed = False
        while True:
            used = _used_registers(function)
            removed_this_round = False
            for block in function.iter_blocks():
                kept = []
                for instr in block.instructions:
                    if self._is_removable(instr, used):
                        removed_this_round = True
                        changed = True
                        continue
                    kept.append(instr)
                block.instructions = kept
            if not removed_this_round:
                break
        return changed

    @staticmethod
    def _is_removable(instr: Instruction, used: Set[VReg]) -> bool:
        if isinstance(instr, (Call, Store, Load)):
            return False
        result = instr.result()
        if result is None:
            return False
        return result not in used
