"""Block-local copy and constant propagation.

The IR is not in SSA form, so propagation is restricted to within a basic
block, where redefinitions can be tracked precisely: a mapping from virtual
register to its known copy source (another register or a constant) is
maintained and invalidated whenever either side is redefined.
"""

from __future__ import annotations

from typing import Dict

from repro.ir.function import Function
from repro.ir.instructions import Call, Instruction, Mov
from repro.ir.module import Module
from repro.ir.values import Const, Operand, VReg
from repro.passes.pass_manager import FunctionPass


class CopyPropagationPass(FunctionPass):
    """Propagates ``mov`` sources to later uses inside each block."""

    name = "copy-propagation"

    def run(self, function: Function, module: Module) -> bool:
        changed = False
        for block in function.iter_blocks():
            copies: Dict[VReg, Operand] = {}
            for instr in block.all_instructions():
                # First rewrite the uses with what we currently know.
                mapping = {src: dst for src, dst in copies.items()}
                before = [repr(op) for op in instr.operands()]
                instr.replace_operands(mapping)
                after = [repr(op) for op in instr.operands()]
                if before != after:
                    changed = True

                # Then update the copy map with this instruction's effect.
                result = instr.result()
                if result is not None:
                    # Any copy that mentions the redefined register is stale.
                    copies = {dst: src for dst, src in copies.items()
                              if dst != result and src != result}
                if isinstance(instr, Mov):
                    if isinstance(instr.src, (Const, VReg)) and instr.src != instr.dst:
                        copies[instr.dst] = instr.src
        return changed
