"""Reproduction of Pallister, Eder & Hollis (CGO 2015):
"Optimizing the flash-RAM energy trade-off in deeply embedded systems".

High-level API::

    from repro import compile_source, CompileOptions, Simulator, optimize_program

    program = compile_source(source, CompileOptions.for_level("O2"))
    baseline = Simulator(program).run()
    solution = optimize_program(program, x_limit=1.5)
    optimized = Simulator(program).run()

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper-versus-measured comparison of every figure.
"""

from repro.codegen import CompileOptions, OptLevel, compile_ir_module, compile_source
from repro.placement import (
    FlashRAMOptimizer,
    PlacementConfig,
    PlacementSolution,
    optimize_program,
)
from repro.power import PeriodicSensingModel, SleepParameters
from repro.sim import EnergyModel, PowerTable, SimulationResult, Simulator

__version__ = "0.1.0"

__all__ = [
    "CompileOptions",
    "OptLevel",
    "compile_source",
    "compile_ir_module",
    "FlashRAMOptimizer",
    "PlacementConfig",
    "PlacementSolution",
    "optimize_program",
    "PeriodicSensingModel",
    "SleepParameters",
    "EnergyModel",
    "PowerTable",
    "Simulator",
    "SimulationResult",
    "__version__",
]
