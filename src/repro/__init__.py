"""Reproduction of Pallister, Eder & Hollis (CGO 2015):
"Optimizing the flash-RAM energy trade-off in deeply embedded systems".

High-level experiment API (the engine compiles each program once, memoises
baselines and fans grids out over processes)::

    from repro import ExperimentEngine, ExperimentSpec

    engine = ExperimentEngine()
    run = engine.run_optimized("int_matmult", "O2", x_limit=1.5)
    print(run.energy_change, run.time_change)

    grid = [ExperimentSpec(benchmark=n, opt_level=l)
            for n in ("fdct", "crc32") for l in ("O2", "Os")]
    runs = engine.run_grid(grid)          # parallel, deterministic order

Design-space exploration (sweeps the placement knobs and extracts the
energy/time/RAM Pareto frontier; see ``repro.explore``)::

    from repro import SweepSpec, run_sweep
    result = run_sweep(SweepSpec(benchmarks=("crc32",), x_limits=(1.1, 1.5)))

Low-level compiler/simulator API::

    from repro import compile_source, CompileOptions, Simulator, optimize_program

    program = compile_source(source, CompileOptions.for_level("O2"))
    baseline = Simulator(program).run()
    solution = optimize_program(program, x_limit=1.5)
    optimized = Simulator(program).run()

See ``DESIGN.md`` for the system inventory and engine architecture.
"""

from repro.codegen import CompileOptions, OptLevel, compile_ir_module, compile_source
from repro.engine import (
    BenchmarkRun,
    ExperimentEngine,
    ExperimentSpec,
    ProgramCache,
    ResultStore,
    default_engine,
)
from repro.explore import (
    SweepSpec,
    pareto_records,
    profile_guided_placement,
    run_sweep,
)
from repro.placement import (
    FlashRAMOptimizer,
    PlacementConfig,
    PlacementSolution,
    optimize_program,
)
from repro.power import PeriodicSensingModel, SleepParameters
from repro.sim import EnergyModel, PowerTable, SimulationResult, Simulator

__version__ = "0.2.0"

__all__ = [
    "CompileOptions",
    "OptLevel",
    "compile_source",
    "compile_ir_module",
    "BenchmarkRun",
    "ExperimentEngine",
    "ExperimentSpec",
    "ProgramCache",
    "ResultStore",
    "default_engine",
    "SweepSpec",
    "run_sweep",
    "pareto_records",
    "profile_guided_placement",
    "FlashRAMOptimizer",
    "PlacementConfig",
    "PlacementSolution",
    "optimize_program",
    "PeriodicSensingModel",
    "SleepParameters",
    "EnergyModel",
    "PowerTable",
    "Simulator",
    "SimulationResult",
    "__version__",
]
