"""Console entry point: run a named figure of the paper through the engine.

Installed as ``repro-eval`` (see ``setup.py``).  Examples::

    repro-eval figure5 --benchmarks int_matmult crc32 --levels O2 --workers 4
    repro-eval figure9 --output results/
    repro-eval case-study
    repro-eval figure1
    repro-eval explore --benchmarks crc32 fdct --x-limits 1.1 1.5 --workers 2

Every experiment goes through :class:`repro.engine.ExperimentEngine`, so
programs compile once, grids fan out over processes, and ``--output DIR``
persists the records via :class:`repro.engine.ResultStore` for cross-run
comparison.

``explore`` runs a :mod:`repro.explore` design-space sweep (X_limit × spare
RAM × flash/RAM energy ratio × solver) into a *keyed* store: every cell is
content-addressed by its ``cell_key``, so sweeps shard across machines and
resume after interruption.  ``merge`` combines shard stores, and ``report``
rebuilds the Figure 5/6 artifacts (Pareto fronts, energy/time-vs-X_limit
tables, frontier sizes) from a merged store without re-simulating::

    repro-eval explore --benchmarks crc32 fdct 2dfir --x-limits 1.1 1.5 2.0 \
        --shard 0/3 --output shard-0           # ... one job per shard
    repro-eval merge --stores shard-0 shard-1 shard-2 --output merged
    repro-eval report --store merged --output figures

An interrupted sweep restarts with ``--resume`` (only missing cells are
re-simulated; ``--recheck K`` re-verifies K stored cells bitwise first).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.beebs import BENCHMARK_NAMES
from repro.engine import ExperimentEngine, ResultStore, default_engine

FIGURES = ["figure1", "figure2", "figure5", "figure6", "figure9", "case-study",
           "explore", "merge", "report"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-eval",
        description="Reproduce a figure of 'Optimizing the flash-RAM energy "
                    "trade-off in deeply embedded systems' (CGO 2015).")
    parser.add_argument("figure", choices=FIGURES,
                        help="which figure / reported number to reproduce")
    parser.add_argument("--benchmarks", nargs="*", default=None,
                        metavar="NAME",
                        help=f"benchmark subset (default: figure-specific; "
                             f"known: {', '.join(BENCHMARK_NAMES)})")
    parser.add_argument("--levels", nargs="*", default=None, metavar="LEVEL",
                        help="optimization levels, e.g. O2 Os")
    parser.add_argument("--frequency-modes", nargs="*", default=("static",),
                        choices=("static", "profile"),
                        help="block-frequency estimation modes (figure5)")
    parser.add_argument("--x-limit", type=float, default=1.5,
                        help="allowed slowdown factor X_limit (default 1.5)")
    parser.add_argument("--x-limits", nargs="*", type=float, default=None,
                        metavar="X", help="X_limit axis of an explore sweep")
    parser.add_argument("--r-spares", nargs="*", type=int, default=None,
                        metavar="BYTES",
                        help="R_spare axis of an explore sweep "
                             "(omit to derive statically)")
    parser.add_argument("--flash-ram-ratios", nargs="*", type=float,
                        default=None, metavar="RATIO",
                        help="flash/RAM energy-ratio axis of an explore sweep "
                             "(omit for the calibrated Figure 1 tables)")
    parser.add_argument("--solvers", nargs="*", default=None,
                        choices=("ilp", "greedy", "exhaustive"),
                        help="solver axis of an explore sweep (default: ilp)")
    parser.add_argument("--workers", type=int, default=None,
                        help="process fan-out for grids (default: cpu count)")
    parser.add_argument("--output", default=None, metavar="DIR",
                        help="directory to persist JSON records into")
    parser.add_argument("--shard", default=None, metavar="I/N",
                        help="explore: run only shard I of N (cells are "
                             "partitioned by key hash; every cell lands in "
                             "exactly one shard)")
    parser.add_argument("--resume", action="store_true",
                        help="explore: skip cells already in the --output "
                             "store and append only the missing ones")
    parser.add_argument("--recheck", type=int, default=0, metavar="K",
                        help="explore --resume: recompute up to K stored "
                             "cells and fail unless they reproduce bitwise")
    parser.add_argument("--name", default="sweep", metavar="NAME",
                        help="keyed store file name (default: sweep)")
    parser.add_argument("--stores", nargs="*", default=None, metavar="PATH",
                        help="merge: source stores (files or directories)")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="report: directory of the merged sweep store")
    parser.add_argument("--require-disjoint", action="store_true",
                        help="merge: fail on any duplicate cell across "
                             "sources instead of checking bitwise agreement")
    return parser


def _emit(args, name: str, records: List[dict], meta: Optional[dict] = None) -> None:
    if args.output:
        path = ResultStore(args.output).save(name, records, meta=meta)
        print(f"wrote {len(records)} records to {path}")
    else:
        json.dump({"meta": meta or {}, "records": records}, sys.stdout, indent=2)
        print()


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    engine = default_engine() if args.workers is None else ExperimentEngine(
        max_workers=args.workers)

    if args.figure == "figure1":
        from repro.evaluation.figure1 import instruction_power_rows
        _emit(args, "figure1", instruction_power_rows())

    elif args.figure == "figure2":
        from repro.evaluation.figure2 import motivating_example_report
        _emit(args, "figure2", [motivating_example_report(x_limit=args.x_limit)])

    elif args.figure == "figure5":
        from repro.evaluation.figure5 import evaluate_suite, summarize
        rows = evaluate_suite(benchmarks=args.benchmarks, levels=args.levels,
                              frequency_modes=tuple(args.frequency_modes),
                              x_limit=args.x_limit, engine=engine,
                              max_workers=args.workers)
        _emit(args, "figure5", [row.as_dict() for row in rows],
              meta=summarize(rows))

    elif args.figure == "figure6":
        from repro.evaluation.figure6 import solver_trajectories
        benchmark = (args.benchmarks or ["int_matmult"])[0]
        level = (args.levels or ["O2"])[0]
        trajectories = solver_trajectories(benchmark, level)
        _emit(args, "figure6",
              [dict(row, sweep=sweep) for sweep, rows in trajectories.items()
               for row in rows],
              meta={"benchmark": benchmark, "opt_level": level})

    elif args.figure == "figure9":
        from repro.evaluation.figure9 import period_sweep
        series = period_sweep(benchmarks=args.benchmarks,
                              opt_level=(args.levels or ["O2"])[0],
                              x_limit=args.x_limit, engine=engine)
        _emit(args, "figure9", [row for rows in series.values() for row in rows])

    elif args.figure == "case-study":
        from repro.evaluation.case_study import case_study_report
        report = case_study_report(x_limit=args.x_limit, engine=engine)
        _emit(args, "case_study", [report])

    elif args.figure == "explore":
        from repro.evaluation.exploration import DEFAULT_RATIOS, DEFAULT_X_LIMITS
        from repro.explore import SweepSpec, execute_sweep, parse_shard
        ratios = (DEFAULT_RATIOS if args.flash_ram_ratios is None
                  else tuple(args.flash_ram_ratios) or (None,))
        sweep = SweepSpec(
            benchmarks=tuple(args.benchmarks or BENCHMARK_NAMES),
            opt_levels=tuple(args.levels or ("O2",)),
            x_limits=tuple(args.x_limits or DEFAULT_X_LIMITS),
            r_spares=tuple(args.r_spares) if args.r_spares else (None,),
            flash_ram_ratios=ratios,
            solvers=tuple(args.solvers or ("ilp",)),
            frequency_modes=tuple(args.frequency_modes),
        )
        shard = None
        if args.shard is not None:
            try:
                shard = parse_shard(args.shard)
            except ValueError as error:
                parser.error(str(error))
        if args.resume and not args.output:
            parser.error("--resume requires --output (the store to resume)")
        store = ResultStore(args.output) if args.output else None
        summary = execute_sweep(sweep, store=store, name=args.name,
                                shard=shard, resume=args.resume,
                                recheck=args.recheck, engine=engine,
                                max_workers=args.workers)
        if store is not None:
            print(f"wrote {summary['meta']['cells']} cells to "
                  f"{summary['path']} ({summary['computed']} computed, "
                  f"{summary['skipped']} resumed, "
                  f"{summary['rechecked']} rechecked)")
        else:
            json.dump({"meta": summary["meta"],
                       "records": summary["records"]}, sys.stdout, indent=2)
            print()

    elif args.figure == "merge":
        if not args.stores or not args.output:
            parser.error("merge requires --stores SRC... and --output DIR")
        stats = ResultStore(args.output).merge(
            args.name, args.stores, require_disjoint=args.require_disjoint)
        print(f"merged {stats['records']} cells from {stats['sources']} "
              f"stores into {stats['path']} "
              f"({stats['duplicates']} duplicates, all bitwise-identical)")

    elif args.figure == "report":
        if not args.store:
            parser.error("report requires --store DIR (a merged sweep store)")
        from repro.explore import report_from_store, write_report
        report = report_from_store(ResultStore(args.store), name=args.name)
        if args.output:
            for path in write_report(report, args.output).values():
                print(f"wrote {path}")
        else:
            json.dump(report, sys.stdout, indent=2)
            print()

    return 0


if __name__ == "__main__":
    raise SystemExit(main())
