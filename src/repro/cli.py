"""Console entry point: run a named figure of the paper through the engine.

Installed as ``repro-eval`` (see ``setup.py``).  Examples::

    repro-eval figure5 --benchmarks int_matmult crc32 --levels O2 --workers 4
    repro-eval figure9 --output results/
    repro-eval case-study
    repro-eval figure1
    repro-eval explore --benchmarks crc32 fdct --x-limits 1.1 1.5 --workers 2

Every experiment goes through :class:`repro.engine.ExperimentEngine`, so
programs compile once, grids fan out over processes, and ``--output DIR``
persists the records via :class:`repro.engine.ResultStore` for cross-run
comparison.

``explore`` runs a :mod:`repro.explore` design-space sweep (X_limit × spare
RAM × flash/RAM energy ratio × solver) into a *keyed* store: every cell is
content-addressed by its ``cell_key``, so sweeps shard across machines and
resume after interruption.  ``merge`` combines shard stores, and ``report``
rebuilds the Figure 5/6 artifacts (Pareto fronts, energy/time-vs-X_limit
tables, frontier sizes) from a merged store without re-simulating::

    repro-eval explore --benchmarks crc32 fdct 2dfir --x-limits 1.1 1.5 2.0 \
        --shard 0/3 --output shard-0           # ... one job per shard
    repro-eval merge --stores shard-0 shard-1 shard-2 --output merged
    repro-eval report --store merged --output figures

An interrupted sweep restarts with ``--resume`` (only missing cells are
re-simulated; ``--recheck K`` re-verifies K stored cells bitwise first).

``coordinate`` / ``work`` run a sweep as a *dynamically load-balanced
fleet* (`repro.distrib`): the coordinator leases batches of cell keys to
however many workers connect, re-leases batches from dead workers, and
streams checkpoints into the store — the final store is byte-identical to
a monolithic ``explore`` run of the same axes::

    repro-eval coordinate --benchmarks crc32 fdct 2dfir --x-limits 1.1 1.5 \
        --port 7399 --output swept --progress &
    repro-eval work --port 7399 &          # as many as you have cores/machines
    repro-eval work --port 7399 &

``explore --distributed N`` is the one-machine shorthand (coordinator plus
N spawned local workers); ``--progress`` prints live cells/s + ETA to
stderr on any path.

``serve`` / ``submit`` / ``status`` / ``cancel`` run the *multi-sweep
service* (`repro.distrib.service`): one long-lived process hosts many
named sweeps concurrently — per-sweep queues, stores and checkpoints,
integer ``--priority`` weights under weighted-fair lease scheduling,
adaptive lease batches that shrink as each queue drains, and graceful
cancellation (in-flight leases drain, the partial store stays mergeable).
The same sweep-agnostic ``work`` fleet serves every tenant::

    repro-eval serve --port 7399 --output stores --progress &
    repro-eval work --port 7399 &          # one fleet, all sweeps
    repro-eval submit --benchmarks crc32 fdct --x-limits 1.1 1.5 \
        --name grid-a --priority 3 --port 7399
    repro-eval submit --benchmarks 2dfir --x-limits 2.0 \
        --name grid-b --port 7399 --wait
    repro-eval status --port 7399          # per-sweep counts, cells/s, ETA
    repro-eval cancel grid-a --port 7399

``analyze`` is the static-analysis gate: it lints every requested benchmark
× optimization level with :mod:`repro.analysis.verifier` (pristine and
again after a placement pass rewrites the code), simulates the optimized
program and audits every compiled superblock against its decode-once
records (:mod:`repro.analysis.superblock_audit`), printing each finding and
exiting non-zero if there are any::

    repro-eval analyze                       # lint + audit, all benchmarks
    repro-eval analyze --lint --levels O2    # lint only, one level

``--telemetry DIR`` (any subcommand) streams span/counter events from every
process — coordinator, workers, pool children — into ``DIR`` as JSON lines
(:mod:`repro.telemetry`); results are byte-identical with or without it.
``stats`` reduces such a trace directory into a per-phase wall-clock
breakdown, and ``metrics`` scrapes a live coordinator's Prometheus text
without joining the fleet::

    repro-eval explore --benchmarks crc32 --telemetry trace/ --output out
    repro-eval stats trace/                  # where did the time go?
    repro-eval metrics --port 7399           # live queue depth / ETA / p95
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.beebs import BENCHMARK_NAMES
from repro.engine import ExperimentEngine, ResultStore, default_engine
from repro.placement.parameters import FREQUENCY_MODES

FIGURES = ["figure1", "figure2", "figure5", "figure6", "figure9", "case-study",
           "explore", "merge", "report", "coordinate", "work", "analyze",
           "metrics", "stats", "serve", "submit", "status", "cancel"]

#: Every optimization level the compiler driver accepts, in pipeline order.
ALL_OPT_LEVELS = ("O0", "O1", "O2", "O3", "Os")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-eval",
        description="Reproduce a figure of 'Optimizing the flash-RAM energy "
                    "trade-off in deeply embedded systems' (CGO 2015).")
    parser.add_argument("figure", choices=FIGURES,
                        help="which figure / reported number to reproduce")
    parser.add_argument("target", nargs="?", default=None, metavar="PATH",
                        help="stats: telemetry trace directory to summarize "
                             "(defaults to --telemetry DIR); status/cancel: "
                             "the sweep name (status defaults to all sweeps)")
    parser.add_argument("--benchmarks", nargs="*", default=None,
                        metavar="NAME",
                        help=f"benchmark subset (default: figure-specific; "
                             f"known: {', '.join(BENCHMARK_NAMES)})")
    parser.add_argument("--levels", nargs="*", default=None, metavar="LEVEL",
                        help="optimization levels, e.g. O2 Os")
    parser.add_argument("--frequency-modes", nargs="*", default=("static",),
                        choices=FREQUENCY_MODES,
                        help="block-frequency estimation modes "
                             "(figure5/explore)")
    parser.add_argument("--lint", action="store_true",
                        help="analyze: run the machine-code lint over each "
                             "benchmark, pristine and after placement "
                             "(default: lint and audit)")
    parser.add_argument("--audit", action="store_true",
                        help="analyze: simulate each optimized benchmark and "
                             "audit every compiled superblock against its "
                             "decode records (default: lint and audit)")
    parser.add_argument("--x-limit", type=float, default=1.5,
                        help="allowed slowdown factor X_limit (default 1.5)")
    parser.add_argument("--x-limits", nargs="*", type=float, default=None,
                        metavar="X", help="X_limit axis of an explore sweep")
    parser.add_argument("--r-spares", nargs="*", type=int, default=None,
                        metavar="BYTES",
                        help="R_spare axis of an explore sweep "
                             "(omit to derive statically)")
    parser.add_argument("--flash-ram-ratios", nargs="*", type=float,
                        default=None, metavar="RATIO",
                        help="flash/RAM energy-ratio axis of an explore sweep "
                             "(omit for the calibrated Figure 1 tables)")
    parser.add_argument("--solvers", nargs="*", default=None,
                        choices=("ilp", "greedy", "exhaustive"),
                        help="solver axis of an explore sweep (default: ilp)")
    parser.add_argument("--timing-models", nargs="*", default=None,
                        metavar="MODEL",
                        help="timing-model axis of an explore sweep: flat, "
                             "pipelined, pipelined+icache or "
                             "pipelined+icache:LxB (default: flat)")
    parser.add_argument("--workers", type=int, default=None,
                        help="process fan-out for grids (default: cpu count)")
    parser.add_argument("--output", default=None, metavar="DIR",
                        help="directory to persist JSON records into "
                             "(submit: on the service host; defaults to "
                             "the service's own store root)")
    parser.add_argument("--shard", default=None, metavar="I/N",
                        help="explore: run only shard I of N (cells are "
                             "partitioned by key hash; every cell lands in "
                             "exactly one shard)")
    parser.add_argument("--resume", action="store_true",
                        help="explore: skip cells already in the --output "
                             "store and append only the missing ones")
    parser.add_argument("--recheck", type=int, default=0, metavar="K",
                        help="explore --resume: recompute up to K stored "
                             "cells and fail unless they reproduce bitwise")
    parser.add_argument("--name", default="sweep", metavar="NAME",
                        help="keyed store file name (default: sweep)")
    parser.add_argument("--stores", nargs="*", default=None, metavar="PATH",
                        help="merge: source stores (files or directories)")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="report: directory of the merged sweep store")
    parser.add_argument("--require-disjoint", action="store_true",
                        help="merge: fail on any duplicate cell across "
                             "sources instead of checking bitwise agreement")
    parser.add_argument("--progress", action="store_true",
                        help="print a live cells/s + ETA line to stderr "
                             "(stdout stays machine-readable)")
    parser.add_argument("--checkpoint-every", type=int, default=None,
                        metavar="K",
                        help="journal completed cells to the store every K "
                             "cells (O(batch) per checkpoint), so --resume "
                             "restarts from the last checkpoint")
    parser.add_argument("--distributed", type=int, default=None, metavar="N",
                        help="explore: run through a local coordinator with "
                             "N spawned worker processes (dynamic batch "
                             "leasing instead of the in-process pool)")
    parser.add_argument("--host", default="127.0.0.1", metavar="HOST",
                        help="coordinate: address to bind / work: "
                             "coordinator address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=None, metavar="PORT",
                        help="coordinate: port to bind (0 = ephemeral, "
                             "printed to stderr) / work: coordinator port")
    parser.add_argument("--batch-size", type=int, default=None, metavar="B",
                        help="coordinate: cells per lease (default 4)")
    parser.add_argument("--lease-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="coordinate: re-lease a batch whose worker has "
                             "not heartbeat for this long (default 60)")
    parser.add_argument("--throttle", type=float, default=0.0,
                        metavar="SECONDS",
                        help="work: artificial delay per executed cell "
                             "(manufactures stragglers for tests/benchmarks)")
    parser.add_argument("--priority", type=int, default=1, metavar="P",
                        help="submit: integer lease-scheduling weight; a "
                             "priority-3 sweep holds ~3x the outstanding "
                             "cells of a priority-1 sweep (default 1)")
    parser.add_argument("--wait", action="store_true",
                        help="submit: block until the sweep reaches a "
                             "terminal state and report it (non-zero exit "
                             "on failure)")
    parser.add_argument("--drain", action="store_true",
                        help="serve: exit once every submitted sweep is "
                             "terminal (workers are released with 'done'); "
                             "default is to keep serving for later submits")
    parser.add_argument("--fixed-batches", action="store_true",
                        help="pin every lease to the full --batch-size cut "
                             "instead of the adaptive shrinking tail "
                             "(explore --distributed, coordinate, submit; "
                             "mainly for benchmarking the adaptive policy)")
    parser.add_argument("--telemetry", default=None, metavar="DIR",
                        help="write span/counter telemetry events (JSON "
                             "lines, one file per process) into DIR; "
                             "propagated to pool and distributed workers; "
                             "results are byte-identical with or without it")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="persistent on-disk program cache shared "
                             "between processes and runs: compiled programs "
                             "are pickled under DIR so a fleet compiles "
                             "each (benchmark, level) once per machine")
    return parser


def _sweep_from_args(args):
    """The SweepSpec an ``explore``/``coordinate`` invocation describes."""
    from repro.evaluation.exploration import DEFAULT_RATIOS, DEFAULT_X_LIMITS
    from repro.explore import SweepSpec
    ratios = (DEFAULT_RATIOS if args.flash_ram_ratios is None
              else tuple(args.flash_ram_ratios) or (None,))
    return SweepSpec(
        benchmarks=tuple(args.benchmarks or BENCHMARK_NAMES),
        opt_levels=tuple(args.levels or ("O2",)),
        x_limits=tuple(args.x_limits or DEFAULT_X_LIMITS),
        r_spares=tuple(args.r_spares) if args.r_spares else (None,),
        flash_ram_ratios=ratios,
        solvers=tuple(args.solvers or ("ilp",)),
        frequency_modes=tuple(args.frequency_modes),
        timing_models=tuple(args.timing_models or ("flat",)),
    )


def _parse_shard_arg(args, parser):
    from repro.explore import parse_shard
    if args.shard is None:
        return None
    try:
        return parse_shard(args.shard)
    except ValueError as error:
        parser.error(str(error))


def _print_sweep_summary(summary: dict) -> None:
    line = (f"wrote {summary['meta']['cells']} cells to {summary['path']} "
            f"({summary['computed']} computed, {summary['skipped']} resumed, "
            f"{summary['rechecked']} rechecked)")
    distrib = summary.get("distrib")
    if distrib:
        line += (f" [distributed: {distrib['workers']} workers, "
                 f"{distrib['requeued_batches']} batches requeued, "
                 f"{distrib['duplicate_records']} duplicates]")
    cache = summary.get("cache")
    if cache:
        line += (f" [cache: {cache['compiles']} compiles, "
                 f"{cache['hits']} hits, {cache['disk_hits']} disk hits, "
                 f"{cache['disk_misses']} disk misses]")
    print(line)


def _format_sweep_line(name: str, snap: dict) -> str:
    """One human-readable status line per hosted sweep (serve/status)."""
    from repro.distrib.progress import format_eta
    line = (f"{name}: {snap['status']} {snap['done']}/{snap['total']} cells "
            f"(priority {snap['priority']}, {snap['pending']} pending, "
            f"{snap['leased']} leased)")
    throughput = snap.get("throughput")
    if throughput:
        line += f" | {throughput:.2f} cells/s"
        eta = snap.get("eta_seconds")
        if eta is not None:
            line += f", ETA {format_eta(eta)}"
    if snap.get("store_path"):
        line += f" -> {snap['store_path']}"
    if snap.get("failure"):
        line += f" | FAILED: {snap['failure']}"
    return line


def _emit(args, name: str, records: List[dict], meta: Optional[dict] = None) -> None:
    if args.output:
        path = ResultStore(args.output).save(name, records, meta=meta)
        print(f"wrote {len(records)} records to {path}")
    else:
        json.dump({"meta": meta or {}, "records": records}, sys.stdout, indent=2)
        print()


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.telemetry:
        from repro.telemetry import configure_telemetry
        role = {"coordinate": "coordinator", "work": "worker",
                "serve": "service"}.get(args.figure, "main")
        configure_telemetry(args.telemetry, role=role)
    if args.workers is None and args.cache_dir is None:
        engine = default_engine()
    else:
        engine = ExperimentEngine(max_workers=args.workers,
                                  cache_dir=args.cache_dir)

    if args.figure == "figure1":
        from repro.evaluation.figure1 import instruction_power_rows
        _emit(args, "figure1", instruction_power_rows())

    elif args.figure == "figure2":
        from repro.evaluation.figure2 import motivating_example_report
        _emit(args, "figure2", [motivating_example_report(x_limit=args.x_limit)])

    elif args.figure == "figure5":
        from repro.evaluation.figure5 import evaluate_suite, summarize
        rows = evaluate_suite(benchmarks=args.benchmarks, levels=args.levels,
                              frequency_modes=tuple(args.frequency_modes),
                              x_limit=args.x_limit, engine=engine,
                              max_workers=args.workers)
        _emit(args, "figure5", [row.as_dict() for row in rows],
              meta=summarize(rows))

    elif args.figure == "figure6":
        from repro.evaluation.figure6 import solver_trajectories
        benchmark = (args.benchmarks or ["int_matmult"])[0]
        level = (args.levels or ["O2"])[0]
        trajectories = solver_trajectories(benchmark, level)
        _emit(args, "figure6",
              [dict(row, sweep=sweep) for sweep, rows in trajectories.items()
               for row in rows],
              meta={"benchmark": benchmark, "opt_level": level})

    elif args.figure == "figure9":
        from repro.evaluation.figure9 import period_sweep
        series = period_sweep(benchmarks=args.benchmarks,
                              opt_level=(args.levels or ["O2"])[0],
                              x_limit=args.x_limit, engine=engine)
        _emit(args, "figure9", [row for rows in series.values() for row in rows])

    elif args.figure == "case-study":
        from repro.evaluation.case_study import case_study_report
        report = case_study_report(x_limit=args.x_limit, engine=engine)
        _emit(args, "case_study", [report])

    elif args.figure == "explore":
        from repro.explore import execute_sweep
        sweep = _sweep_from_args(args)
        shard = _parse_shard_arg(args, parser)
        if args.resume and not args.output:
            parser.error("--resume requires --output (the store to resume)")
        if args.distributed is not None and args.recheck:
            parser.error("--recheck is not supported with --distributed; "
                         "run it in-process first")
        if args.distributed is not None and args.workers is not None:
            parser.error("--workers configures the in-process pool; with "
                         "--distributed N the fleet size is N (use "
                         "'work --workers' for per-worker pools)")
        if args.distributed is None and (args.batch_size is not None
                                         or args.lease_timeout is not None
                                         or args.fixed_batches):
            parser.error("--batch-size/--lease-timeout/--fixed-batches tune "
                         "the lease protocol; they require --distributed "
                         "(or the coordinate subcommand)")
        store = ResultStore(args.output) if args.output else None
        if args.distributed is not None:
            summary = execute_sweep(
                sweep, store=store, name=args.name, shard=shard,
                resume=args.resume, workers=args.distributed,
                progress=args.progress,
                checkpoint_every=args.checkpoint_every,
                batch_size=args.batch_size,
                lease_timeout=args.lease_timeout,
                cache_dir=args.cache_dir,
                adaptive=not args.fixed_batches)
        else:
            summary = execute_sweep(
                sweep, store=store, name=args.name, shard=shard,
                resume=args.resume, recheck=args.recheck, engine=engine,
                max_workers=args.workers, progress=args.progress,
                checkpoint_every=args.checkpoint_every)
        if store is not None:
            _print_sweep_summary(summary)
        else:
            json.dump({"meta": summary["meta"],
                       "records": summary["records"]}, sys.stdout, indent=2)
            print()

    elif args.figure == "coordinate":
        from repro.distrib import DEFAULT_BATCH_SIZE, DEFAULT_CHECKPOINT_EVERY
        from repro.distrib import DEFAULT_LEASE_TIMEOUT, SweepCoordinator
        sweep = _sweep_from_args(args)
        shard = _parse_shard_arg(args, parser)
        if args.resume and not args.output:
            parser.error("--resume requires --output (the store to resume)")
        store = ResultStore(args.output) if args.output else None
        coordinator = SweepCoordinator(
            sweep, store=store, name=args.name,
            host=args.host, port=args.port or 0,
            shard=shard, resume=args.resume,
            batch_size=(DEFAULT_BATCH_SIZE if args.batch_size is None
                        else args.batch_size),
            lease_timeout=(DEFAULT_LEASE_TIMEOUT if args.lease_timeout is None
                           else args.lease_timeout),
            checkpoint_every=(DEFAULT_CHECKPOINT_EVERY
                              if args.checkpoint_every is None
                              else args.checkpoint_every),
            progress=args.progress,
            adaptive=not args.fixed_batches)
        coordinator.start()
        print(f"coordinator listening on {args.host}:{coordinator.port} "
              f"({coordinator.stats()['pending']} cells to lease)",
              file=sys.stderr, flush=True)
        summary = coordinator.run()
        if store is not None:
            _print_sweep_summary(summary)
        else:
            json.dump({"meta": summary["meta"],
                       "records": summary["records"]}, sys.stdout, indent=2)
            print()

    elif args.figure == "work":
        from repro.distrib import run_worker
        from repro.distrib.worker import format_worker_stats
        if args.port is None:
            parser.error("work requires --port (the coordinator's port)")
        stats = run_worker(args.host, args.port,
                           max_workers=args.workers or 1,
                           throttle=args.throttle,
                           cache_dir=args.cache_dir)
        print(format_worker_stats(stats), file=sys.stderr)

    elif args.figure == "serve":
        import time as _time
        from repro.distrib import (DEFAULT_CHECKPOINT_EVERY,
                                   DEFAULT_LEASE_TIMEOUT, PROTOCOL_VERSION,
                                   SweepService)
        store = ResultStore(args.output) if args.output else None
        service = SweepService(
            host=args.host, port=args.port or 0, store=store,
            lease_timeout=(DEFAULT_LEASE_TIMEOUT if args.lease_timeout is None
                           else args.lease_timeout),
            checkpoint_every=(DEFAULT_CHECKPOINT_EVERY
                              if args.checkpoint_every is None
                              else args.checkpoint_every),
            drain_when_idle=args.drain, progress=args.progress)
        service.start()
        print(f"service listening on {args.host}:{service.port} "
              f"(protocol version {PROTOCOL_VERSION})",
              file=sys.stderr, flush=True)
        failed = False
        try:
            while not (args.drain and service.drained()):
                _time.sleep(0.2)
        except KeyboardInterrupt:
            pass
        finally:
            for sweep_name, snap in sorted(
                    service.status_snapshot().items()):
                print(_format_sweep_line(sweep_name, snap),
                      file=sys.stderr, flush=True)
                failed = failed or snap["status"] == "failed"
            service.shutdown()
        return 1 if failed else 0

    elif args.figure == "submit":
        from repro.distrib import ClientError, submit_sweep, wait_for_sweep
        if args.port is None:
            parser.error("submit requires --port (the service's port)")
        sweep = _sweep_from_args(args)
        try:
            reply = submit_sweep(
                args.host, args.port, sweep, args.name,
                priority=args.priority, batch_size=args.batch_size,
                resume=args.resume, adaptive=not args.fixed_batches,
                checkpoint_every=args.checkpoint_every,
                store=str(args.output) if args.output else None)
            print(f"submitted {reply['sweep']}: {reply['cells']} cells "
                  f"({reply['pending']} to compute, priority "
                  f"{reply['priority']})")
            if args.wait:
                snap = wait_for_sweep(args.host, args.port, args.name)
                print(_format_sweep_line(args.name, snap))
                return 0 if snap["status"] == "completed" else 1
        except ClientError as error:
            print(f"submit failed: {error}", file=sys.stderr)
            return 1

    elif args.figure == "status":
        from repro.distrib import ClientError, sweep_status
        if args.port is None:
            parser.error("status requires --port (the service's port)")
        try:
            sweeps = sweep_status(args.host, args.port, args.target)
        except ClientError as error:
            print(f"status failed: {error}", file=sys.stderr)
            return 1
        if not sweeps:
            print("no sweeps hosted")
        for sweep_name, snap in sorted(sweeps.items()):
            print(_format_sweep_line(sweep_name, snap))

    elif args.figure == "cancel":
        from repro.distrib import ClientError, cancel_sweep
        if args.port is None:
            parser.error("cancel requires --port (the service's port)")
        if not args.target:
            parser.error("cancel requires the sweep name "
                         "(repro-eval cancel NAME --port P)")
        try:
            snap = cancel_sweep(args.host, args.port, args.target)
        except ClientError as error:
            print(f"cancel failed: {error}", file=sys.stderr)
            return 1
        print(f"cancelled {args.target}: keeping "
              f"{snap['done']}/{snap['total']} cells "
              f"({snap['leased']} still draining)")

    elif args.figure == "merge":
        if not args.stores or not args.output:
            parser.error("merge requires --stores SRC... and --output DIR")
        stats = ResultStore(args.output).merge(
            args.name, args.stores, require_disjoint=args.require_disjoint)
        print(f"merged {stats['records']} cells from {stats['sources']} "
              f"stores into {stats['path']} "
              f"({stats['duplicates']} duplicates, all bitwise-identical)")

    elif args.figure == "analyze":
        from repro.analysis import (audit_program_superblocks,
                                    verify_machine_program)
        from repro.placement.optimizer import (FlashRAMOptimizer,
                                               PlacementConfig)
        from repro.sim import Simulator
        do_lint = args.lint or not (args.lint or args.audit)
        do_audit = args.audit or not (args.lint or args.audit)
        benchmarks = args.benchmarks or list(BENCHMARK_NAMES)
        levels = args.levels or list(ALL_OPT_LEVELS)
        rows: List[dict] = []
        failures = 0

        def _report_lint(name, level, stage, program):
            diagnostics = verify_machine_program(program)
            for diagnostic in diagnostics:
                print(f"{name}/{level} [{stage}] {diagnostic}")
            return len(diagnostics)

        for name in benchmarks:
            for level in levels:
                # A private copy: placement rewrites the program in place.
                program = engine.compile_benchmark_mutable(name, level)
                row = {"benchmark": name, "opt_level": level}
                if do_lint:
                    row["lint_pristine"] = _report_lint(
                        name, level, "pristine", program)
                    failures += row["lint_pristine"]
                # The same transformation the evaluation applies: lint must
                # hold after relocation/instrumentation, and the audit wants
                # traces through instrumented code, not just pristine flash.
                FlashRAMOptimizer(program, config=PlacementConfig(
                    x_limit=args.x_limit, solver="greedy")).optimize()
                if do_lint:
                    row["lint_placed"] = _report_lint(
                        name, level, "placed", program)
                    failures += row["lint_placed"]
                if do_audit:
                    Simulator(program).run()
                    nodes, findings = audit_program_superblocks(program)
                    for finding in findings:
                        print(f"{name}/{level} [audit] {finding}")
                    row["superblock_nodes"] = nodes
                    row["audit_findings"] = len(findings)
                    failures += len(findings)
                rows.append(row)
        checks = [label for label, active in (("lint", do_lint),
                                              ("audit", do_audit)) if active]
        print(f"analyze ({'+'.join(checks)}): "
              f"{len(rows)} benchmark/level cells, {failures} findings")
        if args.output:
            _emit(args, "analyze", rows,
                  meta={"checks": checks, "findings": failures})
        return 1 if failures else 0

    elif args.figure == "metrics":
        from repro.distrib import protocol
        from repro.telemetry import render_prometheus
        if args.port is None:
            parser.error("metrics requires --port (the coordinator's port)")
        stream = protocol.connect(args.host, args.port)
        try:
            stream.send({"type": "metrics"})
            reply = stream.recv()
        finally:
            stream.close()
        if reply is None or reply.get("type") != "metrics":
            print(f"unexpected reply from coordinator: {reply!r}",
                  file=sys.stderr)
            return 1
        sys.stdout.write(render_prometheus(reply["snapshot"]))

    elif args.figure == "stats":
        from repro.telemetry import render_trace_stats
        trace_dir = args.target or args.telemetry
        if not trace_dir:
            parser.error("stats requires a trace directory "
                         "(positional PATH or --telemetry DIR)")
        print(render_trace_stats(trace_dir))

    elif args.figure == "report":
        if not args.store:
            parser.error("report requires --store DIR (a merged sweep store)")
        from repro.explore import report_from_store, write_report
        report = report_from_store(ResultStore(args.store), name=args.name)
        if args.output:
            for path in write_report(report, args.output).values():
                print(f"wrote {path}")
        else:
            json.dump(report, sys.stdout, indent=2)
            print()

    return 0


if __name__ == "__main__":
    raise SystemExit(main())
