"""Soft-float runtime, written in the mini-C dialect itself.

The paper observes that benchmarks dominated by statically-linked library
code (``cubic``, ``float_matmult`` use emulated floating point) benefit little
from the optimization because the pass cannot see or relocate library basic
blocks.  To reproduce that behaviour faithfully, float arithmetic in user code
is lowered to calls into these routines, which are compiled through the very
same backend but tagged ``is_library`` so the placement optimizer must leave
them in flash.

The implementation is a reduced-precision IEEE-754 single-precision emulation
(16-bit mantissa arithmetic, truncation rounding, no NaN/denormal handling).
It preserves the *shape* of soft-float code — unpack, align, integer
arithmetic, renormalise, repack — which is what matters for the energy and
placement experiments; it is not a bit-exact libgcc replacement.
"""

from __future__ import annotations

from repro.ir.module import Module
from repro.irgen.lowering import compile_source_to_ir

SOFT_FLOAT_SOURCE = r"""
// Reduced-precision IEEE-754 single soft-float runtime.
// All values are raw bit patterns carried in unsigned registers.

unsigned __fp_pack(unsigned sign, int exp, unsigned mant)
{
    // Renormalise the 24-bit mantissa (with implicit bit) and clamp exponents.
    if (mant == 0) {
        return sign << 31;
    }
    while (mant >= 16777216) {       // 1 << 24
        mant = mant >> 1;
        exp = exp + 1;
    }
    while (mant < 8388608) {         // 1 << 23
        mant = mant << 1;
        exp = exp - 1;
    }
    if (exp <= 0) {
        return sign << 31;           // underflow -> signed zero
    }
    if (exp >= 255) {
        return (sign << 31) | 2139095040;  // overflow -> infinity
    }
    return (sign << 31) | (exp << 23) | (mant & 8388607);
}

unsigned __fp_add(unsigned a, unsigned b)
{
    unsigned mag_a = a & 2147483647;
    unsigned mag_b = b & 2147483647;
    if (mag_a == 0) { return b; }
    if (mag_b == 0) { return a; }
    if (mag_a < mag_b) {
        unsigned t = a;
        a = b;
        b = t;
        t = mag_a;
        mag_a = mag_b;
        mag_b = t;
    }
    unsigned sign_a = a >> 31;
    unsigned sign_b = b >> 31;
    int exp_a = (mag_a >> 23) & 255;
    int exp_b = (mag_b >> 23) & 255;
    unsigned mant_a = (mag_a & 8388607) | 8388608;
    unsigned mant_b = (mag_b & 8388607) | 8388608;
    int shift = exp_a - exp_b;
    if (shift > 24) {
        return a;
    }
    mant_b = mant_b >> shift;
    unsigned mant;
    if (sign_a == sign_b) {
        mant = mant_a + mant_b;
    } else {
        mant = mant_a - mant_b;
    }
    return __fp_pack(sign_a, exp_a, mant);
}

unsigned __fp_sub(unsigned a, unsigned b)
{
    return __fp_add(a, b ^ 2147483648);
}

unsigned __fp_mul(unsigned a, unsigned b)
{
    unsigned mag_a = a & 2147483647;
    unsigned mag_b = b & 2147483647;
    unsigned sign = (a >> 31) ^ (b >> 31);
    if (mag_a == 0 || mag_b == 0) {
        return sign << 31;
    }
    int exp_a = (mag_a >> 23) & 255;
    int exp_b = (mag_b >> 23) & 255;
    // Keep the top 16 bits of each 24-bit mantissa so the product fits in 32.
    unsigned mant_a = ((mag_a & 8388607) | 8388608) >> 8;
    unsigned mant_b = ((mag_b & 8388607) | 8388608) >> 8;
    unsigned product = mant_a * mant_b;       // in [2^30, 2^32)
    int exp = exp_a + exp_b - 127;
    // The product has 2*(23-8) = 30 fractional bits relative to the implicit
    // one; shift back down to a 23-fraction-bit mantissa.
    unsigned mant = product >> 7;
    return __fp_pack(sign, exp, mant);
}

unsigned __fp_div(unsigned a, unsigned b)
{
    unsigned mag_a = a & 2147483647;
    unsigned mag_b = b & 2147483647;
    unsigned sign = (a >> 31) ^ (b >> 31);
    if (mag_a == 0) {
        return sign << 31;
    }
    if (mag_b == 0) {
        return (sign << 31) | 2139095040;     // divide by zero -> infinity
    }
    int exp_a = (mag_a >> 23) & 255;
    int exp_b = (mag_b >> 23) & 255;
    unsigned mant_a = ((mag_a & 8388607) | 8388608) >> 8;   // 16 bits
    unsigned mant_b = ((mag_b & 8388607) | 8388608) >> 8;   // 16 bits
    unsigned quotient = (mant_a << 15) / mant_b;            // ~15-16 bits
    int exp = exp_a - exp_b + 127;
    // quotient carries 15 fractional bits; widen to 23.
    unsigned mant = quotient << 8;
    return __fp_pack(sign, exp, mant);
}

int __fp_lt(unsigned a, unsigned b)
{
    unsigned sign_a = a >> 31;
    unsigned sign_b = b >> 31;
    unsigned mag_a = a & 2147483647;
    unsigned mag_b = b & 2147483647;
    if (mag_a == 0 && mag_b == 0) { return 0; }
    if (sign_a != sign_b) {
        if (sign_a == 1) { return 1; }
        return 0;
    }
    if (sign_a == 0) {
        if (mag_a < mag_b) { return 1; }
        return 0;
    }
    if (mag_a > mag_b) { return 1; }
    return 0;
}

int __fp_le(unsigned a, unsigned b)
{
    if (__fp_eq(a, b) == 1) { return 1; }
    return __fp_lt(a, b);
}

int __fp_eq(unsigned a, unsigned b)
{
    unsigned mag_a = a & 2147483647;
    unsigned mag_b = b & 2147483647;
    if (mag_a == 0 && mag_b == 0) { return 1; }
    if (a == b) { return 1; }
    return 0;
}

unsigned __fp_itof(int value)
{
    unsigned sign = 0;
    unsigned magnitude = value;
    if (value < 0) {
        sign = 1;
        magnitude = 0 - value;
    }
    if (magnitude == 0) {
        return 0;
    }
    // Normalise the integer into a 24-bit mantissa with exponent 127+23.
    int exp = 150;
    unsigned mant = magnitude;
    while (mant >= 16777216) {
        mant = mant >> 1;
        exp = exp + 1;
    }
    while (mant < 8388608) {
        mant = mant << 1;
        exp = exp - 1;
    }
    return (sign << 31) | (exp << 23) | (mant & 8388607);
}

int __fp_ftoi(unsigned a)
{
    unsigned mag = a & 2147483647;
    if (mag == 0) { return 0; }
    int exp = (mag >> 23) & 255;
    unsigned mant = (mag & 8388607) | 8388608;
    int shift = exp - 150;
    unsigned value;
    if (shift >= 0) {
        if (shift > 7) { shift = 7; }
        value = mant << shift;
    } else {
        int down = 0 - shift;
        if (down > 31) { return 0; }
        value = mant >> down;
    }
    if ((a >> 31) == 1) {
        return 0 - value;
    }
    return value;
}
"""

def soft_float_module() -> Module:
    """Compile and return a fresh soft-float runtime IR module.

    Every function in the returned module is tagged ``is_library`` so that the
    flash-RAM placement optimizer treats it as opaque.  A fresh module is
    lowered on every call because the optimization pipeline mutates IR in
    place and different programs are compiled at different ``-O`` levels.
    """
    return compile_source_to_ir(SOFT_FLOAT_SOURCE, "softfloat", is_library=True)
