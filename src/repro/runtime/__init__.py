"""Runtime support library (soft-float), compiled as opaque library code."""

from repro.runtime.softfloat import soft_float_module, SOFT_FLOAT_SOURCE

__all__ = ["soft_float_module", "SOFT_FLOAT_SOURCE"]
