"""Experiment engine: cached, parallel, decode-once evaluation pipeline.

This subsystem is the single path every figure, benchmark and example uses to
run compile→optimize→simulate experiments:

* :class:`ProgramCache` — content-addressed compile-once cache
  (`repro.engine.cache`);
* :class:`ExperimentEngine` / :class:`ExperimentSpec` — single experiments and
  parallel grids with deterministic ordering (`repro.engine.engine`);
* :class:`BenchmarkRun` / :class:`ResultStore` — result records and JSON
  persistence for cross-run comparison (`repro.engine.results`).

See ``DESIGN.md`` for the architecture and the invariants (bitwise-identical
results across sequential/parallel and decode-once/interpreted execution).
"""

from repro.engine.cache import (
    CacheStats,
    ProgramCache,
    default_cache,
    options_fingerprint,
    program_key,
)
from repro.engine.engine import (
    ExperimentEngine,
    ExperimentSpec,
    default_engine,
)
from repro.engine.results import (
    JOURNAL_SCHEMA,
    STORE_SCHEMA,
    BenchmarkRun,
    ResultStore,
    atomic_write_json,
    atomic_write_text,
    read_store_payload,
    records_equal,
    run_record,
    simulation_record,
    suite_row_record,
)

__all__ = [
    "CacheStats",
    "ProgramCache",
    "default_cache",
    "options_fingerprint",
    "program_key",
    "ExperimentEngine",
    "ExperimentSpec",
    "default_engine",
    "BenchmarkRun",
    "ResultStore",
    "JOURNAL_SCHEMA",
    "STORE_SCHEMA",
    "atomic_write_json",
    "atomic_write_text",
    "read_store_payload",
    "records_equal",
    "run_record",
    "simulation_record",
    "suite_row_record",
]
