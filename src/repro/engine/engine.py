"""The experiment engine: cached, parallel compile→optimize→simulate runs.

Every figure, benchmark and example funnels through
:class:`ExperimentEngine`.  For one experiment cell the engine

1. compiles the benchmark **once** through the shared
   :class:`~repro.engine.cache.ProgramCache` (the seed pipeline compiled the
   same source twice per optimized run),
2. simulates the pristine shared program for the baseline — baseline results
   are memoised per (program, engine) since simulation does not mutate the
   program,
3. deep-copies the pristine program for the placement optimizer, which
   rewrites blocks in place, and simulates the optimized copy.

Grids (benchmark × opt level × frequency mode) fan out over a
``concurrent.futures.ProcessPoolExecutor`` with deterministic result
ordering: results come back in spec order regardless of which worker finished
first, and every worker computes the exact same floats the sequential path
does, so parallel and sequential grids are bitwise identical.

Design-space sweeps (``repro.explore``) additionally vary the *energy model*
per cell — the paper's flash/RAM energy-ratio axis.  :meth:`ExperimentEngine.run_cells`
accepts ``(spec, energy_model)`` pairs and routes each cell to a sub-engine
for its model; sub-engines share this engine's :class:`ProgramCache`
(compilation is independent of the energy model) but keep their own
baseline memos (which are not).
"""

from __future__ import annotations

import math
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.beebs import get_benchmark
from repro.codegen import CompileOptions
from repro.engine.cache import ProgramCache, default_cache
from repro.engine.results import BenchmarkRun
from repro.machine.program import MachineProgram
from repro.placement import FlashRAMOptimizer, PlacementConfig
from repro.sim import EnergyModel, SimulationResult, Simulator
from repro.telemetry import get_telemetry


def frequency_fidelity(parameters, profile) -> Dict[str, float]:
    """How well the extracted ``F_b`` estimates match profiled block counts.

    The paper evaluates its static loop-depth estimate against exact
    profiled frequencies (Figure 5); this quantifies the gap per run, from
    data both placements already have in hand (the cost-model parameters
    and the baseline profile — no extra simulation).  Returns flat
    JSON-safe fields: the mean absolute natural-log ratio over blocks both
    sides consider live, plus the counts of blocks only one side does.
    Iteration is in sorted block-key order so the float accumulation — and
    therefore the stored record — is bitwise deterministic.
    """
    ratios_total = 0.0
    compared = 0
    predicted_dead = 0  # estimated hot but never executed
    missed_hot = 0      # executed but estimated dead
    for key in sorted(parameters):
        estimated = parameters[key].frequency
        profiled = float(profile.count(key))
        if estimated > 0.0 and profiled > 0.0:
            ratios_total += abs(math.log(estimated / profiled))
            compared += 1
        elif estimated > 0.0:
            predicted_dead += 1
        elif profiled > 0.0:
            missed_hot += 1
    mean = ratios_total / compared if compared else 0.0
    return {
        "fb_blocks_compared": compared,
        "fb_mean_abs_log_ratio": mean,
        "fb_predicted_dead": predicted_dead,
        "fb_missed_hot": missed_hot,
    }


@dataclass(frozen=True)
class ExperimentSpec:
    """One cell of an evaluation grid.

    ``timing_model`` selects the cycle-accounting scheme for both the
    placement cost model and the validating simulations (``"flat"`` default,
    or the pipelined variants of :mod:`repro.sim.pipeline`).
    """

    benchmark: str
    opt_level: str = "O2"
    optimize: bool = True
    x_limit: float = 1.5
    r_spare: Optional[int] = None
    frequency_mode: str = "static"
    solver: str = "ilp"
    timing_model: str = "flat"


class ExperimentEngine:
    """Runs compile/optimize/simulate experiments with caching and fan-out."""

    def __init__(self, energy_model: Optional[EnergyModel] = None,
                 cache: Optional[ProgramCache] = None,
                 max_workers: Optional[int] = None,
                 cache_dir: Optional[str] = None):
        self.energy_model = energy_model or EnergyModel()
        if cache is not None:
            self.cache = cache
        elif cache_dir is not None:
            self.cache = ProgramCache(cache_dir=cache_dir)
        else:
            self.cache = default_cache()
        #: Propagated to pool workers so their per-process caches share the
        #: same on-disk tier (an explicit ``cache`` object wins over
        #: ``cache_dir`` locally, but its directory still propagates).
        self.cache_dir = self.cache.cache_dir if cache is not None else cache_dir
        self.max_workers = max_workers
        self._baseline_results: Dict[Tuple, SimulationResult] = {}
        #: Latest cache-stats snapshot per pool worker, keyed by
        #: ``(pool_epoch, pid)`` — pids can be reused across pools, and each
        #: worker's snapshot is cumulative within its pool, so "latest per
        #: epoch+pid" sums correctly in :meth:`merged_cache_stats`.
        self.pool_cache_stats: Dict[Tuple[int, int], Dict[str, int]] = {}
        self._pool_epoch = 0
        #: Sub-engines for cells that use a non-default energy model; they
        #: share this engine's program cache but keep their own baseline
        #: memos (baselines depend on the energy model).
        self._model_engines: List[Tuple[EnergyModel, "ExperimentEngine"]] = []

    # ------------------------------------------------------------------ #
    # Compilation
    # ------------------------------------------------------------------ #
    def compile_benchmark(self, name: str, opt_level: str = "O2") -> MachineProgram:
        """The shared pristine program of one benchmark (compiled once)."""
        return self.cache.get_benchmark(name, opt_level)

    def compile_benchmark_mutable(self, name: str,
                                  opt_level: str = "O2") -> MachineProgram:
        """A private, transformable copy of the benchmark's program."""
        return self.cache.get_benchmark_mutable(name, opt_level)

    # ------------------------------------------------------------------ #
    # Single experiments
    # ------------------------------------------------------------------ #
    def _baseline(self, name: str, opt_level: str,
                  timing_model: str = "flat") -> SimulationResult:
        """Simulate the unmodified program; memoised per (benchmark, level,
        timing model)."""
        key = (name, opt_level, timing_model)
        result = self._baseline_results.get(key)
        if result is None:
            hub = get_telemetry()
            with hub.span("compile", benchmark=name, opt_level=opt_level):
                program = self.compile_benchmark(name, opt_level)
            with hub.span("simulate", stage="baseline"):
                result = Simulator(program, energy_model=self.energy_model,
                                   timing_model=timing_model).run()
            self._baseline_results[key] = result
        return result

    def run_baseline(self, name: str, opt_level: str = "O2",
                     timing_model: str = "flat") -> BenchmarkRun:
        """Compile and simulate one benchmark without the optimization."""
        get_benchmark(name)  # fail fast on unknown names
        return BenchmarkRun(name=name, opt_level=opt_level,
                            baseline=self._baseline(name, opt_level,
                                                    timing_model))

    def run_optimized(self, name: str, opt_level: str = "O2",
                      x_limit: float = 1.5,
                      r_spare: Optional[int] = None,
                      frequency_mode: str = "static",
                      solver: str = "ilp",
                      timing_model: str = "flat") -> BenchmarkRun:
        """Full experiment for one benchmark: baseline, optimize, re-run.

        ``frequency_mode="profile"`` feeds the baseline simulation's block
        counts to the optimizer (the dotted points of Figure 5).
        ``timing_model`` applies to the cost model and both simulations.
        """
        hub = get_telemetry()
        baseline = self._baseline(name, opt_level, timing_model)

        with hub.span("compile", benchmark=name, opt_level=opt_level,
                      stage="mutable"):
            optimized_program = self.compile_benchmark_mutable(name, opt_level)
        config = PlacementConfig(x_limit=x_limit, r_spare=r_spare,
                                 frequency_mode=frequency_mode, solver=solver,
                                 timing_model=timing_model)
        optimizer = FlashRAMOptimizer(optimized_program,
                                      energy_model=self.energy_model,
                                      config=config)
        profile = baseline.profile if frequency_mode == "profile" else None
        with hub.span("placement.solve", solver=solver):
            solution = optimizer.optimize(profile=profile)
        fb_report = frequency_fidelity(optimizer.parameters, baseline.profile)
        with hub.span("simulate", stage="optimized"):
            optimized = Simulator(optimized_program,
                                  energy_model=self.energy_model,
                                  timing_model=timing_model).run()

        if optimized.return_value != baseline.return_value:
            raise AssertionError(
                f"{name}/{opt_level}: optimization changed the result "
                f"({baseline.return_value} -> {optimized.return_value})")

        return BenchmarkRun(name=name, opt_level=opt_level, baseline=baseline,
                            optimized=optimized, solution=solution,
                            frequency_mode=frequency_mode,
                            fb_report=fb_report)

    def run_spec(self, spec: ExperimentSpec) -> BenchmarkRun:
        """Run one grid cell."""
        timing_model = getattr(spec, "timing_model", "flat")
        with get_telemetry().span("cell", benchmark=spec.benchmark,
                                  opt_level=spec.opt_level,
                                  x_limit=spec.x_limit, solver=spec.solver,
                                  frequency_mode=spec.frequency_mode,
                                  timing_model=timing_model):
            if not spec.optimize:
                return self.run_baseline(spec.benchmark, spec.opt_level,
                                         timing_model=timing_model)
            return self.run_optimized(spec.benchmark, spec.opt_level,
                                      x_limit=spec.x_limit,
                                      r_spare=spec.r_spare,
                                      frequency_mode=spec.frequency_mode,
                                      solver=spec.solver,
                                      timing_model=timing_model)

    # ------------------------------------------------------------------ #
    # Grids
    # ------------------------------------------------------------------ #
    def _engine_for_model(self, energy_model: EnergyModel) -> "ExperimentEngine":
        """This engine, or a cache-sharing sub-engine for another model."""
        if energy_model == self.energy_model:
            return self
        for model, engine in self._model_engines:
            if model == energy_model:
                return engine
        engine = ExperimentEngine(energy_model=energy_model, cache=self.cache,
                                  max_workers=1)
        self._model_engines.append((energy_model, engine))
        return engine

    def run_cell(self, spec: ExperimentSpec,
                 energy_model: Optional[EnergyModel] = None) -> BenchmarkRun:
        """Run one cell, optionally under a cell-specific energy model."""
        if energy_model is None:
            return self.run_spec(spec)
        return self._engine_for_model(energy_model).run_spec(spec)

    def run_cells(self,
                  cells: Sequence[Tuple[ExperimentSpec, Optional[EnergyModel]]],
                  max_workers: Optional[int] = None,
                  progress: Optional[Callable[[int, int], None]] = None
                  ) -> List[BenchmarkRun]:
        """Run ``(spec, energy_model)`` cells; results are in cell order.

        ``energy_model=None`` means the engine default.  This is the fan-out
        primitive behind both plain grids (:meth:`run_grid`) and the
        ``repro.explore`` design-space sweeps, whose cells vary the flash/RAM
        energy ratio.  Worker processes compute the exact same floats the
        sequential path does, so parallel and sequential runs are bitwise
        identical.

        ``progress`` (when given) is called as ``progress(done, total)``
        after each completed cell — on the pool path, after each in-order
        result is collected — purely for live reporting; it never affects
        the results.
        """
        resolved = [(spec, model if model is not None else self.energy_model)
                    for spec, model in cells]
        workers = max_workers if max_workers is not None else self.max_workers
        if workers is None:
            workers = os.cpu_count() or 1
        workers = min(workers, len(resolved)) if resolved else 1

        if workers <= 1 or len(resolved) <= 1:
            sequential: List[BenchmarkRun] = []
            for spec, model in resolved:
                sequential.append(self.run_cell(spec, model))
                if progress is not None:
                    progress(len(sequential), len(resolved))
            return sequential

        # Keep same-(benchmark, level) cells on one worker so its per-process
        # engine reuses the compile and the memoised baseline.  Plain grids
        # are already contiguous, but sharded/resumed sweeps hand us subsets
        # scattered across benchmarks, so tasks are regrouped for the pool
        # and the results put back in cell order afterwards.  Per-cell floats
        # do not depend on which worker computes them, so the regrouping is
        # invisible in the output.
        order = sorted(range(len(resolved)),
                       key=lambda i: (resolved[i][0].benchmark,
                                      resolved[i][0].opt_level, i))
        tasks = [(resolved[i][0], resolved[i][1], self.cache_dir)
                 for i in order]
        chunksize = -(-len(tasks) // workers)
        self._pool_epoch += 1
        epoch = self._pool_epoch
        outputs: List[BenchmarkRun] = []
        with ProcessPoolExecutor(max_workers=workers) as pool:
            for output, pid, stats in pool.map(_grid_worker, tasks,
                                               chunksize=chunksize):
                # Snapshots are cumulative per worker process; the latest
                # one per (epoch, pid) supersedes the earlier ones.
                self.pool_cache_stats[(epoch, pid)] = stats
                outputs.append(output)
                if progress is not None:
                    progress(len(outputs), len(resolved))
        results: List[Optional[BenchmarkRun]] = [None] * len(resolved)
        for position, index in enumerate(order):
            results[index] = outputs[position]
        return results

    def merged_cache_stats(self) -> Dict[str, int]:
        """Cache statistics including the pool workers' contributions.

        The engine's own :class:`~repro.engine.cache.CacheStats` only sees
        in-process traffic; compiles and disk hits performed by spawned
        ``run_cells`` workers are returned through the pool (one cumulative
        snapshot per worker, latest wins) and summed here.  All fields are
        additive counts, so the derived ``compiles`` column sums correctly
        too.
        """
        merged = self.cache.stats.as_dict()
        for snapshot in self.pool_cache_stats.values():
            for key, value in snapshot.items():
                merged[key] = merged.get(key, 0) + value
        return merged

    def run_grid(self, specs: Sequence[ExperimentSpec],
                 max_workers: Optional[int] = None) -> List[BenchmarkRun]:
        """Run a grid of experiments; results are in spec order.

        ``max_workers`` (falling back to the engine default, then to the CPU
        count) caps the process fan-out; ``<= 1`` runs sequentially in
        process, which shares this engine's caches and is what tests use for
        determinism checks.
        """
        return self.run_cells([(spec, None) for spec in specs],
                              max_workers=max_workers)


# --------------------------------------------------------------------------- #
# Worker-process plumbing
# --------------------------------------------------------------------------- #
#: Per-process engines reused across tasks, one per distinct (energy model,
#: cache dir) pair (models are small dataclasses, compared by value).
_WORKER_ENGINES: List[Tuple[EnergyModel, Optional[str], ExperimentEngine]] = []


def _worker_cache_stats() -> Dict[str, int]:
    """This worker process's cumulative cache stats, over all its engines."""
    totals: Dict[str, int] = {}
    for _model, _directory, engine in _WORKER_ENGINES:
        for key, value in engine.cache.stats.as_dict().items():
            totals[key] = totals.get(key, 0) + value
    return totals


def _grid_worker(payload: Tuple[ExperimentSpec, EnergyModel, Optional[str]]
                 ) -> Tuple[BenchmarkRun, int, Dict[str, int]]:
    """Run one cell in a pool worker; returns (run, pid, cache stats).

    The stats snapshot is cumulative for this worker process so the parent
    can fold pool-side compiles/disk hits into its own summary (keeping only
    the latest snapshot per worker)."""
    spec, energy_model, cache_dir = payload
    engine = None
    for model, directory, candidate in _WORKER_ENGINES:
        if model == energy_model and directory == cache_dir:
            engine = candidate
            break
    if engine is None:
        engine = ExperimentEngine(energy_model=energy_model, max_workers=1,
                                  cache_dir=cache_dir)
        _WORKER_ENGINES.append((energy_model, cache_dir, engine))
    run = engine.run_spec(spec)
    return run, os.getpid(), _worker_cache_stats()


# --------------------------------------------------------------------------- #
# Default engine
# --------------------------------------------------------------------------- #
_DEFAULT_ENGINE: Optional[ExperimentEngine] = None


def default_engine() -> ExperimentEngine:
    """The process-wide engine used by the evaluation convenience wrappers."""
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = ExperimentEngine()
    return _DEFAULT_ENGINE
