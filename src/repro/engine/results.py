"""Experiment result records and the JSON-backed :class:`ResultStore`.

:class:`BenchmarkRun` is the unit of measurement of the whole evaluation (one
benchmark at one optimization level, baseline and optionally optimized); it
used to live in ``repro.evaluation.pipeline`` and is re-exported from there
for compatibility.  :class:`ResultStore` serializes grids of
``BenchmarkRun``/``SuiteRow`` records to JSON so independent runs (sequential
vs parallel, decode-once vs interpreted, before vs after a change) can be
compared bitwise: Python's ``repr``-based float serialization round-trips
exactly, so equal floats stay equal through the store.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.placement import PlacementSolution
from repro.sim import SimulationResult


@dataclass
class BenchmarkRun:
    """Everything measured for one benchmark at one optimization level."""

    name: str
    opt_level: str
    baseline: SimulationResult
    optimized: Optional[SimulationResult] = None
    solution: Optional[PlacementSolution] = None
    frequency_mode: str = "static"

    @property
    def energy_change(self) -> float:
        """Relative energy change (negative = saving), e.g. -0.22 for -22 %."""
        if self.optimized is None:
            return 0.0
        return self.optimized.energy_j / self.baseline.energy_j - 1.0

    @property
    def time_change(self) -> float:
        if self.optimized is None:
            return 0.0
        return self.optimized.cycles / self.baseline.cycles - 1.0

    @property
    def power_change(self) -> float:
        if self.optimized is None:
            return 0.0
        return (self.optimized.average_power_w / self.baseline.average_power_w) - 1.0

    @property
    def ke(self) -> float:
        """The case-study energy factor k_e."""
        return 1.0 + self.energy_change

    @property
    def kt(self) -> float:
        """The case-study time factor k_t."""
        return 1.0 + self.time_change


# --------------------------------------------------------------------------- #
# Record construction
# --------------------------------------------------------------------------- #
def simulation_record(result: SimulationResult) -> Dict:
    """Flat JSON-safe record of one simulation (profile omitted)."""
    return {
        "return_value": result.return_value,
        "cycles": result.cycles,
        "instructions": result.instructions,
        "energy_j": result.energy_j,
        "time_s": result.time_s,
        "cycles_by_section": dict(result.cycles_by_section),
    }


def run_record(run: BenchmarkRun) -> Dict:
    """Flat JSON-safe record of one :class:`BenchmarkRun`."""
    record = {
        "name": run.name,
        "opt_level": run.opt_level,
        "frequency_mode": run.frequency_mode,
        "baseline": simulation_record(run.baseline),
        "optimized": (simulation_record(run.optimized)
                      if run.optimized is not None else None),
        "energy_change": run.energy_change,
        "time_change": run.time_change,
        "power_change": run.power_change,
    }
    if run.solution is not None:
        record["ram_blocks"] = sorted(run.solution.ram_blocks)
        record["instrumented"] = sorted(run.solution.instrumented)
        record["solver"] = run.solution.solver
    return record


def suite_row_record(row) -> Dict:
    """Record for a Figure-5 ``SuiteRow`` (anything with ``as_dict``)."""
    return row.as_dict()


class ResultStore:
    """Directory of named JSON result files for cross-run comparison."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)

    def path_for(self, name: str) -> Path:
        return self.root / f"{name}.json"

    # ------------------------------------------------------------------ #
    def save(self, name: str, records: Sequence[Dict],
             meta: Optional[Dict] = None) -> Path:
        """Write *records* (flat dicts) under *name*; returns the file path."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(name)
        payload = {"meta": meta or {}, "records": list(records)}
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
        return path

    def load(self, name: str) -> List[Dict]:
        """Load the records previously saved under *name*."""
        payload = json.loads(self.path_for(name).read_text(encoding="utf-8"))
        return payload["records"]

    def load_meta(self, name: str) -> Dict:
        payload = json.loads(self.path_for(name).read_text(encoding="utf-8"))
        return payload.get("meta", {})

    # ------------------------------------------------------------------ #
    def save_runs(self, name: str, runs: Sequence[BenchmarkRun],
                  meta: Optional[Dict] = None) -> Path:
        return self.save(name, [run_record(run) for run in runs], meta=meta)

    def save_suite(self, name: str, rows: Sequence,
                   meta: Optional[Dict] = None) -> Path:
        return self.save(name, [suite_row_record(row) for row in rows], meta=meta)


def records_equal(first: Sequence[Dict], second: Sequence[Dict]) -> bool:
    """Exact (bitwise for floats) equality of two record lists."""
    return list(first) == list(second)
