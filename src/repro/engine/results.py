"""Experiment result records and the JSON-backed :class:`ResultStore`.

:class:`BenchmarkRun` is the unit of measurement of the whole evaluation (one
benchmark at one optimization level, baseline and optionally optimized); it
used to live in ``repro.evaluation.pipeline`` and is re-exported from there
for compatibility.  :class:`ResultStore` serializes grids of
``BenchmarkRun``/``SuiteRow`` records to JSON so independent runs (sequential
vs parallel, decode-once vs interpreted, before vs after a change) can be
compared bitwise: Python's ``repr``-based float serialization round-trips
exactly, so equal floats stay equal through the store.

Stores come in two layouts sharing one schema-versioned container
(``{"schema": N, "meta": ..., "records": [...]}``):

* **plain** stores (:meth:`ResultStore.save` / :meth:`ResultStore.load`)
  keep records in caller order — one file per figure/benchmark artifact;
* **keyed** stores (:meth:`ResultStore.save_keyed` /
  :meth:`ResultStore.append_keyed` / :meth:`ResultStore.merge`) require every
  record to carry a stable identity field (a sweep ``cell_key``), keep the
  records sorted by that key, and combine deterministically: merging the
  disjoint shards of a sweep reproduces the monolithic store byte for byte.

Every write goes through a same-directory temp file and ``os.replace``, so an
interrupted run can never leave a truncated store that a resume would
silently trust — a reader sees either the old complete file or the new one.

Rewriting the whole (sorted, canonical) store per append is O(store) — fine
for one final write, far too slow for the periodic checkpoints of a long
distributed run.  Keyed stores therefore also support a **journal** sidecar
(``<name>.journal``): :meth:`ResultStore.append_journal` appends one compact
JSON line per record in O(batch), and :meth:`ResultStore.compact_journal`
folds the journal into the canonical sorted store in a single O(store)
rewrite at the end.  A torn trailing line (the only damage an interrupted
append can cause) is detected and ignored on replay; duplicated records must
agree bitwise, exactly like :meth:`ResultStore.merge`.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.placement import PlacementSolution
from repro.sim import SimulationResult

#: Store container version written by this build.  Version 1 is the legacy
#: PR-1 layout (no ``schema`` key); version 2 adds the key and keyed stores.
STORE_SCHEMA = 2

#: Versions this build knows how to read.
READABLE_SCHEMAS = (1, STORE_SCHEMA)

#: Journal sidecar version written by this build.
JOURNAL_SCHEMA = 1

#: Meta keys that describe one *invocation* rather than the sweep itself;
#: :meth:`ResultStore.merge` ignores them when checking that shard stores
#: describe the same sweep, and recomputes ``cells`` for the merged store.
PER_RUN_META_KEYS = ("cells", "shard")


# --------------------------------------------------------------------------- #
# Atomic writes
# --------------------------------------------------------------------------- #
def atomic_write_text(path: Union[str, Path], text: str) -> Path:
    """Write *text* to *path* atomically (same-dir temp file + ``os.replace``)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    handle = tempfile.NamedTemporaryFile(
        "w", encoding="utf-8", dir=path.parent,
        prefix=path.name + ".", suffix=".tmp", delete=False)
    try:
        with handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(handle.name, path)
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise
    return path


def atomic_write_json(path: Union[str, Path], payload: Dict) -> Path:
    """Serialize *payload* first, then write atomically (a serialization
    error therefore cannot clobber or truncate an existing file)."""
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    return atomic_write_text(path, text)


def read_store_payload(path: Union[str, Path]) -> Dict:
    """Read one store file, rejecting unknown schema versions loudly."""
    path = Path(path)
    payload = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(payload, dict) or "records" not in payload:
        raise ValueError(f"{path}: not a result store (no 'records' array)")
    schema = payload.get("schema", 1)
    if schema not in READABLE_SCHEMAS:
        raise ValueError(
            f"{path}: unknown result-store schema {schema!r}; this build reads "
            f"schemas {list(READABLE_SCHEMAS)} — refusing to guess at the "
            f"contents of a newer/foreign store")
    return payload


@dataclass
class BenchmarkRun:
    """Everything measured for one benchmark at one optimization level."""

    name: str
    opt_level: str
    baseline: SimulationResult
    optimized: Optional[SimulationResult] = None
    solution: Optional[PlacementSolution] = None
    frequency_mode: str = "static"
    #: Static-vs-profiled ``F_b`` fidelity fields (flat JSON-safe dict from
    #: :func:`repro.engine.engine.frequency_fidelity`); None for baselines.
    fb_report: Optional[Dict] = None

    @property
    def energy_change(self) -> float:
        """Relative energy change (negative = saving), e.g. -0.22 for -22 %."""
        if self.optimized is None:
            return 0.0
        return self.optimized.energy_j / self.baseline.energy_j - 1.0

    @property
    def time_change(self) -> float:
        if self.optimized is None:
            return 0.0
        return self.optimized.cycles / self.baseline.cycles - 1.0

    @property
    def power_change(self) -> float:
        if self.optimized is None:
            return 0.0
        return (self.optimized.average_power_w / self.baseline.average_power_w) - 1.0

    @property
    def ke(self) -> float:
        """The case-study energy factor k_e."""
        return 1.0 + self.energy_change

    @property
    def kt(self) -> float:
        """The case-study time factor k_t."""
        return 1.0 + self.time_change


# --------------------------------------------------------------------------- #
# Record construction
# --------------------------------------------------------------------------- #
def simulation_record(result: SimulationResult) -> Dict:
    """Flat JSON-safe record of one simulation (profile omitted)."""
    return {
        "return_value": result.return_value,
        "cycles": result.cycles,
        "instructions": result.instructions,
        "energy_j": result.energy_j,
        "time_s": result.time_s,
        "cycles_by_section": dict(result.cycles_by_section),
    }


def run_record(run: BenchmarkRun) -> Dict:
    """Flat JSON-safe record of one :class:`BenchmarkRun`."""
    record = {
        "name": run.name,
        "opt_level": run.opt_level,
        "frequency_mode": run.frequency_mode,
        "baseline": simulation_record(run.baseline),
        "optimized": (simulation_record(run.optimized)
                      if run.optimized is not None else None),
        "energy_change": run.energy_change,
        "time_change": run.time_change,
        "power_change": run.power_change,
    }
    if run.solution is not None:
        record["ram_blocks"] = sorted(run.solution.ram_blocks)
        record["instrumented"] = sorted(run.solution.instrumented)
        record["solver"] = run.solution.solver
    if run.fb_report is not None:
        record.update(run.fb_report)
    return record


def suite_row_record(row) -> Dict:
    """Record for a Figure-5 ``SuiteRow`` (anything with ``as_dict``)."""
    return row.as_dict()


def _index_records(records: Iterable[Dict], key_field: str) -> Dict[str, Dict]:
    """Index *records* by *key_field*, rejecting missing keys and conflicts."""
    indexed: Dict[str, Dict] = {}
    for record in records:
        key = record.get(key_field)
        if not isinstance(key, str) or not key:
            raise ValueError(
                f"record missing the {key_field!r} identity field; keyed "
                f"stores require every record to be content-addressed")
        if key in indexed and indexed[key] != record:
            raise ValueError(
                f"conflicting records for {key_field}={key}: the same cell "
                f"produced different measurements")
        indexed[key] = record
    return indexed


class ResultStore:
    """Directory of named JSON result files for cross-run comparison."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)

    def path_for(self, name: str) -> Path:
        return self.root / f"{name}.json"

    def _payload(self, name: str) -> Dict:
        return read_store_payload(self.path_for(name))

    # ------------------------------------------------------------------ #
    # Plain stores
    # ------------------------------------------------------------------ #
    def save(self, name: str, records: Sequence[Dict],
             meta: Optional[Dict] = None) -> Path:
        """Write *records* (flat dicts) under *name*; returns the file path."""
        payload = {"schema": STORE_SCHEMA, "meta": meta or {},
                   "records": list(records)}
        return atomic_write_json(self.path_for(name), payload)

    def load(self, name: str) -> List[Dict]:
        """Load the records previously saved under *name*."""
        return self._payload(name)["records"]

    def load_meta(self, name: str) -> Dict:
        return self._payload(name).get("meta", {})

    # ------------------------------------------------------------------ #
    # Keyed stores
    # ------------------------------------------------------------------ #
    def save_keyed(self, name: str, records: Iterable[Dict],
                   meta: Optional[Dict] = None,
                   key_field: str = "cell_key") -> Path:
        """Write a keyed store: records sorted by *key_field*, meta stamped
        with the record count.  The sorted order is what makes independently
        produced stores (shards, resumes) combine byte-identically."""
        indexed = _index_records(records, key_field)
        meta = dict(meta or {})
        meta["cells"] = len(indexed)
        payload = {"schema": STORE_SCHEMA, "keyed_by": key_field, "meta": meta,
                   "records": [indexed[key] for key in sorted(indexed)]}
        return atomic_write_json(self.path_for(name), payload)

    def _keyed_payload(self, name: str) -> tuple:
        payload = self._payload(name)
        key_field = payload.get("keyed_by")
        if not key_field:
            raise ValueError(f"{self.path_for(name)}: not a keyed store "
                             f"(missing 'keyed_by')")
        return payload, key_field

    def load_keyed(self, name: str) -> Dict[str, Dict]:
        """The store's records as an ordered ``{key: record}`` mapping."""
        payload, key_field = self._keyed_payload(name)
        return {record[key_field]: record for record in payload["records"]}

    def append_keyed(self, name: str, records: Iterable[Dict],
                     meta: Optional[Dict] = None,
                     key_field: str = "cell_key") -> Path:
        """Add *records* to an existing keyed store (atomic rewrite).

        Duplicate keys must carry bitwise-identical records — a resumed sweep
        may legitimately recompute a cell, but it must reproduce the stored
        measurement exactly.  *meta* (when given) replaces the stored meta;
        ``cells`` is always restamped.
        """
        if not self.path_for(name).exists():
            return self.save_keyed(name, records, meta=meta,
                                   key_field=key_field)
        payload, existing_field = self._keyed_payload(name)
        if existing_field != key_field:
            raise ValueError(
                f"{self.path_for(name)}: keyed by {existing_field!r}, "
                f"cannot append records keyed by {key_field!r}")
        combined = _index_records(list(payload["records"]) + list(records),
                                  key_field)
        meta = dict(meta if meta is not None else payload.get("meta", {}))
        return self.save_keyed(name, combined.values(), meta=meta,
                               key_field=key_field)

    # ------------------------------------------------------------------ #
    # Journal sidecar: O(batch) appends, one O(store) compaction
    # ------------------------------------------------------------------ #
    def journal_path(self, name: str) -> Path:
        return self.root / f"{name}.journal"

    def append_journal(self, name: str, records: Iterable[Dict],
                       meta: Optional[Dict] = None,
                       key_field: str = "cell_key") -> Path:
        """Append *records* to the journal sidecar of keyed store *name*.

        Cost is O(batch): one compact JSON line per record, appended to the
        journal file (a header line stamps the key field and sweep meta when
        the journal is created).  The canonical sorted store is untouched
        until :meth:`compact_journal` folds the journal in.  *meta* is only
        used when the journal is created; an existing header wins.
        """
        records = list(records)
        for record in records:
            key = record.get(key_field)
            if not isinstance(key, str) or not key:
                raise ValueError(
                    f"record missing the {key_field!r} identity field; "
                    f"journals require every record to be content-addressed")
        path = self.journal_path(name)
        path.parent.mkdir(parents=True, exist_ok=True)
        lines: List[str] = []
        if not path.exists():
            lines.append(json.dumps(
                {"journal": JOURNAL_SCHEMA, "keyed_by": key_field,
                 "meta": meta or {}},
                sort_keys=True, separators=(",", ":")))
        lines.extend(json.dumps(record, sort_keys=True, separators=(",", ":"))
                     for record in records)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("".join(line + "\n" for line in lines))
            handle.flush()
            os.fsync(handle.fileno())
        return path

    def load_journal(self, name: str) -> tuple:
        """Replay the journal of *name*: returns ``(header, records_by_key)``.

        A torn **trailing** line — the only damage an interrupted append can
        leave behind — is ignored; a malformed line anywhere else is
        corruption and raises.  Duplicate keys must agree bitwise.  A
        journal whose very first append was interrupted (zero bytes, or a
        single torn line) replays as empty — ``(None, {})`` — so the
        advertised crash-recovery path never trips over its own wreckage.
        """
        path = self.journal_path(name)
        lines = path.read_text(encoding="utf-8").splitlines()
        if not lines:
            return None, {}  # crash before the header ever hit the disk

        def parse(index: int, line: str) -> Optional[Dict]:
            try:
                return json.loads(line)
            except json.JSONDecodeError:
                if index == len(lines) - 1:
                    return None  # torn trailing line from an interrupted append
                raise ValueError(
                    f"{path}: corrupt journal line {index + 1} (only the "
                    f"final line may be torn by an interrupted append)")

        header = parse(0, lines[0])
        if header is None and len(lines) == 1:
            return None, {}      # the sole (header) line was torn mid-write
        if (header is None or not isinstance(header, dict)
                or header.get("journal") != JOURNAL_SCHEMA
                or "keyed_by" not in header):
            raise ValueError(
                f"{path}: unrecognized journal header; this build writes "
                f"journal version {JOURNAL_SCHEMA}")
        parsed = [parse(index, line)
                  for index, line in enumerate(lines[1:], start=1)]
        records = [record for record in parsed if record is not None]
        return header, _index_records(records, header["keyed_by"])

    def compact_journal(self, name: str,
                        merge_store: bool = True) -> Optional[Path]:
        """Fold the journal of *name* into its canonical keyed store.

        One O(store) rewrite replaces the journal's many O(batch) appends.
        With ``merge_store=True`` the journal's records join whatever the
        store already holds (the resume/checkpoint case — duplicates must
        agree bitwise, as in :meth:`merge`); with ``merge_store=False`` the
        journal's records *replace* the store (a fresh, non-resumed run
        whose output directory may hold an older sweep).  The journal file
        is removed once the store write has committed, so a crash between
        the two leaves only bitwise-identical duplicates behind.  An
        effectively-empty journal (first append interrupted) is simply
        removed; the return value is the store path, or ``None`` when
        neither journal records nor a store exist.
        """
        if not self.journal_path(name).exists():
            if self.path_for(name).exists():
                return self.path_for(name)
            raise FileNotFoundError(
                f"{self.journal_path(name)}: no journal to compact")
        header, records = self.load_journal(name)
        if header is None:
            os.unlink(self.journal_path(name))
            return (self.path_for(name) if self.path_for(name).exists()
                    else None)
        key_field = header["keyed_by"]
        meta = header.get("meta") or {}
        if merge_store and self.path_for(name).exists():
            path = self.append_keyed(name, records.values(), meta=meta,
                                     key_field=key_field)
        else:
            path = self.save_keyed(name, records.values(), meta=meta,
                                   key_field=key_field)
        os.unlink(self.journal_path(name))
        return path

    def merge(self, name: str, sources: Sequence[Union[str, Path]],
              require_disjoint: bool = False) -> Dict:
        """Merge keyed stores (files or store directories) into *name*.

        Validates that every source describes the same sweep (metas must
        agree once per-run keys — shard assignment, cell counts — are
        stripped) and that any duplicated cell agrees bitwise across sources;
        ``require_disjoint=True`` additionally makes *any* duplicate an error
        (the shard→merge CI contract).  Returns merge statistics.
        """
        if not sources:
            raise ValueError("merge requires at least one source store")
        merged: Dict[str, Dict] = {}
        common_meta: Optional[Dict] = None
        first_path: Optional[Path] = None
        key_field: Optional[str] = None
        duplicates = 0
        for source in sources:
            path = Path(source)
            if path.is_dir():
                path = path / f"{name}.json"
            payload = read_store_payload(path)
            field_name = payload.get("keyed_by")
            if not field_name:
                raise ValueError(f"{path}: not a keyed store, cannot merge")
            if key_field is None:
                key_field = field_name
            elif field_name != key_field:
                raise ValueError(f"{path}: keyed by {field_name!r} but "
                                 f"{first_path} is keyed by {key_field!r}")
            meta = {k: v for k, v in payload.get("meta", {}).items()
                    if k not in PER_RUN_META_KEYS}
            if common_meta is None:
                common_meta, first_path = meta, path
            elif meta != common_meta:
                raise ValueError(
                    f"{path}: sweep meta differs from {first_path}; these "
                    f"stores come from different sweeps and must not be "
                    f"merged")
            for record in payload["records"]:
                key = record[key_field]
                if key in merged:
                    duplicates += 1
                    if require_disjoint:
                        raise ValueError(
                            f"{path}: cell {key} already present in another "
                            f"source (shards are required to be disjoint)")
                    if merged[key] != record:
                        raise ValueError(
                            f"{path}: conflicting records for cell {key} "
                            f"across sources")
                else:
                    merged[key] = record
        dest = self.save_keyed(name, merged.values(), meta=common_meta,
                               key_field=key_field)
        return {"path": str(dest), "sources": len(sources),
                "records": len(merged), "duplicates": duplicates}

    # ------------------------------------------------------------------ #
    def save_runs(self, name: str, runs: Sequence[BenchmarkRun],
                  meta: Optional[Dict] = None) -> Path:
        return self.save(name, [run_record(run) for run in runs], meta=meta)

    def save_suite(self, name: str, rows: Sequence,
                   meta: Optional[Dict] = None) -> Path:
        return self.save(name, [suite_row_record(row) for row in rows], meta=meta)


def records_equal(first: Sequence[Dict], second: Sequence[Dict]) -> bool:
    """Exact (bitwise for floats) equality of two record lists."""
    return list(first) == list(second)
