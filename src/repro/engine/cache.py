"""Content-addressed program cache: each program is compiled exactly once.

The paper's evaluation is a grid of compile→optimize→simulate experiments, and
the seed harness recompiled the same (benchmark, opt level) pair from source
for every figure that touched it — twice per optimized run alone.  The cache
keys compiled :class:`~repro.machine.program.MachineProgram` objects by the
SHA-256 of the source text plus a fingerprint of every
:class:`~repro.codegen.CompileOptions` field, so

* identical experiments share one compile per process,
* any option change (opt level, entry, linking, stack reserve, …) is a
  different key — there is no way to get a stale program back.

Two tiers:

* **memory** (always on): pristine shared instances per process;
* **disk** (``cache_dir=...``): pickled program images under
  ``<cache_dir>/<key[:2]>/<key>.pkl`` so a fleet of worker *processes*
  compiles each key once per machine.  Entries are content-addressed — the
  file key hashes the source digest, the options fingerprint, the on-disk
  format version and a code-version salt — and carry a header repeating all
  of that, so a stale, truncated or corrupt entry is rejected loudly
  (a :class:`CacheIntegrityWarning`) and transparently recompiled.  Writes
  go to a same-directory temp file followed by ``os.replace``, which is
  atomic: concurrent writers race benignly (last complete image wins) and
  readers can never observe a torn file.

Cached instances are pristine and shared; callers that mutate programs (the
flash-RAM placement transformation rewrites blocks in place) take a private
copy via :meth:`ProgramCache.get_mutable`.  Copies are materialised from a
memoised ``pickle.dumps`` snapshot — measured ~5x faster than ``deepcopy``
on BEEBS-sized programs and identical in effect: the ``__reduce__``/
``__deepcopy__`` hooks in :mod:`repro.isa` keep register singletons, and
:class:`~repro.machine.blocks.MachineBlock` drops its decode cache either
way.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import tempfile
import threading
import warnings
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.beebs import get_benchmark
from repro.codegen import CompileOptions, compile_source
from repro.machine.program import MachineProgram
from repro.telemetry import get_telemetry

#: Layout version of the on-disk entry envelope; bump on any change to the
#: payload structure below.
DISK_FORMAT_VERSION = 1

#: Salt capturing the compiled-program representation itself.  Bump whenever
#: a change to the compiler/machine layer makes previously pickled programs
#: meaningless (new required attributes, changed semantics, …): old entries
#: then miss by construction instead of deserialising into stale objects.
CACHE_CODE_VERSION = "2026.08-superblocks"

_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL


class CacheIntegrityWarning(UserWarning):
    """A disk-cache entry was rejected (corrupt, truncated or stale)."""


@dataclass
class CacheStats:
    """Counters for cache behaviour across both tiers.

    ``misses`` counts memory-tier misses; of those, ``disk_hits`` were
    satisfied from the on-disk tier, so ``compiles`` — actual invocations of
    the compiler — is ``misses - disk_hits``.  ``disk_misses`` only counts
    lookups that went to disk and failed (no disk tier configured → 0).
    """

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    disk_misses: int = 0

    @property
    def compiles(self) -> int:
        return self.misses - self.disk_hits

    @property
    def total(self) -> int:
        return self.hits + self.misses

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "disk_misses": self.disk_misses,
            "compiles": self.compiles,
        }


def options_fingerprint(options: CompileOptions) -> Tuple:
    """A hashable, order-stable digest of every compile option.

    Derived from the dataclass fields so that options added to
    :class:`CompileOptions` later automatically become part of the cache key —
    two option sets that differ in any field can never alias.
    """
    return tuple(
        (f.name, str(getattr(options, f.name)))
        for f in dataclasses.fields(options)
    )


def program_key(source: str, options: CompileOptions) -> Tuple:
    """Content-addressed cache key for (source, options)."""
    digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
    return (digest, options_fingerprint(options))


def disk_key(key: Tuple) -> str:
    """Filename-safe digest of a program key for the on-disk tier.

    Hashes the format version and code-version salt along with the program
    key, so entries written by an incompatible build live under different
    names — version mismatch normally manifests as a plain miss, and the
    header check below is the defence in depth for hand-edited or
    hash-colliding files.
    """
    material = repr((DISK_FORMAT_VERSION, CACHE_CODE_VERSION, key))
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


class ProgramCache:
    """Compile-once cache of linked machine programs.

    ``cache_dir`` (optional) enables the persistent on-disk tier shared
    between processes; the directory is created on first write.
    """

    def __init__(self, cache_dir: Optional[str] = None) -> None:
        self._programs: Dict[Tuple, MachineProgram] = {}
        self._snapshots: Dict[Tuple, bytes] = {}
        self._lock = threading.Lock()
        self.cache_dir = None if cache_dir is None else os.fspath(cache_dir)
        self.stats = CacheStats()

    # ------------------------------------------------------------------ #
    def get(self, source: str, options: Optional[CompileOptions] = None) -> MachineProgram:
        """The shared, pristine compiled program for (source, options).

        Callers must treat the result as read-only; use :meth:`get_mutable`
        for a program that will be transformed in place.
        """
        options = options or CompileOptions()
        key = program_key(source, options)
        hub = get_telemetry()
        with self._lock:
            program = self._programs.get(key)
            if program is not None:
                self.stats.hits += 1
                if hub.enabled:
                    hub.add("cache.memory_hits")
                return program
            self.stats.misses += 1

        if self.cache_dir is not None:
            program = self._disk_load(key)
            if program is not None:
                with self._lock:
                    self.stats.disk_hits += 1
                if hub.enabled:
                    hub.add("cache.disk_hits")
                with self._lock:
                    return self._programs.setdefault(key, program)
            with self._lock:
                self.stats.disk_misses += 1

        if hub.enabled:
            hub.add("cache.compiles")

        program = compile_source(source, options)
        if self.cache_dir is not None:
            self._disk_store(key, program)
        with self._lock:
            # A concurrent thread may have compiled the same key; keep the
            # first instance so shared references stay consistent.
            return self._programs.setdefault(key, program)

    def get_mutable(self, source: str,
                    options: Optional[CompileOptions] = None) -> MachineProgram:
        """A private copy of the cached program, safe to transform in place.

        Materialised with ``pickle.loads`` from a per-key ``pickle.dumps``
        snapshot taken once (cached instances are pristine and never mutated,
        so the snapshot can never go stale).
        """
        options = options or CompileOptions()
        program = self.get(source, options)
        key = program_key(source, options)
        with self._lock:
            snapshot = self._snapshots.get(key)
        if snapshot is None:
            snapshot = pickle.dumps(program, protocol=_PICKLE_PROTOCOL)
            with self._lock:
                snapshot = self._snapshots.setdefault(key, snapshot)
        return pickle.loads(snapshot)

    # ------------------------------------------------------------------ #
    # Disk tier
    # ------------------------------------------------------------------ #
    def _disk_path(self, key: Tuple) -> str:
        name = disk_key(key)
        return os.path.join(self.cache_dir, name[:2], name + ".pkl")

    def _disk_load(self, key: Tuple) -> Optional[MachineProgram]:
        path = self._disk_path(key)
        try:
            with open(path, "rb") as handle:
                entry = pickle.load(handle)
        except (FileNotFoundError, NotADirectoryError):
            return None  # no entry yet — a plain miss, not corruption
        except Exception as exc:  # corrupt, truncated, unreadable, …
            warnings.warn(
                f"rejecting unreadable program-cache entry {path}: {exc!r}; "
                f"recompiling", CacheIntegrityWarning, stacklevel=3)
            return None
        if (not isinstance(entry, dict)
                or entry.get("format") != DISK_FORMAT_VERSION
                or entry.get("code_version") != CACHE_CODE_VERSION
                or entry.get("key") != key
                or not isinstance(entry.get("program"), MachineProgram)):
            warnings.warn(
                f"rejecting stale or mismatched program-cache entry {path} "
                f"(format={entry.get('format') if isinstance(entry, dict) else '?'}, "
                f"code_version={entry.get('code_version') if isinstance(entry, dict) else '?'}); "
                f"recompiling", CacheIntegrityWarning, stacklevel=3)
            return None
        return entry["program"]

    def _disk_store(self, key: Tuple, program: MachineProgram) -> None:
        path = self._disk_path(key)
        directory = os.path.dirname(path)
        entry = {
            "format": DISK_FORMAT_VERSION,
            "code_version": CACHE_CODE_VERSION,
            "key": key,
            "program": program,
        }
        try:
            os.makedirs(directory, exist_ok=True)
            # Same-directory temp file + os.replace: atomic on POSIX, so a
            # concurrent reader sees either the old or the new complete
            # entry, never a torn write.  Concurrent writers produce
            # identical content; last replace wins.
            fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(entry, handle, protocol=_PICKLE_PROTOCOL)
                os.replace(tmp_path, path)
            except BaseException:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
                raise
        except OSError as exc:
            # A read-only or full cache directory degrades to memory-only.
            warnings.warn(
                f"could not persist program-cache entry {path}: {exc!r}",
                CacheIntegrityWarning, stacklevel=3)

    # ------------------------------------------------------------------ #
    def get_benchmark(self, name: str, opt_level: str = "O2") -> MachineProgram:
        """Shared pristine program for a registered BEEBS benchmark."""
        benchmark = get_benchmark(name)
        options = CompileOptions.for_level(opt_level, program_name=benchmark.name)
        return self.get(benchmark.source, options)

    def get_benchmark_mutable(self, name: str, opt_level: str = "O2") -> MachineProgram:
        """Private mutable copy of a registered BEEBS benchmark's program."""
        benchmark = get_benchmark(name)
        options = CompileOptions.for_level(opt_level, program_name=benchmark.name)
        return self.get_mutable(benchmark.source, options)

    # ------------------------------------------------------------------ #
    def clear(self) -> None:
        with self._lock:
            self._programs.clear()
            self._snapshots.clear()
            self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._programs)


_DEFAULT_CACHE: Optional[ProgramCache] = None
_DEFAULT_CACHE_LOCK = threading.Lock()


def default_cache() -> ProgramCache:
    """The process-wide program cache shared by the default engine."""
    global _DEFAULT_CACHE
    if _DEFAULT_CACHE is None:
        with _DEFAULT_CACHE_LOCK:
            if _DEFAULT_CACHE is None:
                _DEFAULT_CACHE = ProgramCache()
    return _DEFAULT_CACHE
