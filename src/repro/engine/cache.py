"""Content-addressed program cache: each program is compiled exactly once.

The paper's evaluation is a grid of compile→optimize→simulate experiments, and
the seed harness recompiled the same (benchmark, opt level) pair from source
for every figure that touched it — twice per optimized run alone.  The cache
keys compiled :class:`~repro.machine.program.MachineProgram` objects by the
SHA-256 of the source text plus a fingerprint of every
:class:`~repro.codegen.CompileOptions` field, so

* identical experiments share one compile per process,
* any option change (opt level, entry, linking, stack reserve, …) is a
  different key — there is no way to get a stale program back.

Cached instances are pristine and shared; callers that mutate programs (the
flash-RAM placement transformation rewrites blocks in place) take a
``deepcopy`` via :meth:`ProgramCache.get_mutable`.  Copying is cheap relative
to a compile and is kept correct by the value-type ``__deepcopy__`` hooks in
:mod:`repro.isa` (register identity) and the decode-cache reset in
:class:`~repro.machine.blocks.MachineBlock`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import threading
from copy import deepcopy
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.beebs import get_benchmark
from repro.codegen import CompileOptions, compile_source
from repro.machine.program import MachineProgram


@dataclass
class CacheStats:
    """Counters for cache behaviour; ``compiles`` is the number of misses."""

    hits: int = 0
    misses: int = 0

    @property
    def compiles(self) -> int:
        return self.misses

    @property
    def total(self) -> int:
        return self.hits + self.misses


def options_fingerprint(options: CompileOptions) -> Tuple:
    """A hashable, order-stable digest of every compile option.

    Derived from the dataclass fields so that options added to
    :class:`CompileOptions` later automatically become part of the cache key —
    two option sets that differ in any field can never alias.
    """
    return tuple(
        (f.name, str(getattr(options, f.name)))
        for f in dataclasses.fields(options)
    )


def program_key(source: str, options: CompileOptions) -> Tuple:
    """Content-addressed cache key for (source, options)."""
    digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
    return (digest, options_fingerprint(options))


class ProgramCache:
    """Compile-once cache of linked machine programs."""

    def __init__(self) -> None:
        self._programs: Dict[Tuple, MachineProgram] = {}
        self._lock = threading.Lock()
        self.stats = CacheStats()

    # ------------------------------------------------------------------ #
    def get(self, source: str, options: Optional[CompileOptions] = None) -> MachineProgram:
        """The shared, pristine compiled program for (source, options).

        Callers must treat the result as read-only; use :meth:`get_mutable`
        for a program that will be transformed in place.
        """
        options = options or CompileOptions()
        key = program_key(source, options)
        with self._lock:
            program = self._programs.get(key)
            if program is not None:
                self.stats.hits += 1
                return program
            self.stats.misses += 1
        program = compile_source(source, options)
        with self._lock:
            # A concurrent thread may have compiled the same key; keep the
            # first instance so shared references stay consistent.
            return self._programs.setdefault(key, program)

    def get_mutable(self, source: str,
                    options: Optional[CompileOptions] = None) -> MachineProgram:
        """A private deep copy of the cached program, safe to transform."""
        return deepcopy(self.get(source, options))

    # ------------------------------------------------------------------ #
    def get_benchmark(self, name: str, opt_level: str = "O2") -> MachineProgram:
        """Shared pristine program for a registered BEEBS benchmark."""
        benchmark = get_benchmark(name)
        options = CompileOptions.for_level(opt_level, program_name=benchmark.name)
        return self.get(benchmark.source, options)

    def get_benchmark_mutable(self, name: str, opt_level: str = "O2") -> MachineProgram:
        """Private mutable copy of a registered BEEBS benchmark's program."""
        benchmark = get_benchmark(name)
        options = CompileOptions.for_level(opt_level, program_name=benchmark.name)
        return self.get_mutable(benchmark.source, options)

    # ------------------------------------------------------------------ #
    def clear(self) -> None:
        with self._lock:
            self._programs.clear()
            self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._programs)


_DEFAULT_CACHE: Optional[ProgramCache] = None
_DEFAULT_CACHE_LOCK = threading.Lock()


def default_cache() -> ProgramCache:
    """The process-wide program cache shared by the default engine."""
    global _DEFAULT_CACHE
    if _DEFAULT_CACHE is None:
        with _DEFAULT_CACHE_LOCK:
            if _DEFAULT_CACHE is None:
                _DEFAULT_CACHE = ProgramCache()
    return _DEFAULT_CACHE
