"""Hand-written lexer for the mini-C dialect."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional


class LexerError(Exception):
    """Raised on malformed input (bad character, unterminated comment...)."""

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"{line}:{column}: {message}")
        self.line = line
        self.column = column


class TokenKind(Enum):
    # Literals and identifiers
    INT_LIT = "int_lit"
    FLOAT_LIT = "float_lit"
    IDENT = "ident"

    # Keywords
    KW_INT = "int"
    KW_UNSIGNED = "unsigned"
    KW_FLOAT = "float"
    KW_VOID = "void"
    KW_CONST = "const"
    KW_IF = "if"
    KW_ELSE = "else"
    KW_WHILE = "while"
    KW_DO = "do"
    KW_FOR = "for"
    KW_RETURN = "return"
    KW_BREAK = "break"
    KW_CONTINUE = "continue"

    # Punctuation / operators
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    SEMI = ";"
    COMMA = ","
    QUESTION = "?"
    COLON = ":"

    ASSIGN = "="
    PLUS_ASSIGN = "+="
    MINUS_ASSIGN = "-="
    STAR_ASSIGN = "*="
    SLASH_ASSIGN = "/="
    PERCENT_ASSIGN = "%="
    AMP_ASSIGN = "&="
    PIPE_ASSIGN = "|="
    CARET_ASSIGN = "^="
    SHL_ASSIGN = "<<="
    SHR_ASSIGN = ">>="

    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    AMP = "&"
    PIPE = "|"
    CARET = "^"
    TILDE = "~"
    BANG = "!"
    SHL = "<<"
    SHR = ">>"
    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="
    EQ = "=="
    NE = "!="
    AND_AND = "&&"
    OR_OR = "||"
    PLUS_PLUS = "++"
    MINUS_MINUS = "--"

    EOF = "eof"


_KEYWORDS = {
    "int": TokenKind.KW_INT,
    "unsigned": TokenKind.KW_UNSIGNED,
    "float": TokenKind.KW_FLOAT,
    "void": TokenKind.KW_VOID,
    "const": TokenKind.KW_CONST,
    "if": TokenKind.KW_IF,
    "else": TokenKind.KW_ELSE,
    "while": TokenKind.KW_WHILE,
    "do": TokenKind.KW_DO,
    "for": TokenKind.KW_FOR,
    "return": TokenKind.KW_RETURN,
    "break": TokenKind.KW_BREAK,
    "continue": TokenKind.KW_CONTINUE,
}

# Multi-character operators, longest first so maximal munch works.
_OPERATORS = [
    ("<<=", TokenKind.SHL_ASSIGN),
    (">>=", TokenKind.SHR_ASSIGN),
    ("<<", TokenKind.SHL),
    (">>", TokenKind.SHR),
    ("<=", TokenKind.LE),
    (">=", TokenKind.GE),
    ("==", TokenKind.EQ),
    ("!=", TokenKind.NE),
    ("&&", TokenKind.AND_AND),
    ("||", TokenKind.OR_OR),
    ("++", TokenKind.PLUS_PLUS),
    ("--", TokenKind.MINUS_MINUS),
    ("+=", TokenKind.PLUS_ASSIGN),
    ("-=", TokenKind.MINUS_ASSIGN),
    ("*=", TokenKind.STAR_ASSIGN),
    ("/=", TokenKind.SLASH_ASSIGN),
    ("%=", TokenKind.PERCENT_ASSIGN),
    ("&=", TokenKind.AMP_ASSIGN),
    ("|=", TokenKind.PIPE_ASSIGN),
    ("^=", TokenKind.CARET_ASSIGN),
    ("(", TokenKind.LPAREN),
    (")", TokenKind.RPAREN),
    ("{", TokenKind.LBRACE),
    ("}", TokenKind.RBRACE),
    ("[", TokenKind.LBRACKET),
    ("]", TokenKind.RBRACKET),
    (";", TokenKind.SEMI),
    (",", TokenKind.COMMA),
    ("?", TokenKind.QUESTION),
    (":", TokenKind.COLON),
    ("=", TokenKind.ASSIGN),
    ("+", TokenKind.PLUS),
    ("-", TokenKind.MINUS),
    ("*", TokenKind.STAR),
    ("/", TokenKind.SLASH),
    ("%", TokenKind.PERCENT),
    ("&", TokenKind.AMP),
    ("|", TokenKind.PIPE),
    ("^", TokenKind.CARET),
    ("~", TokenKind.TILDE),
    ("!", TokenKind.BANG),
    ("<", TokenKind.LT),
    (">", TokenKind.GT),
]


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int
    int_value: Optional[int] = None
    float_value: Optional[float] = None

    def __repr__(self) -> str:
        return f"Token({self.kind.name}, {self.text!r}, {self.line}:{self.column})"


class Lexer:
    """Convert source text into a flat token list."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    # ------------------------------------------------------------------ #
    def tokenize(self) -> List[Token]:
        tokens: List[Token] = []
        while True:
            self._skip_whitespace_and_comments()
            if self.pos >= len(self.source):
                tokens.append(Token(TokenKind.EOF, "", self.line, self.column))
                return tokens
            tokens.append(self._next_token())

    # ------------------------------------------------------------------ #
    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.source[index] if index < len(self.source) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.source):
                if self.source[self.pos] == "\n":
                    self.line += 1
                    self.column = 1
                else:
                    self.column += 1
                self.pos += 1

    def _skip_whitespace_and_comments(self) -> None:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start_line, start_col = self.line, self.column
                self._advance(2)
                while not (self._peek() == "*" and self._peek(1) == "/"):
                    if self.pos >= len(self.source):
                        raise LexerError("unterminated block comment", start_line, start_col)
                    self._advance()
                self._advance(2)
            else:
                return

    def _next_token(self) -> Token:
        line, column = self.line, self.column
        ch = self._peek()

        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            return self._lex_number(line, column)
        if ch.isalpha() or ch == "_":
            return self._lex_ident(line, column)

        for text, kind in _OPERATORS:
            if self.source.startswith(text, self.pos):
                self._advance(len(text))
                return Token(kind, text, line, column)

        raise LexerError(f"unexpected character {ch!r}", line, column)

    def _lex_number(self, line: int, column: int) -> Token:
        start = self.pos
        is_hex = False
        if self._peek() == "0" and self._peek(1) in ("x", "X"):
            is_hex = True
            self._advance(2)
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                self._advance()
            text = self.source[start:self.pos]
            return Token(TokenKind.INT_LIT, text, line, column, int_value=int(text, 16))

        is_float = False
        while self._peek().isdigit():
            self._advance()
        if self._peek() == ".":
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in ("e", "E") and (
            self._peek(1).isdigit()
            or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            is_float = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in ("f", "F") and is_float:
            self._advance()
            text = self.source[start:self.pos - 1]
        else:
            text = self.source[start:self.pos]
        # Unsigned suffix.
        if self._peek() in ("u", "U") and not is_float:
            self._advance()

        if is_float:
            return Token(TokenKind.FLOAT_LIT, text, line, column, float_value=float(text))
        return Token(TokenKind.INT_LIT, text, line, column, int_value=int(text, 10))

    def _lex_ident(self, line: int, column: int) -> Token:
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.source[start:self.pos]
        kind = _KEYWORDS.get(text, TokenKind.IDENT)
        return Token(kind, text, line, column)


def tokenize(source: str) -> List[Token]:
    """Tokenize *source* and return the token list (including EOF)."""
    return Lexer(source).tokenize()
