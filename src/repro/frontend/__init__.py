"""Mini-C frontend: lexer, parser, AST and semantic analysis.

The dialect is a small C subset sufficient to express the BEEBS-style
benchmark kernels used by the paper's evaluation:

* types: ``int`` (32-bit signed), ``unsigned`` (32-bit unsigned), ``float``
  (IEEE-754 single, lowered to soft-float library calls), ``void``,
  one-dimensional arrays of the scalar types;
* globals (optionally ``const``, optionally initialised with a scalar or a
  brace initialiser), functions with up to four scalar/array parameters;
* statements: blocks, declarations, ``if``/``else``, ``while``, ``for``,
  ``return``, expression statements;
* expressions: the usual C operator set with C precedence, short-circuit
  ``&&``/``||``, array indexing, calls, postfix/prefix ``++``/``--`` and
  compound assignment.
"""

from repro.frontend.lexer import Lexer, Token, TokenKind, LexerError
from repro.frontend.parser import Parser, ParseError, parse_program
from repro.frontend.sema import SemanticAnalyzer, SemanticError, analyze
from repro.frontend import ast

__all__ = [
    "Lexer",
    "Token",
    "TokenKind",
    "LexerError",
    "Parser",
    "ParseError",
    "parse_program",
    "SemanticAnalyzer",
    "SemanticError",
    "analyze",
    "ast",
]
