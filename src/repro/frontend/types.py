"""Type system for the mini-C dialect.

Only a handful of types exist: the 32-bit scalars ``int``, ``unsigned`` and
``float`` (always stored in a 32-bit word), ``void`` for functions, and
one-dimensional arrays of the scalars.  Array-typed parameters decay to
"array references" (a base address), mirroring C pointer decay without
exposing general pointer arithmetic in the language.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class Type:
    """Base marker class for types."""

    def is_scalar(self) -> bool:
        return False

    def is_array(self) -> bool:
        return False


@dataclass(frozen=True)
class IntType(Type):
    signed: bool = True

    def is_scalar(self) -> bool:
        return True

    def __str__(self) -> str:
        return "int" if self.signed else "unsigned"


@dataclass(frozen=True)
class FloatType(Type):
    def is_scalar(self) -> bool:
        return True

    def __str__(self) -> str:
        return "float"


@dataclass(frozen=True)
class VoidType(Type):
    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class ArrayType(Type):
    element: Type
    length: Optional[int] = None  # None for array parameters (unsized)

    def is_array(self) -> bool:
        return True

    def __str__(self) -> str:
        size = self.length if self.length is not None else ""
        return f"{self.element}[{size}]"


INT = IntType(signed=True)
UINT = IntType(signed=False)
FLOAT = FloatType()
VOID = VoidType()

#: Size in bytes of every scalar type (everything is one machine word).
WORD_SIZE = 4


def sizeof(ty: Type) -> int:
    """Byte size of a type; arrays must be sized."""
    if isinstance(ty, ArrayType):
        if ty.length is None:
            raise ValueError("cannot take the size of an unsized array")
        return ty.length * sizeof(ty.element)
    if isinstance(ty, VoidType):
        raise ValueError("void has no size")
    return WORD_SIZE


def is_integer(ty: Type) -> bool:
    return isinstance(ty, IntType)


def is_float(ty: Type) -> bool:
    return isinstance(ty, FloatType)


def common_type(lhs: Type, rhs: Type) -> Type:
    """Usual arithmetic conversions for the three scalar types."""
    if is_float(lhs) or is_float(rhs):
        return FLOAT
    if isinstance(lhs, IntType) and isinstance(rhs, IntType):
        if not lhs.signed or not rhs.signed:
            return UINT
        return INT
    raise TypeError(f"no common type for {lhs} and {rhs}")
