"""Abstract syntax tree node definitions for the mini-C dialect.

Expression nodes carry a ``ty`` attribute that the semantic analyzer fills in;
it is ``None`` straight out of the parser.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.frontend.types import Type


@dataclass
class Node:
    """Base class for all AST nodes; records the source line for diagnostics."""

    line: int = 0


# --------------------------------------------------------------------------- #
# Expressions
# --------------------------------------------------------------------------- #
@dataclass
class Expr(Node):
    ty: Optional[Type] = None


@dataclass
class IntLiteral(Expr):
    value: int = 0


@dataclass
class FloatLiteral(Expr):
    value: float = 0.0


@dataclass
class VarRef(Expr):
    name: str = ""


@dataclass
class Index(Expr):
    """Array subscript ``base[index]``."""

    base: Optional[Expr] = None
    index: Optional[Expr] = None


@dataclass
class BinaryOp(Expr):
    op: str = ""
    lhs: Optional[Expr] = None
    rhs: Optional[Expr] = None


@dataclass
class UnaryOp(Expr):
    op: str = ""
    operand: Optional[Expr] = None


@dataclass
class Conditional(Expr):
    """C ternary ``cond ? then : otherwise``."""

    cond: Optional[Expr] = None
    then: Optional[Expr] = None
    otherwise: Optional[Expr] = None


@dataclass
class Call(Expr):
    callee: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class Assign(Expr):
    """Simple or compound assignment; ``op`` is '' for plain ``=``."""

    target: Optional[Expr] = None
    value: Optional[Expr] = None
    op: str = ""


@dataclass
class IncDec(Expr):
    """Prefix or postfix increment/decrement of an lvalue."""

    target: Optional[Expr] = None
    op: str = "++"
    prefix: bool = False


@dataclass
class Convert(Expr):
    """Implicit conversion node inserted by the semantic analyzer."""

    value: Optional[Expr] = None


# --------------------------------------------------------------------------- #
# Statements
# --------------------------------------------------------------------------- #
@dataclass
class Stmt(Node):
    pass


@dataclass
class Block(Stmt):
    statements: List[Stmt] = field(default_factory=list)


@dataclass
class VarDecl(Stmt):
    name: str = ""
    ty: Optional[Type] = None
    init: Optional[Expr] = None
    array_init: Optional[List[Expr]] = None


@dataclass
class DeclGroup(Stmt):
    """Several declarations from one statement (``int a = 1, b = 2;``).

    Unlike a :class:`Block`, a declaration group does not open a new scope.
    """

    declarations: List["VarDecl"] = field(default_factory=list)


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None


@dataclass
class If(Stmt):
    cond: Optional[Expr] = None
    then: Optional[Stmt] = None
    otherwise: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class DoWhile(Stmt):
    body: Optional[Stmt] = None
    cond: Optional[Expr] = None


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# --------------------------------------------------------------------------- #
# Top level
# --------------------------------------------------------------------------- #
@dataclass
class Param(Node):
    name: str = ""
    ty: Optional[Type] = None


@dataclass
class FuncDef(Node):
    name: str = ""
    return_type: Optional[Type] = None
    params: List[Param] = field(default_factory=list)
    body: Optional[Block] = None


@dataclass
class GlobalVar(Node):
    name: str = ""
    ty: Optional[Type] = None
    const: bool = False
    init: Optional[Expr] = None
    array_init: Optional[List[Expr]] = None


@dataclass
class Program(Node):
    globals: List[GlobalVar] = field(default_factory=list)
    functions: List[FuncDef] = field(default_factory=list)
