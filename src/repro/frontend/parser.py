"""Recursive-descent parser for the mini-C dialect."""

from __future__ import annotations

from typing import List, Optional

from repro.frontend import ast
from repro.frontend.lexer import Lexer, Token, TokenKind
from repro.frontend.types import ArrayType, FLOAT, INT, Type, UINT, VOID


class ParseError(Exception):
    """Raised on a syntax error, with source position information."""

    def __init__(self, message: str, token: Token):
        super().__init__(f"{token.line}:{token.column}: {message} (got {token.text!r})")
        self.token = token


_TYPE_TOKENS = {
    TokenKind.KW_INT: INT,
    TokenKind.KW_UNSIGNED: UINT,
    TokenKind.KW_FLOAT: FLOAT,
    TokenKind.KW_VOID: VOID,
}

_COMPOUND_ASSIGN = {
    TokenKind.PLUS_ASSIGN: "+",
    TokenKind.MINUS_ASSIGN: "-",
    TokenKind.STAR_ASSIGN: "*",
    TokenKind.SLASH_ASSIGN: "/",
    TokenKind.PERCENT_ASSIGN: "%",
    TokenKind.AMP_ASSIGN: "&",
    TokenKind.PIPE_ASSIGN: "|",
    TokenKind.CARET_ASSIGN: "^",
    TokenKind.SHL_ASSIGN: "<<",
    TokenKind.SHR_ASSIGN: ">>",
}

# Binary operator precedence table (larger binds tighter), C-compatible.
_BINARY_PRECEDENCE = [
    [(TokenKind.OR_OR, "||")],
    [(TokenKind.AND_AND, "&&")],
    [(TokenKind.PIPE, "|")],
    [(TokenKind.CARET, "^")],
    [(TokenKind.AMP, "&")],
    [(TokenKind.EQ, "=="), (TokenKind.NE, "!=")],
    [(TokenKind.LT, "<"), (TokenKind.GT, ">"), (TokenKind.LE, "<="), (TokenKind.GE, ">=")],
    [(TokenKind.SHL, "<<"), (TokenKind.SHR, ">>")],
    [(TokenKind.PLUS, "+"), (TokenKind.MINUS, "-")],
    [(TokenKind.STAR, "*"), (TokenKind.SLASH, "/"), (TokenKind.PERCENT, "%")],
]


class Parser:
    """Parse a token stream into an :class:`repro.frontend.ast.Program`."""

    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------------ #
    # Token helpers
    # ------------------------------------------------------------------ #
    def _peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _at(self, kind: TokenKind) -> bool:
        return self._peek().kind is kind

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def _expect(self, kind: TokenKind, what: str = "") -> Token:
        token = self._peek()
        if token.kind is not kind:
            expected = what or kind.value
            raise ParseError(f"expected {expected}", token)
        return self._advance()

    def _accept(self, kind: TokenKind) -> Optional[Token]:
        if self._at(kind):
            return self._advance()
        return None

    # ------------------------------------------------------------------ #
    # Top level
    # ------------------------------------------------------------------ #
    def parse_program(self) -> ast.Program:
        program = ast.Program(line=1)
        while not self._at(TokenKind.EOF):
            self._parse_top_level(program)
        return program

    def _parse_top_level(self, program: ast.Program) -> None:
        const = self._accept(TokenKind.KW_CONST) is not None
        ty = self._parse_type()
        name_token = self._expect(TokenKind.IDENT, "identifier")
        if self._at(TokenKind.LPAREN):
            if const:
                raise ParseError("functions cannot be declared const", name_token)
            program.functions.append(self._parse_function(ty, name_token))
        else:
            program.globals.append(self._parse_global(ty, name_token, const))

    def _parse_type(self) -> Type:
        token = self._peek()
        if token.kind in _TYPE_TOKENS:
            self._advance()
            return _TYPE_TOKENS[token.kind]
        raise ParseError("expected a type", token)

    def _parse_global(self, ty: Type, name_token: Token, const: bool) -> ast.GlobalVar:
        decl = ast.GlobalVar(line=name_token.line, name=name_token.text, ty=ty, const=const)
        if self._accept(TokenKind.LBRACKET):
            length_token = self._expect(TokenKind.INT_LIT, "array length")
            self._expect(TokenKind.RBRACKET)
            decl.ty = ArrayType(ty, length_token.int_value)
        if self._accept(TokenKind.ASSIGN):
            if self._at(TokenKind.LBRACE):
                decl.array_init = self._parse_brace_initializer()
            else:
                decl.init = self.parse_expression()
        self._expect(TokenKind.SEMI)
        return decl

    def _parse_brace_initializer(self) -> List[ast.Expr]:
        self._expect(TokenKind.LBRACE)
        values: List[ast.Expr] = []
        if not self._at(TokenKind.RBRACE):
            values.append(self.parse_expression())
            while self._accept(TokenKind.COMMA):
                if self._at(TokenKind.RBRACE):
                    break
                values.append(self.parse_expression())
        self._expect(TokenKind.RBRACE)
        return values

    def _parse_function(self, return_type: Type, name_token: Token) -> ast.FuncDef:
        func = ast.FuncDef(line=name_token.line, name=name_token.text,
                           return_type=return_type)
        self._expect(TokenKind.LPAREN)
        if not self._at(TokenKind.RPAREN):
            if self._at(TokenKind.KW_VOID) and self._peek(1).kind is TokenKind.RPAREN:
                self._advance()
            else:
                func.params.append(self._parse_param())
                while self._accept(TokenKind.COMMA):
                    func.params.append(self._parse_param())
        self._expect(TokenKind.RPAREN)
        func.body = self._parse_block()
        return func

    def _parse_param(self) -> ast.Param:
        ty = self._parse_type()
        name_token = self._expect(TokenKind.IDENT, "parameter name")
        if self._accept(TokenKind.LBRACKET):
            length = None
            if self._at(TokenKind.INT_LIT):
                length = self._advance().int_value
            self._expect(TokenKind.RBRACKET)
            ty = ArrayType(ty, length)
        return ast.Param(line=name_token.line, name=name_token.text, ty=ty)

    # ------------------------------------------------------------------ #
    # Statements
    # ------------------------------------------------------------------ #
    def _parse_block(self) -> ast.Block:
        brace = self._expect(TokenKind.LBRACE)
        block = ast.Block(line=brace.line)
        while not self._at(TokenKind.RBRACE):
            block.statements.append(self._parse_statement())
        self._expect(TokenKind.RBRACE)
        return block

    def _parse_statement(self) -> ast.Stmt:
        token = self._peek()
        kind = token.kind
        if kind is TokenKind.LBRACE:
            return self._parse_block()
        if kind in (TokenKind.KW_INT, TokenKind.KW_UNSIGNED, TokenKind.KW_FLOAT,
                    TokenKind.KW_CONST):
            return self._parse_local_decl()
        if kind is TokenKind.KW_IF:
            return self._parse_if()
        if kind is TokenKind.KW_WHILE:
            return self._parse_while()
        if kind is TokenKind.KW_DO:
            return self._parse_do_while()
        if kind is TokenKind.KW_FOR:
            return self._parse_for()
        if kind is TokenKind.KW_RETURN:
            return self._parse_return()
        if kind is TokenKind.KW_BREAK:
            self._advance()
            self._expect(TokenKind.SEMI)
            return ast.Break(line=token.line)
        if kind is TokenKind.KW_CONTINUE:
            self._advance()
            self._expect(TokenKind.SEMI)
            return ast.Continue(line=token.line)
        if kind is TokenKind.SEMI:
            self._advance()
            return ast.Block(line=token.line)
        expr = self.parse_expression()
        self._expect(TokenKind.SEMI)
        return ast.ExprStmt(line=token.line, expr=expr)

    def _parse_local_decl(self) -> ast.Stmt:
        self._accept(TokenKind.KW_CONST)
        ty = self._parse_type()
        first = self._parse_single_declarator(ty)
        decls: List[ast.Stmt] = [first]
        while self._accept(TokenKind.COMMA):
            decls.append(self._parse_single_declarator(ty))
        self._expect(TokenKind.SEMI)
        if len(decls) == 1:
            return decls[0]
        # A multi-declarator statement shares the enclosing scope, so it must
        # not be wrapped in a Block (which would open a new scope).
        return ast.DeclGroup(line=first.line, declarations=decls)

    def _parse_single_declarator(self, base: Type) -> ast.VarDecl:
        name_token = self._expect(TokenKind.IDENT, "variable name")
        decl = ast.VarDecl(line=name_token.line, name=name_token.text, ty=base)
        if self._accept(TokenKind.LBRACKET):
            length_token = self._expect(TokenKind.INT_LIT, "array length")
            self._expect(TokenKind.RBRACKET)
            decl.ty = ArrayType(base, length_token.int_value)
        if self._accept(TokenKind.ASSIGN):
            if self._at(TokenKind.LBRACE):
                decl.array_init = self._parse_brace_initializer()
            else:
                decl.init = self.parse_expression()
        return decl

    def _parse_if(self) -> ast.If:
        token = self._expect(TokenKind.KW_IF)
        self._expect(TokenKind.LPAREN)
        cond = self.parse_expression()
        self._expect(TokenKind.RPAREN)
        then = self._parse_statement()
        otherwise = None
        if self._accept(TokenKind.KW_ELSE):
            otherwise = self._parse_statement()
        return ast.If(line=token.line, cond=cond, then=then, otherwise=otherwise)

    def _parse_while(self) -> ast.While:
        token = self._expect(TokenKind.KW_WHILE)
        self._expect(TokenKind.LPAREN)
        cond = self.parse_expression()
        self._expect(TokenKind.RPAREN)
        body = self._parse_statement()
        return ast.While(line=token.line, cond=cond, body=body)

    def _parse_do_while(self) -> ast.DoWhile:
        token = self._expect(TokenKind.KW_DO)
        body = self._parse_statement()
        self._expect(TokenKind.KW_WHILE)
        self._expect(TokenKind.LPAREN)
        cond = self.parse_expression()
        self._expect(TokenKind.RPAREN)
        self._expect(TokenKind.SEMI)
        return ast.DoWhile(line=token.line, body=body, cond=cond)

    def _parse_for(self) -> ast.For:
        token = self._expect(TokenKind.KW_FOR)
        self._expect(TokenKind.LPAREN)
        init: Optional[ast.Stmt] = None
        if not self._at(TokenKind.SEMI):
            if self._peek().kind in (TokenKind.KW_INT, TokenKind.KW_UNSIGNED,
                                     TokenKind.KW_FLOAT):
                ty = self._parse_type()
                init = self._parse_single_declarator(ty)
                self._expect(TokenKind.SEMI)
            else:
                init = ast.ExprStmt(line=token.line, expr=self.parse_expression())
                self._expect(TokenKind.SEMI)
        else:
            self._expect(TokenKind.SEMI)
        cond = None
        if not self._at(TokenKind.SEMI):
            cond = self.parse_expression()
        self._expect(TokenKind.SEMI)
        step = None
        if not self._at(TokenKind.RPAREN):
            step = self.parse_expression()
        self._expect(TokenKind.RPAREN)
        body = self._parse_statement()
        return ast.For(line=token.line, init=init, cond=cond, step=step, body=body)

    def _parse_return(self) -> ast.Return:
        token = self._expect(TokenKind.KW_RETURN)
        value = None
        if not self._at(TokenKind.SEMI):
            value = self.parse_expression()
        self._expect(TokenKind.SEMI)
        return ast.Return(line=token.line, value=value)

    # ------------------------------------------------------------------ #
    # Expressions
    # ------------------------------------------------------------------ #
    def parse_expression(self) -> ast.Expr:
        return self._parse_assignment()

    def _parse_assignment(self) -> ast.Expr:
        expr = self._parse_conditional()
        token = self._peek()
        if token.kind is TokenKind.ASSIGN:
            self._advance()
            value = self._parse_assignment()
            return ast.Assign(line=token.line, target=expr, value=value, op="")
        if token.kind in _COMPOUND_ASSIGN:
            self._advance()
            value = self._parse_assignment()
            return ast.Assign(line=token.line, target=expr, value=value,
                              op=_COMPOUND_ASSIGN[token.kind])
        return expr

    def _parse_conditional(self) -> ast.Expr:
        cond = self._parse_binary(0)
        if self._at(TokenKind.QUESTION):
            token = self._advance()
            then = self.parse_expression()
            self._expect(TokenKind.COLON)
            otherwise = self._parse_conditional()
            return ast.Conditional(line=token.line, cond=cond, then=then,
                                   otherwise=otherwise)
        return cond

    def _parse_binary(self, level: int) -> ast.Expr:
        if level >= len(_BINARY_PRECEDENCE):
            return self._parse_unary()
        expr = self._parse_binary(level + 1)
        while True:
            token = self._peek()
            matched = None
            for kind, op in _BINARY_PRECEDENCE[level]:
                if token.kind is kind:
                    matched = op
                    break
            if matched is None:
                return expr
            self._advance()
            rhs = self._parse_binary(level + 1)
            expr = ast.BinaryOp(line=token.line, op=matched, lhs=expr, rhs=rhs)

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        if token.kind is TokenKind.MINUS:
            self._advance()
            return ast.UnaryOp(line=token.line, op="-", operand=self._parse_unary())
        if token.kind is TokenKind.PLUS:
            self._advance()
            return self._parse_unary()
        if token.kind is TokenKind.BANG:
            self._advance()
            return ast.UnaryOp(line=token.line, op="!", operand=self._parse_unary())
        if token.kind is TokenKind.TILDE:
            self._advance()
            return ast.UnaryOp(line=token.line, op="~", operand=self._parse_unary())
        if token.kind is TokenKind.PLUS_PLUS:
            self._advance()
            return ast.IncDec(line=token.line, target=self._parse_unary(), op="++",
                              prefix=True)
        if token.kind is TokenKind.MINUS_MINUS:
            self._advance()
            return ast.IncDec(line=token.line, target=self._parse_unary(), op="--",
                              prefix=True)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            token = self._peek()
            if token.kind is TokenKind.LBRACKET:
                self._advance()
                index = self.parse_expression()
                self._expect(TokenKind.RBRACKET)
                expr = ast.Index(line=token.line, base=expr, index=index)
            elif token.kind is TokenKind.PLUS_PLUS:
                self._advance()
                expr = ast.IncDec(line=token.line, target=expr, op="++", prefix=False)
            elif token.kind is TokenKind.MINUS_MINUS:
                self._advance()
                expr = ast.IncDec(line=token.line, target=expr, op="--", prefix=False)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.kind is TokenKind.INT_LIT:
            self._advance()
            return ast.IntLiteral(line=token.line, value=token.int_value or 0)
        if token.kind is TokenKind.FLOAT_LIT:
            self._advance()
            return ast.FloatLiteral(line=token.line, value=token.float_value or 0.0)
        if token.kind is TokenKind.IDENT:
            self._advance()
            if self._at(TokenKind.LPAREN):
                return self._parse_call(token)
            return ast.VarRef(line=token.line, name=token.text)
        if token.kind is TokenKind.LPAREN:
            self._advance()
            expr = self.parse_expression()
            self._expect(TokenKind.RPAREN)
            return expr
        raise ParseError("expected an expression", token)

    def _parse_call(self, name_token: Token) -> ast.Call:
        self._expect(TokenKind.LPAREN)
        call = ast.Call(line=name_token.line, callee=name_token.text)
        if not self._at(TokenKind.RPAREN):
            call.args.append(self.parse_expression())
            while self._accept(TokenKind.COMMA):
                call.args.append(self.parse_expression())
        self._expect(TokenKind.RPAREN)
        return call


def parse_program(source: str) -> ast.Program:
    """Lex and parse *source*, returning the AST."""
    return Parser(Lexer(source).tokenize()).parse_program()
