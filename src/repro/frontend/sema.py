"""Semantic analysis: symbol resolution, type checking and annotation.

The analyzer walks the AST produced by the parser, resolves every name,
computes and records a type on every expression node, inserts explicit
:class:`~repro.frontend.ast.Convert` nodes where the usual arithmetic
conversions apply, and evaluates global initialisers to constants.  The
annotated AST plus the collected :class:`ProgramSymbols` are what the
AST-to-IR lowering consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.frontend import ast
from repro.frontend.types import (
    ArrayType,
    FLOAT,
    INT,
    IntType,
    Type,
    UINT,
    VOID,
    common_type,
    is_float,
    is_integer,
)

#: Maximum number of parameters (all passed in registers r0-r3).
MAX_PARAMS = 4


class SemanticError(Exception):
    """Raised for any semantic violation (unknown name, type mismatch...)."""

    def __init__(self, message: str, line: int = 0):
        super().__init__(f"line {line}: {message}" if line else message)
        self.line = line


@dataclass
class FunctionSignature:
    name: str
    return_type: Type
    param_types: List[Type]


@dataclass
class GlobalInfo:
    name: str
    ty: Type
    const: bool
    #: Scalar initial value (int or float) or list of values for arrays.
    init_values: List[float] = field(default_factory=list)


@dataclass
class ProgramSymbols:
    """Symbol information gathered during analysis."""

    functions: Dict[str, FunctionSignature] = field(default_factory=dict)
    globals: Dict[str, GlobalInfo] = field(default_factory=dict)


class _Scope:
    def __init__(self, parent: Optional["_Scope"] = None):
        self.parent = parent
        self.symbols: Dict[str, Type] = {}

    def define(self, name: str, ty: Type, line: int) -> None:
        if name in self.symbols:
            raise SemanticError(f"redefinition of '{name}'", line)
        self.symbols[name] = ty

    def lookup(self, name: str) -> Optional[Type]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.symbols:
                return scope.symbols[name]
            scope = scope.parent
        return None


class SemanticAnalyzer:
    """Single-pass (plus a signature pre-pass) semantic analyzer."""

    def __init__(self, program: ast.Program):
        self.program = program
        self.symbols = ProgramSymbols()
        self._scope = _Scope()
        self._current_function: Optional[ast.FuncDef] = None
        self._loop_depth = 0

    # ------------------------------------------------------------------ #
    def analyze(self) -> ProgramSymbols:
        self._collect_globals()
        self._collect_signatures()
        for func in self.program.functions:
            self._analyze_function(func)
        return self.symbols

    # ------------------------------------------------------------------ #
    def _collect_globals(self) -> None:
        for decl in self.program.globals:
            if decl.name in self.symbols.globals:
                raise SemanticError(f"redefinition of global '{decl.name}'", decl.line)
            info = GlobalInfo(decl.name, decl.ty, decl.const)
            if isinstance(decl.ty, ArrayType):
                length = decl.ty.length
                if length is None or length <= 0:
                    raise SemanticError(
                        f"global array '{decl.name}' must have a positive length",
                        decl.line)
                values = [0.0] * length
                if decl.array_init is not None:
                    if len(decl.array_init) > length:
                        raise SemanticError(
                            f"too many initialisers for '{decl.name}'", decl.line)
                    for index, expr in enumerate(decl.array_init):
                        values[index] = self._const_eval(expr)
                info.init_values = values
            else:
                value = 0.0
                if decl.init is not None:
                    value = self._const_eval(decl.init)
                info.init_values = [value]
            self.symbols.globals[decl.name] = info

    def _collect_signatures(self) -> None:
        for func in self.program.functions:
            if func.name in self.symbols.functions:
                raise SemanticError(f"redefinition of function '{func.name}'", func.line)
            if len(func.params) > MAX_PARAMS:
                raise SemanticError(
                    f"function '{func.name}' has more than {MAX_PARAMS} parameters",
                    func.line)
            signature = FunctionSignature(
                func.name, func.return_type, [p.ty for p in func.params])
            self.symbols.functions[func.name] = signature

    # ------------------------------------------------------------------ #
    def _const_eval(self, expr: ast.Expr) -> float:
        """Evaluate a constant expression used in a global initialiser."""
        if isinstance(expr, ast.IntLiteral):
            return float(expr.value)
        if isinstance(expr, ast.FloatLiteral):
            return expr.value
        if isinstance(expr, ast.UnaryOp) and expr.op == "-":
            return -self._const_eval(expr.operand)
        if isinstance(expr, ast.UnaryOp) and expr.op == "~":
            return float(~int(self._const_eval(expr.operand)))
        if isinstance(expr, ast.BinaryOp):
            lhs = self._const_eval(expr.lhs)
            rhs = self._const_eval(expr.rhs)
            ops = {
                "+": lambda a, b: a + b,
                "-": lambda a, b: a - b,
                "*": lambda a, b: a * b,
                "/": lambda a, b: a / b if b else 0.0,
                "%": lambda a, b: float(int(a) % int(b)) if b else 0.0,
                "<<": lambda a, b: float(int(a) << int(b)),
                ">>": lambda a, b: float(int(a) >> int(b)),
                "|": lambda a, b: float(int(a) | int(b)),
                "&": lambda a, b: float(int(a) & int(b)),
                "^": lambda a, b: float(int(a) ^ int(b)),
            }
            if expr.op in ops:
                return ops[expr.op](lhs, rhs)
        raise SemanticError("global initialiser is not a constant expression",
                            expr.line)

    # ------------------------------------------------------------------ #
    def _analyze_function(self, func: ast.FuncDef) -> None:
        self._current_function = func
        self._scope = _Scope()
        for param in func.params:
            self._scope.define(param.name, param.ty, param.line)
        self._analyze_block(func.body)
        self._current_function = None

    def _analyze_block(self, block: ast.Block) -> None:
        outer = self._scope
        self._scope = _Scope(outer)
        for stmt in block.statements:
            self._analyze_stmt(stmt)
        self._scope = outer

    def _analyze_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self._analyze_block(stmt)
        elif isinstance(stmt, ast.DeclGroup):
            for decl in stmt.declarations:
                self._analyze_var_decl(decl)
        elif isinstance(stmt, ast.VarDecl):
            self._analyze_var_decl(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                self._analyze_expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._analyze_expr(stmt.cond)
            self._analyze_stmt(stmt.then)
            if stmt.otherwise is not None:
                self._analyze_stmt(stmt.otherwise)
        elif isinstance(stmt, ast.While):
            self._analyze_expr(stmt.cond)
            self._loop_depth += 1
            self._analyze_stmt(stmt.body)
            self._loop_depth -= 1
        elif isinstance(stmt, ast.DoWhile):
            self._loop_depth += 1
            self._analyze_stmt(stmt.body)
            self._loop_depth -= 1
            self._analyze_expr(stmt.cond)
        elif isinstance(stmt, ast.For):
            outer = self._scope
            self._scope = _Scope(outer)
            if stmt.init is not None:
                self._analyze_stmt(stmt.init)
            if stmt.cond is not None:
                self._analyze_expr(stmt.cond)
            if stmt.step is not None:
                self._analyze_expr(stmt.step)
            self._loop_depth += 1
            self._analyze_stmt(stmt.body)
            self._loop_depth -= 1
            self._scope = outer
        elif isinstance(stmt, ast.Return):
            self._analyze_return(stmt)
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            if self._loop_depth == 0:
                raise SemanticError("break/continue outside of a loop", stmt.line)
        else:
            raise SemanticError(f"unhandled statement {type(stmt).__name__}", stmt.line)

    def _analyze_var_decl(self, decl: ast.VarDecl) -> None:
        if isinstance(decl.ty, ArrayType):
            if decl.ty.length is None or decl.ty.length <= 0:
                raise SemanticError(
                    f"local array '{decl.name}' must have a positive length", decl.line)
            if decl.array_init is not None:
                for expr in decl.array_init:
                    value_ty = self._analyze_expr(expr)
                    if not value_ty.is_scalar():
                        raise SemanticError("array initialiser must be scalar", decl.line)
        elif decl.init is not None:
            value_ty = self._analyze_expr(decl.init)
            decl.init = self._convert(decl.init, value_ty, decl.ty)
        self._scope.define(decl.name, decl.ty, decl.line)

    def _analyze_return(self, stmt: ast.Return) -> None:
        func = self._current_function
        assert func is not None
        if isinstance(func.return_type, type(VOID)) and func.return_type == VOID:
            if stmt.value is not None:
                raise SemanticError(
                    f"void function '{func.name}' cannot return a value", stmt.line)
            return
        if stmt.value is None:
            raise SemanticError(
                f"non-void function '{func.name}' must return a value", stmt.line)
        value_ty = self._analyze_expr(stmt.value)
        stmt.value = self._convert(stmt.value, value_ty, func.return_type)

    # ------------------------------------------------------------------ #
    # Expressions
    # ------------------------------------------------------------------ #
    def _convert(self, expr: ast.Expr, from_ty: Type, to_ty: Type) -> ast.Expr:
        """Insert a Convert node if *expr* needs converting to *to_ty*."""
        if from_ty == to_ty:
            return expr
        if isinstance(from_ty, IntType) and isinstance(to_ty, IntType):
            expr.ty = to_ty
            return expr
        if from_ty.is_scalar() and to_ty.is_scalar():
            node = ast.Convert(line=expr.line, value=expr)
            node.ty = to_ty
            return node
        raise SemanticError(f"cannot convert {from_ty} to {to_ty}", expr.line)

    def _analyze_expr(self, expr: ast.Expr) -> Type:
        ty = self._analyze_expr_inner(expr)
        expr.ty = ty
        return ty

    def _analyze_expr_inner(self, expr: ast.Expr) -> Type:
        if isinstance(expr, ast.IntLiteral):
            return INT
        if isinstance(expr, ast.FloatLiteral):
            return FLOAT
        if isinstance(expr, ast.VarRef):
            return self._lookup_var(expr.name, expr.line)
        if isinstance(expr, ast.Index):
            return self._analyze_index(expr)
        if isinstance(expr, ast.BinaryOp):
            return self._analyze_binary(expr)
        if isinstance(expr, ast.UnaryOp):
            return self._analyze_unary(expr)
        if isinstance(expr, ast.Conditional):
            return self._analyze_conditional(expr)
        if isinstance(expr, ast.Call):
            return self._analyze_call(expr)
        if isinstance(expr, ast.Assign):
            return self._analyze_assign(expr)
        if isinstance(expr, ast.IncDec):
            return self._analyze_incdec(expr)
        if isinstance(expr, ast.Convert):
            self._analyze_expr(expr.value)
            return expr.ty
        raise SemanticError(f"unhandled expression {type(expr).__name__}", expr.line)

    def _lookup_var(self, name: str, line: int) -> Type:
        ty = self._scope.lookup(name)
        if ty is not None:
            return ty
        if name in self.symbols.globals:
            return self.symbols.globals[name].ty
        raise SemanticError(f"use of undeclared identifier '{name}'", line)

    def _analyze_index(self, expr: ast.Index) -> Type:
        base_ty = self._analyze_expr(expr.base)
        if not isinstance(base_ty, ArrayType):
            raise SemanticError("subscripted value is not an array", expr.line)
        index_ty = self._analyze_expr(expr.index)
        if not is_integer(index_ty):
            raise SemanticError("array index must be an integer", expr.line)
        return base_ty.element

    def _analyze_binary(self, expr: ast.BinaryOp) -> Type:
        lhs_ty = self._analyze_expr(expr.lhs)
        rhs_ty = self._analyze_expr(expr.rhs)
        op = expr.op
        if op in ("&&", "||"):
            if not lhs_ty.is_scalar() or not rhs_ty.is_scalar():
                raise SemanticError("logical operands must be scalar", expr.line)
            return INT
        if not lhs_ty.is_scalar() or not rhs_ty.is_scalar():
            raise SemanticError(f"invalid operands to '{op}'", expr.line)
        if op in ("%", "<<", ">>", "&", "|", "^"):
            if is_float(lhs_ty) or is_float(rhs_ty):
                raise SemanticError(f"'{op}' requires integer operands", expr.line)
            result = common_type(lhs_ty, rhs_ty)
            expr.lhs = self._convert(expr.lhs, lhs_ty, result)
            expr.rhs = self._convert(expr.rhs, rhs_ty, result)
            return result
        result = common_type(lhs_ty, rhs_ty)
        expr.lhs = self._convert(expr.lhs, lhs_ty, result)
        expr.rhs = self._convert(expr.rhs, rhs_ty, result)
        if op in ("<", "<=", ">", ">=", "==", "!="):
            return INT
        return result

    def _analyze_unary(self, expr: ast.UnaryOp) -> Type:
        operand_ty = self._analyze_expr(expr.operand)
        if not operand_ty.is_scalar():
            raise SemanticError(f"invalid operand to unary '{expr.op}'", expr.line)
        if expr.op == "!":
            return INT
        if expr.op == "~":
            if is_float(operand_ty):
                raise SemanticError("'~' requires an integer operand", expr.line)
            return operand_ty
        return operand_ty

    def _analyze_conditional(self, expr: ast.Conditional) -> Type:
        self._analyze_expr(expr.cond)
        then_ty = self._analyze_expr(expr.then)
        else_ty = self._analyze_expr(expr.otherwise)
        result = common_type(then_ty, else_ty)
        expr.then = self._convert(expr.then, then_ty, result)
        expr.otherwise = self._convert(expr.otherwise, else_ty, result)
        return result

    def _analyze_call(self, expr: ast.Call) -> Type:
        signature = self.symbols.functions.get(expr.callee)
        if signature is None:
            raise SemanticError(f"call to undefined function '{expr.callee}'", expr.line)
        if len(expr.args) != len(signature.param_types):
            raise SemanticError(
                f"'{expr.callee}' expects {len(signature.param_types)} arguments, "
                f"got {len(expr.args)}", expr.line)
        for index, (arg, param_ty) in enumerate(zip(expr.args, signature.param_types)):
            arg_ty = self._analyze_expr(arg)
            if isinstance(param_ty, ArrayType):
                if not isinstance(arg_ty, ArrayType):
                    raise SemanticError(
                        f"argument {index + 1} of '{expr.callee}' must be an array",
                        expr.line)
            else:
                expr.args[index] = self._convert(arg, arg_ty, param_ty)
        return signature.return_type

    def _analyze_assign(self, expr: ast.Assign) -> Type:
        target_ty = self._check_lvalue(expr.target)
        value_ty = self._analyze_expr(expr.value)
        if expr.op:
            if expr.op in ("%", "<<", ">>", "&", "|", "^") and (
                    is_float(target_ty) or is_float(value_ty)):
                raise SemanticError(f"'{expr.op}=' requires integer operands", expr.line)
        expr.value = self._convert(expr.value, value_ty, target_ty)
        return target_ty

    def _analyze_incdec(self, expr: ast.IncDec) -> Type:
        target_ty = self._check_lvalue(expr.target)
        if is_float(target_ty):
            raise SemanticError("'++'/'--' require an integer lvalue", expr.line)
        return target_ty

    def _check_lvalue(self, expr: ast.Expr) -> Type:
        ty = self._analyze_expr(expr)
        if isinstance(expr, ast.VarRef):
            if isinstance(ty, ArrayType):
                raise SemanticError("cannot assign to an array", expr.line)
            return ty
        if isinstance(expr, ast.Index):
            return ty
        raise SemanticError("expression is not assignable", expr.line)


def analyze(program: ast.Program) -> ProgramSymbols:
    """Run semantic analysis on *program*, annotating it in place."""
    return SemanticAnalyzer(program).analyze()
