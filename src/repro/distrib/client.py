"""Thin wire client for the sweep service's control verbs.

`repro-eval submit/status/cancel` land here: one short-lived TCP
connection per operation, speaking the version-2 control vocabulary
(`repro.distrib.protocol`).  Every helper opens a stream, performs the
hello/welcome version negotiation where the verb requires it, sends one
request, decodes one reply, and closes — there is no long-lived client
state, which is what lets ad-hoc shells, CI jobs and dashboards all poke
the same service without coordination.

All helpers raise :class:`ClientError` with the service's own message when
the reply is a protocol ``error`` — including the loud version-mismatch
message an old client gets from a new service.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.distrib.protocol import (
    PROTOCOL_VERSION,
    MessageStream,
    ProtocolError,
    connect,
)
from repro.explore.sweep import SweepSpec


class ClientError(RuntimeError):
    """The service rejected a control request (or could not be reached)."""


def _roundtrip(host: str, port: int, message: Dict, expected: str,
               negotiate: bool = False) -> Dict:
    """One connect → (hello) → request → reply cycle, errors normalized."""
    try:
        with connect(host, port) as stream:
            if negotiate:
                _negotiate(stream)
            stream.send(message)
            return _checked(stream.recv(), expected)
    except (OSError, ProtocolError) as error:
        raise ClientError(
            f"could not complete a {message['type']!r} request against "
            f"{host}:{port}: {error}") from error


def _checked(reply: Optional[Dict], expected: str) -> Dict:
    if reply is None:
        raise ClientError("service closed the connection mid-request")
    if reply.get("type") == "error":
        raise ClientError(f"service error: {reply.get('message')}")
    if reply.get("type") != expected:
        raise ClientError(f"expected a {expected!r} reply, got {reply!r}")
    return reply


def _negotiate(stream: MessageStream, client: str = "client") -> None:
    """hello/welcome as a non-worker peer; raises on version mismatch."""
    stream.send({"type": "hello", "version": PROTOCOL_VERSION,
                 "worker": client, "role": "client"})
    _checked(stream.recv(), "welcome")


def submit_sweep(host: str, port: int, sweep: SweepSpec, name: str,
                 priority: int = 1,
                 batch_size: Optional[int] = None,
                 resume: bool = False,
                 adaptive: bool = True,
                 checkpoint_every: Optional[int] = None,
                 store: Optional[str] = None) -> Dict:
    """Submit *sweep* to a running service under *name*; admission stats.

    The sweep travels as its axes meta (``SweepSpec.meta()``) — the same
    payload leases carry to workers — so the service rebuilds an identical
    cell set and the eventual store stays byte-identical to a local
    ``execute_sweep`` of the same spec.  ``store`` is a directory path *on
    the service host* where this sweep's store and journal land (defaults
    to the service-wide store root); ``checkpoint_every`` overrides the
    service's journal cadence for this sweep.
    """
    message: Dict = {"type": "submit", "sweep": sweep.meta(), "name": name,
                     "priority": priority, "resume": resume,
                     "adaptive": adaptive}
    if batch_size is not None:
        message["batch_size"] = batch_size
    if checkpoint_every is not None:
        message["checkpoint_every"] = checkpoint_every
    if store is not None:
        message["store"] = store
    return _roundtrip(host, port, message, "submitted", negotiate=True)


def sweep_status(host: str, port: int,
                 name: Optional[str] = None) -> Dict:
    """Per-sweep snapshots (counts, EWMA throughput, ETA) from the service.

    Returns ``{sweep_name: snapshot}``; *name* narrows it to one sweep.
    No hello needed — status is an observer verb, like ``metrics``.
    """
    message = ({"type": "status"} if name is None
               else {"type": "status", "sweep": name})
    return _roundtrip(host, port, message, "status")["sweeps"]


def cancel_sweep(host: str, port: int, name: str) -> Dict:
    """Cancel sweep *name*; returns its snapshot at cancellation."""
    return _roundtrip(host, port, {"type": "cancel", "sweep": name},
                      "cancelled", negotiate=True)["snapshot"]


def list_sweeps(host: str, port: int) -> List[Dict]:
    """Every hosted sweep's snapshot (each dict carries its ``name``)."""
    return _roundtrip(host, port, {"type": "list"}, "sweeps")["sweeps"]


def wait_for_sweep(host: str, port: int, name: str,
                   timeout: Optional[float] = None,
                   poll: float = 0.5) -> Dict:
    """Poll ``status`` until sweep *name* reaches a terminal state.

    Returns the terminal snapshot; raises :class:`ClientError` on timeout
    or if the sweep ends ``failed`` (with the service's failure message).
    """
    deadline = None if timeout is None else time.monotonic() + timeout
    while True:
        try:
            snapshot = sweep_status(host, port, name)[name]
        except ClientError as error:
            raise ClientError(
                f"lost the service while waiting for sweep {name!r}: "
                f"{error}") from error
        if snapshot["status"] in ("completed", "cancelled", "failed"):
            if snapshot["status"] == "failed":
                raise ClientError(
                    f"sweep {name!r} failed: {snapshot.get('failure')}")
            return snapshot
        if deadline is not None and time.monotonic() >= deadline:
            raise ClientError(
                f"sweep {name!r} still {snapshot['status']} after "
                f"{timeout} s ({snapshot['done']}/{snapshot['total']} cells)")
        time.sleep(poll)
