"""The sweep worker: lease batches, execute them, stream records back.

A worker is one process with one engine.  It connects to a coordinator,
rebuilds the sweep's cell set from the axes in the ``welcome`` message
(cells are content-addressed, so a list of ``cell_key``\\ s identifies a
batch unambiguously), and then loops: request → execute → result.  Axes
round-trip through ``SweepSpec.meta()`` / ``from_meta``; axes with an
all-default value (e.g. ``timing_models == ("flat",)``) are omitted from the
meta block and restored to the default on rebuild, so old coordinators and
new workers (and vice versa) agree on the cell set byte-for-byte.  A
background thread heartbeats while a batch is executing so the coordinator
does not re-lease work from a slow-but-alive worker; a *dead* worker stops
heartbeating and drops its connection, which is exactly what triggers the
coordinator's re-lease path.

Workers are deliberately stateless between batches — all coordination state
(leases, completions, checkpoints) lives in the coordinator, so a worker can
be killed at any instant without corrupting anything.
"""

from __future__ import annotations

import os
import socket
import sys
import threading
import time
from typing import Dict, Optional

from repro.distrib.protocol import (
    PROTOCOL_VERSION,
    MessageStream,
    ProtocolError,
    connect,
)
from repro.engine import ExperimentEngine
from repro.explore.sweep import SweepSpec, cell_record, run_sweep_cells
from repro.telemetry import get_telemetry


class WorkerError(RuntimeError):
    """The coordinator rejected this worker or reported a fatal error."""


def connect_with_retry(host: str, port: int,
                       timeout: float = 30.0) -> MessageStream:
    """Connect to the coordinator, retrying until *timeout* elapses.

    Workers routinely start before the coordinator has bound its port (CI
    launches both as background jobs), so refusal is retried, not fatal.
    """
    deadline = time.monotonic() + timeout
    while True:
        try:
            return connect(host, port)
        except OSError as error:
            if time.monotonic() >= deadline:
                raise WorkerError(
                    f"could not reach coordinator at {host}:{port} "
                    f"within {timeout} s: {error}") from error
            time.sleep(0.2)


class _Heartbeat:
    """Background heartbeats on the worker's stream while batches execute."""

    def __init__(self, stream: MessageStream, interval: float):
        self._stream = stream
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._loop, daemon=True,
                                        name="worker-heartbeat")
        self._thread.start()

    def _loop(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                self._stream.send({"type": "heartbeat"})
            except OSError:
                return  # connection gone; the main loop will notice

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)


def run_worker(host: str, port: int,
               name: Optional[str] = None,
               max_workers: int = 1,
               throttle: float = 0.0,
               connect_timeout: float = 30.0,
               cache_dir: Optional[str] = None) -> Dict:
    """Serve one coordinator until its sweep is done; returns worker stats.

    ``max_workers`` is the engine's in-process fan-out *within* this worker
    (normally 1 — the fleet is the parallelism).  ``throttle`` injects an
    artificial delay of that many seconds per executed cell; it exists so
    tests, benchmarks and the CI smoke job can manufacture deterministic
    stragglers, and is harmless in production use.  ``cache_dir`` points the
    worker's engine at a persistent on-disk program cache, so a fleet
    sharing one directory compiles each program once per machine; the
    returned stats carry the engine's cache counters under ``"cache"``.
    """
    worker_name = name or f"{socket.gethostname()}:{os.getpid()}"
    stream = connect_with_retry(host, port, timeout=connect_timeout)
    stats = {"worker": worker_name, "batches": 0, "cells": 0, "waits": 0}
    heartbeat: Optional[_Heartbeat] = None
    try:
        stream.send({"type": "hello", "version": PROTOCOL_VERSION,
                     "worker": worker_name})
        welcome = stream.recv()
        if welcome is None or welcome.get("type") != "welcome":
            raise WorkerError(f"expected welcome, got {welcome!r}")
        if welcome.get("version") != PROTOCOL_VERSION:
            raise WorkerError(
                f"protocol version mismatch: worker speaks "
                f"{PROTOCOL_VERSION}, coordinator sent "
                f"{welcome.get('version')!r}")

        sweep = SweepSpec.from_meta(welcome["sweep"])
        cells_by_key = {cell.key: cell for cell in sweep.cells()}
        engine = ExperimentEngine(max_workers=max_workers,
                                  cache_dir=cache_dir)
        heartbeat = _Heartbeat(stream, float(welcome["heartbeat_interval"]))

        hub = get_telemetry()
        while True:
            try:
                # The roundtrip span covers queueing at the coordinator plus
                # the wire time — the worker-side view of lease latency.
                with hub.span("lease.roundtrip", worker=worker_name):
                    stream.send({"type": "request"})
                    message = stream.recv()
            except OSError:
                break  # coordinator gone mid-exchange; same as clean EOF
            if message is None:
                break  # coordinator gone; nothing left to do safely
            kind = message["type"]
            if kind == "lease":
                try:
                    batch = [cells_by_key[key] for key in message["keys"]]
                except KeyError as error:
                    raise ProtocolError(
                        f"leased unknown cell {error}; coordinator and "
                        f"worker disagree about the sweep") from error
                runs = run_sweep_cells(batch, engine,
                                       max_workers=max_workers)
                if throttle:
                    time.sleep(throttle * len(batch))
                records = [cell_record(cell, run)
                           for cell, run in zip(batch, runs)]
                try:
                    stream.send({"type": "result",
                                 "lease_id": message["lease_id"],
                                 "records": records})
                except OSError:
                    # The sweep finished without this batch (it expired and
                    # was re-leased) and the coordinator shut down — a
                    # legitimate at-least-once outcome, not a failure.
                    break
                stats["batches"] += 1
                stats["cells"] += len(records)
                hub.add("worker.batches")
                hub.add("worker.cells", len(records))
                hub.flush()  # a SIGKILL now loses at most this batch's tail
            elif kind == "wait":
                stats["waits"] += 1
                time.sleep(float(message.get("seconds", 0.5)))
            elif kind == "done":
                break
            elif kind == "error":
                raise WorkerError(
                    f"coordinator error: {message.get('message')}")
            else:
                raise ProtocolError(f"unknown message type {kind!r}")
        stats["cache"] = engine.merged_cache_stats()
    except ProtocolError as error:
        try:
            stream.send({"type": "error", "message": str(error)})
        except OSError:
            pass
        raise WorkerError(str(error)) from error
    finally:
        if heartbeat is not None:
            heartbeat.stop()
        stream.close()
    return stats


def format_worker_stats(stats: Dict) -> str:
    """One greppable summary line for a finished worker.

    The CI smoke job asserts on the ``cache ... compiles=``/``disk_hits=``
    fields to prove that a warm shared ``--cache-dir`` eliminates
    recompiles, so keep the ``key=value`` shape stable.
    """
    line = (f"worker {stats['worker']} done: {stats['cells']} cells in "
            f"{stats['batches']} batches")
    cache = stats.get("cache")
    if cache is not None:
        line += (f" | cache compiles={cache['compiles']} "
                 f"hits={cache['hits']} disk_hits={cache['disk_hits']} "
                 f"disk_misses={cache['disk_misses']}")
    return line


def worker_process_entry(host: str, port: int, **kwargs) -> None:
    """Top-level entry point for spawned local worker processes."""
    stats = run_worker(host, port, **kwargs)
    print(format_worker_stats(stats), file=sys.stderr, flush=True)
