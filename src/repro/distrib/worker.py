"""The sweep-agnostic worker: lease batches, execute them, stream records.

A worker is one process with one engine, and — since the multi-sweep
service refactor — no sweep of its own.  It connects, negotiates the
protocol version in hello/welcome, and then loops request → execute →
result.  Each ``lease`` carries its sweep's name plus the sweep's axes
meta (``SweepSpec.meta()``), so one worker serves every tenant the service
hosts and rebalances automatically when sweeps are submitted or cancelled
mid-run: the worker rebuilds each sweep's cell set once per distinct axes
payload (content-addressed cache) and executes whatever batch the
scheduler hands it next.  Axes with an all-default value (e.g.
``timing_models == ("flat",)``) are omitted from the meta block and
restored to the default on rebuild, so the service and its workers agree
on every cell set byte-for-byte.

A background thread heartbeats while a batch is executing so the service
does not re-lease work from a slow-but-alive worker; a *dead* worker stops
heartbeating and drops its connection, which is exactly what triggers the
service's re-lease path.  Workers are deliberately stateless between
batches — all coordination state (leases, completions, checkpoints) lives
in the service, so a worker can be killed at any instant without
corrupting anything.
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
import sys
import threading
import time
from typing import Dict, Optional

from repro.distrib.protocol import (
    PROTOCOL_VERSION,
    MessageStream,
    ProtocolError,
    connect,
)
from repro.engine import ExperimentEngine
from repro.explore.sweep import SweepCell, SweepSpec, cell_record, run_sweep_cells
from repro.telemetry import get_telemetry


class WorkerError(RuntimeError):
    """The service rejected this worker or reported a fatal error."""


def connect_with_retry(host: str, port: int,
                       timeout: float = 30.0) -> MessageStream:
    """Connect to the service, retrying until *timeout* elapses.

    Workers routinely start before the service has bound its port (CI
    launches both as background jobs), so refusal is retried, not fatal.
    """
    deadline = time.monotonic() + timeout
    while True:
        try:
            return connect(host, port)
        except OSError as error:
            if time.monotonic() >= deadline:
                raise WorkerError(
                    f"could not reach the sweep service at {host}:{port} "
                    f"within {timeout} s: {error}") from error
            time.sleep(0.2)


class _Heartbeat:
    """Background heartbeats on the worker's stream while batches execute."""

    def __init__(self, stream: MessageStream, interval: float):
        self._stream = stream
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._loop, daemon=True,
                                        name="worker-heartbeat")
        self._thread.start()

    def _loop(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                self._stream.send({"type": "heartbeat"})
            except OSError:
                return  # connection gone; the main loop will notice

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)


class _SweepCellCache:
    """Cell sets rebuilt from lease ``spec`` payloads, one per distinct axes.

    The cache key is a digest of the canonical JSON of the axes meta — not
    the sweep's display name — so a service that retires one sweep and
    later hosts a different sweep under a reused name can never hand this
    worker stale cells.
    """

    def __init__(self):
        self._by_digest: Dict[str, Dict[str, SweepCell]] = {}

    def cells_for(self, spec_meta: Dict) -> Dict[str, SweepCell]:
        digest = hashlib.sha256(json.dumps(
            spec_meta, sort_keys=True, separators=(",", ":"),
            default=str).encode("utf-8")).hexdigest()
        cells = self._by_digest.get(digest)
        if cells is None:
            sweep = SweepSpec.from_meta(spec_meta)
            cells = {cell.key: cell for cell in sweep.cells()}
            self._by_digest[digest] = cells
        return cells


def run_worker(host: str, port: int,
               name: Optional[str] = None,
               max_workers: int = 1,
               throttle: float = 0.0,
               connect_timeout: float = 30.0,
               cache_dir: Optional[str] = None) -> Dict:
    """Serve one sweep service until it releases this worker; return stats.

    ``max_workers`` is the engine's in-process fan-out *within* this worker
    (normally 1 — the fleet is the parallelism).  ``throttle`` injects an
    artificial delay of that many seconds per executed cell; it exists so
    tests, benchmarks and the CI smoke job can manufacture deterministic
    stragglers, and is harmless in production use.  ``cache_dir`` points the
    worker's engine at a persistent on-disk program cache, so a fleet
    sharing one directory compiles each program once per machine; the
    returned stats carry the engine's cache counters under ``"cache"`` and
    per-sweep cell counts under ``"sweeps"``.
    """
    worker_name = name or f"{socket.gethostname()}:{os.getpid()}"
    stream = connect_with_retry(host, port, timeout=connect_timeout)
    stats: Dict = {"worker": worker_name, "batches": 0, "cells": 0,
                   "waits": 0, "sweeps": {}}
    heartbeat: Optional[_Heartbeat] = None
    try:
        stream.send({"type": "hello", "version": PROTOCOL_VERSION,
                     "worker": worker_name, "role": "worker"})
        welcome = stream.recv()
        if welcome is None:
            raise WorkerError("service closed the connection during hello")
        if welcome.get("type") == "error":
            # A version-aware service rejects an incompatible hello with a
            # versioned error message; surface it verbatim instead of a
            # decode crash.
            raise WorkerError(
                f"service rejected this worker: {welcome.get('message')}")
        if welcome.get("type") != "welcome":
            raise WorkerError(f"expected welcome, got {welcome!r}")
        if welcome.get("version") != PROTOCOL_VERSION:
            raise WorkerError(
                f"protocol version mismatch: worker speaks "
                f"{PROTOCOL_VERSION}, service sent "
                f"{welcome.get('version')!r}; upgrade the older side")

        cell_cache = _SweepCellCache()
        engine = ExperimentEngine(max_workers=max_workers,
                                  cache_dir=cache_dir)
        heartbeat = _Heartbeat(stream, float(welcome["heartbeat_interval"]))

        hub = get_telemetry()
        while True:
            try:
                # The roundtrip span covers queueing at the service plus
                # the wire time — the worker-side view of lease latency.
                with hub.span("lease.roundtrip", worker=worker_name):
                    stream.send({"type": "request"})
                    message = stream.recv()
            except OSError:
                break  # service gone mid-exchange; same as clean EOF
            if message is None:
                break  # service gone; nothing left to do safely
            kind = message["type"]
            if kind == "lease":
                sweep_name = message.get("sweep", "sweep")
                try:
                    cells_by_key = cell_cache.cells_for(message["spec"])
                    batch = [cells_by_key[key] for key in message["keys"]]
                except (KeyError, ValueError) as error:
                    raise ProtocolError(
                        f"unusable lease for sweep {sweep_name!r} "
                        f"({error}); service and worker disagree about "
                        f"the sweep") from error
                with hub.span("lease.execute", sweep=sweep_name,
                              cells=len(batch)):
                    runs = run_sweep_cells(batch, engine,
                                           max_workers=max_workers)
                    if throttle:
                        time.sleep(throttle * len(batch))
                records = [cell_record(cell, run)
                           for cell, run in zip(batch, runs)]
                try:
                    stream.send({"type": "result",
                                 "lease_id": message["lease_id"],
                                 "sweep": sweep_name,
                                 "records": records})
                except OSError:
                    # The sweep finished without this batch (it expired and
                    # was re-leased) and the service shut down — a
                    # legitimate at-least-once outcome, not a failure.
                    break
                stats["batches"] += 1
                stats["cells"] += len(records)
                stats["sweeps"][sweep_name] = \
                    stats["sweeps"].get(sweep_name, 0) + len(records)
                hub.add("worker.batches")
                hub.add("worker.cells", len(records))
                hub.flush()  # a SIGKILL now loses at most this batch's tail
            elif kind == "wait":
                stats["waits"] += 1
                time.sleep(float(message.get("seconds", 0.5)))
            elif kind == "done":
                break
            elif kind == "error":
                raise WorkerError(
                    f"service error: {message.get('message')}")
            else:
                raise ProtocolError(f"unknown message type {kind!r}")
        stats["cache"] = engine.merged_cache_stats()
    except ProtocolError as error:
        try:
            stream.send({"type": "error", "message": str(error)})
        except OSError:
            pass
        raise WorkerError(str(error)) from error
    finally:
        if heartbeat is not None:
            heartbeat.stop()
        stream.close()
    return stats


def format_worker_stats(stats: Dict) -> str:
    """One greppable summary line for a finished worker.

    The CI smoke job asserts on the ``cache ... compiles=``/``disk_hits=``
    fields to prove that a warm shared ``--cache-dir`` eliminates
    recompiles, so keep the ``key=value`` shape stable.
    """
    line = (f"worker {stats['worker']} done: {stats['cells']} cells in "
            f"{stats['batches']} batches")
    sweeps = stats.get("sweeps")
    if sweeps and len(sweeps) > 1:
        detail = ", ".join(f"{name}={count}"
                           for name, count in sorted(sweeps.items()))
        line += f" across sweeps {detail}"
    cache = stats.get("cache")
    if cache is not None:
        line += (f" | cache compiles={cache['compiles']} "
                 f"hits={cache['hits']} disk_hits={cache['disk_hits']} "
                 f"disk_misses={cache['disk_misses']}")
    return line


def worker_process_entry(host: str, port: int, **kwargs) -> None:
    """Top-level entry point for spawned local worker processes."""
    stats = run_worker(host, port, **kwargs)
    print(format_worker_stats(stats), file=sys.stderr, flush=True)
