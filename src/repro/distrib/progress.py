"""Live progress/ETA reporting for long sweeps.

One :class:`ProgressReporter` instance serves both execution paths: the
plain ``execute_sweep(..., progress=True)`` loop and the distributed
coordinator (which adds worker/lease counts via ``extra``).  Output goes to
stderr so stdout stays machine-readable; on a TTY the line redraws in
place, otherwise one line is printed per reporting interval (CI logs stay
readable instead of drowning in carriage returns).

The displayed rate — and the ETA derived from it — is an EWMA of *recent*
completions (:class:`~repro.telemetry.RateEwma`), not the overall average:
after a compile-heavy warm-up the overall average understates steady-state
throughput for the rest of the run, which made long-sweep ETAs wildly
pessimistic.  The same estimator drives the coordinator's per-worker
throughput gauges, so the progress line and ``repro-eval metrics`` agree.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Optional, TextIO

from repro.telemetry import RateEwma


def format_eta(seconds: float) -> str:
    """Compact ``1h02m`` / ``4m07s`` / ``12s`` rendering of a duration."""
    seconds = max(0, int(round(seconds)))
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds}s"


class ProgressReporter:
    """Throttled ``done/total, cells/s, ETA`` line on stderr.

    The reporter is passive bookkeeping only — it never touches results and
    is safe to drop entirely (every caller treats it as optional).
    """

    def __init__(self, total: int, label: str = "sweep",
                 stream: Optional[TextIO] = None, interval: float = 1.0,
                 clock: Callable[[], float] = time.monotonic):
        self.total = total
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.interval = interval
        self.clock = clock
        self.started = clock()
        self.done = 0
        self._last_emit = float("-inf")
        self._last_line = ""
        #: Seeded with the start time so the very first completion interval
        #: already yields a rate (there is no "previous" observation to wait
        #: for — the reporter's creation is the origin).
        self._rate = RateEwma(start=self.started)

    @property
    def rate(self) -> float:
        """Smoothed recent cells/second (overall average until a sample)."""
        smoothed = self._rate.rate
        if smoothed is not None:
            return smoothed
        elapsed = max(self.clock() - self.started, 1e-9)
        return self.done / elapsed

    def line(self, extra: str = "") -> str:
        rate = self.rate
        if self.done >= self.total:
            eta = "done"
        elif rate > 0:
            eta = "ETA " + format_eta((self.total - self.done) / rate)
        else:
            eta = "ETA --"
        percent = 100.0 * self.done / self.total if self.total else 100.0
        text = (f"[{self.label}] {self.done}/{self.total} cells "
                f"({percent:.1f}%), {rate:.2f} cells/s, {eta}")
        if extra:
            text += f", {extra}"
        return text

    def update(self, done: int, extra: str = "", force: bool = False) -> None:
        """Record progress and emit a line if the interval elapsed.

        Every call feeds the rate EWMA — including throttled ones that emit
        nothing — so the estimate tracks completions, not emissions.
        """
        delta = done - self.done
        self.done = done
        now = self.clock()
        if delta > 0:
            self._rate.observe(delta, now)
        if not force and done < self.total and now - self._last_emit < self.interval:
            return
        self._last_emit = now
        self._last_line = self.line(extra)
        if self.stream.isatty():
            end = "\n" if done >= self.total else ""
            self.stream.write("\r\x1b[2K" + self._last_line + end)
        else:
            self.stream.write(self._last_line + "\n")
        self.stream.flush()

    def finish(self, extra: str = "") -> None:
        self.update(self.done, extra=extra, force=True)
