"""Live progress/ETA reporting for long sweeps.

One :class:`ProgressReporter` instance serves both execution paths: the
plain ``execute_sweep(..., progress=True)`` loop and the distributed
coordinator (which adds worker/lease counts via ``extra``).  Output goes to
stderr so stdout stays machine-readable; on a TTY the line redraws in
place, otherwise one line is printed per reporting interval (CI logs stay
readable instead of drowning in carriage returns).
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Optional, TextIO


def format_eta(seconds: float) -> str:
    """Compact ``1h02m`` / ``4m07s`` / ``12s`` rendering of a duration."""
    seconds = max(0, int(round(seconds)))
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds}s"


class ProgressReporter:
    """Throttled ``done/total, cells/s, ETA`` line on stderr.

    The reporter is passive bookkeeping only — it never touches results and
    is safe to drop entirely (every caller treats it as optional).
    """

    def __init__(self, total: int, label: str = "sweep",
                 stream: Optional[TextIO] = None, interval: float = 1.0,
                 clock: Callable[[], float] = time.monotonic):
        self.total = total
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.interval = interval
        self.clock = clock
        self.started = clock()
        self.done = 0
        self._last_emit = float("-inf")
        self._last_line = ""

    def line(self, extra: str = "") -> str:
        elapsed = max(self.clock() - self.started, 1e-9)
        rate = self.done / elapsed
        if self.done >= self.total:
            eta = "done"
        elif rate > 0:
            eta = "ETA " + format_eta((self.total - self.done) / rate)
        else:
            eta = "ETA --"
        percent = 100.0 * self.done / self.total if self.total else 100.0
        text = (f"[{self.label}] {self.done}/{self.total} cells "
                f"({percent:.1f}%), {rate:.2f} cells/s, {eta}")
        if extra:
            text += f", {extra}"
        return text

    def update(self, done: int, extra: str = "", force: bool = False) -> None:
        """Record progress and emit a line if the interval elapsed."""
        self.done = done
        now = self.clock()
        if not force and done < self.total and now - self._last_emit < self.interval:
            return
        self._last_emit = now
        self._last_line = self.line(extra)
        if self.stream.isatty():
            end = "\n" if done >= self.total else ""
            self.stream.write("\r\x1b[2K" + self._last_line + end)
        else:
            self.stream.write(self._last_line + "\n")
        self.stream.flush()

    def finish(self, extra: str = "") -> None:
        self.update(self.done, extra=extra, force=True)
