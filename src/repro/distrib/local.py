"""One-machine convenience: coordinator plus N spawned local workers.

``execute_sweep(sweep, workers=N)`` (and ``repro-eval explore
--distributed N``) lands here: a :class:`SweepCoordinator` bound to an
ephemeral localhost port, *N* worker processes spawned against it, and a
watchdog that fails fast if the whole fleet dies before the sweep is done
(a lone coordinator would otherwise wait forever for workers that will
never return).  The summary dict is shaped exactly like
:func:`repro.explore.execute_sweep`'s, plus a ``distrib`` stats block.
"""

from __future__ import annotations

import multiprocessing
from typing import Dict, Optional, Sequence, Tuple

from repro.distrib.coordinator import (
    DEFAULT_BATCH_SIZE,
    DEFAULT_CHECKPOINT_EVERY,
    DEFAULT_LEASE_TIMEOUT,
    CoordinatorError,
    SweepCoordinator,
)
from repro.distrib.worker import worker_process_entry
from repro.engine.results import ResultStore
from repro.explore.sweep import SweepSpec


def execute_sweep_distributed(sweep: SweepSpec,
                              store: Optional[ResultStore] = None,
                              name: str = "sweep",
                              workers: int = 2,
                              shard: Optional[Tuple[int, int]] = None,
                              resume: bool = False,
                              progress: bool = False,
                              batch_size: int = DEFAULT_BATCH_SIZE,
                              lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
                              checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
                              worker_options: Optional[Sequence[Dict]] = None,
                              timeout: Optional[float] = None,
                              cache_dir: Optional[str] = None,
                              adaptive: bool = True) -> Dict:
    """Run *sweep* with a local coordinator and *workers* spawned processes.

    ``worker_options`` optionally carries one kwargs dict per worker
    (``name``, ``max_workers``, ``throttle`` — see
    :func:`repro.distrib.worker.run_worker`); tests and benchmarks use it to
    manufacture deterministic stragglers.  ``cache_dir`` is handed to every
    worker (unless its options dict overrides it) so the whole fleet shares
    one persistent program cache.  ``adaptive=False`` pins every lease to
    the fixed ``batch_size`` cut instead of the service's shrinking-tail
    policy (``benchmarks/bench_service.py`` measures one against the
    other).  The resulting store is byte-identical to a monolithic
    ``execute_sweep`` of the same spec.
    """
    if workers < 1:
        raise ValueError("a distributed run needs at least 1 worker")
    options = list(worker_options or [])
    if len(options) > workers:
        raise ValueError(f"{len(options)} worker_options for {workers} workers")
    options += [{}] * (workers - len(options))

    coordinator = SweepCoordinator(
        sweep, store=store, name=name, port=0, shard=shard, resume=resume,
        batch_size=batch_size, lease_timeout=lease_timeout,
        checkpoint_every=checkpoint_every, progress=progress,
        adaptive=adaptive)
    coordinator.start()

    # Spawn (not fork): the coordinator already runs server threads, and
    # forking a multi-threaded parent can deadlock the child on inherited
    # lock state.  Spawned workers import a clean interpreter.
    context = multiprocessing.get_context("spawn")
    processes = []
    try:
        for index, kwargs in enumerate(options):
            kwargs = dict(kwargs)
            kwargs.setdefault("name", f"local-{index}")
            if cache_dir is not None:
                kwargs.setdefault("cache_dir", cache_dir)
            # Not daemonic: a worker may itself open an engine process pool
            # (worker_options={"max_workers": N}), which daemonic processes
            # are forbidden to do.  The finally-block below reaps them, and
            # workers exit on their own once the coordinator socket closes.
            process = context.Process(
                target=worker_process_entry,
                args=(coordinator.host, coordinator.port),
                kwargs=kwargs, name=f"sweep-worker-{index}")
            process.start()
            processes.append(process)

        waited = 0.0
        while not coordinator.wait(0.5):
            waited += 0.5
            if timeout is not None and waited >= timeout:
                raise CoordinatorError(
                    f"distributed sweep did not complete within {timeout} s")
            if not any(process.is_alive() for process in processes):
                raise CoordinatorError(
                    "every local worker exited before the sweep completed "
                    f"(exit codes {[p.exitcode for p in processes]})")
        return coordinator.summary()
    finally:
        coordinator.shutdown()
        for process in processes:
            process.join(timeout=10.0)
            if process.is_alive():
                process.terminate()
