"""Distributed sweep execution: a multi-sweep service over TCP JSON lines.

PR 3 made sweeps shardable (``--shard i/N``) but the partition was static —
a straggler shard (one branch-and-bound-heavy slice of the design space)
idles every other machine.  PR 4 replaced static partitioning with
**dynamic batch leasing** under a one-sweep-per-process coordinator; this
subsystem now hosts that machinery as a long-lived, multi-tenant service:

* :class:`SweepService` (`repro.distrib.service`) — one process serving
  many **named sweeps** concurrently: per-sweep queues, stores and journal
  checkpoints; integer **priorities** under weighted-fair lease scheduling
  (:func:`schedule_score`); **adaptive lease batching** that shrinks the
  cut as a sweep's remaining-queue/fleet ratio drops
  (:func:`adaptive_batch`); graceful **cancellation** (in-flight leases
  drain, journals compact, the partial store stays mergeable); heartbeats,
  re-leasing from dead or expired workers (at-least-once, duplicate
  completions validated bitwise), per-tenant failure isolation;
* :class:`SweepCoordinator` (`repro.distrib.coordinator`) — the original
  single-sweep API, now a thin drain-when-idle face over the service;
* :func:`run_worker` (`repro.distrib.worker`) — sweep-agnostic: one engine
  per process, stateless between batches, executing whichever sweep each
  lease names; safe to kill at any instant;
* :func:`submit_sweep` / :func:`sweep_status` / :func:`cancel_sweep` /
  :func:`list_sweeps` / :func:`wait_for_sweep` (`repro.distrib.client`) —
  one-shot wire clients for the version-2 control verbs;
* :func:`execute_sweep_distributed` (`repro.distrib.local`) — the
  one-machine convenience path behind ``execute_sweep(..., workers=N)``;
* `repro.distrib.protocol` / `repro.distrib.progress` — the JSON-lines
  wire format (version negotiated in hello/welcome) and the shared
  cells/s + ETA reporter.

The contract inherited from the whole engine/store stack: however cells are
leased, re-leased, duplicated or interleaved, and however many tenants
share the fleet, every sweep's final store is **byte-identical** to a
monolithic ``execute_sweep`` of the same spec.  ``repro-eval
serve/submit/status/cancel`` (plus the older ``coordinate``/``work``) are
the CLI faces.
"""

from repro.distrib.client import (
    ClientError,
    cancel_sweep,
    list_sweeps,
    submit_sweep,
    sweep_status,
    wait_for_sweep,
)
from repro.distrib.coordinator import SweepCoordinator
from repro.distrib.local import execute_sweep_distributed
from repro.distrib.progress import ProgressReporter, format_eta
from repro.distrib.protocol import (
    PROTOCOL_VERSION,
    MessageStream,
    ProtocolError,
    connect,
)
from repro.distrib.service import (
    DEFAULT_BATCH_SIZE,
    DEFAULT_CHECKPOINT_EVERY,
    DEFAULT_LEASE_TIMEOUT,
    CoordinatorError,
    Lease,
    ServiceError,
    SweepJob,
    SweepService,
    adaptive_batch,
    schedule_score,
)
from repro.distrib.worker import (
    WorkerError,
    connect_with_retry,
    run_worker,
    worker_process_entry,
)

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_CHECKPOINT_EVERY",
    "DEFAULT_LEASE_TIMEOUT",
    "ClientError",
    "CoordinatorError",
    "Lease",
    "ServiceError",
    "SweepCoordinator",
    "SweepJob",
    "SweepService",
    "adaptive_batch",
    "schedule_score",
    "cancel_sweep",
    "list_sweeps",
    "submit_sweep",
    "sweep_status",
    "wait_for_sweep",
    "execute_sweep_distributed",
    "ProgressReporter",
    "format_eta",
    "PROTOCOL_VERSION",
    "MessageStream",
    "ProtocolError",
    "connect",
    "WorkerError",
    "connect_with_retry",
    "run_worker",
    "worker_process_entry",
]
