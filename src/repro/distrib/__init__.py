"""Distributed sweep execution: coordinator/worker over TCP JSON lines.

PR 3 made sweeps shardable (``--shard i/N``) but the partition was static —
a straggler shard (one branch-and-bound-heavy slice of the design space)
idles every other machine.  This subsystem replaces static partitioning with
**dynamic batch leasing**:

* :class:`SweepCoordinator` (`repro.distrib.coordinator`) — owns the cell
  queue, leases batches of ``cell_key``\\ s on demand, tracks heartbeats,
  re-leases batches from dead or expired workers (at-least-once, duplicate
  completions validated bitwise), checkpoints completed records into the
  store's O(batch) journal, and emits a live progress/ETA line;
* :func:`run_worker` (`repro.distrib.worker`) — one engine per process,
  stateless between batches, safe to kill at any instant;
* :func:`execute_sweep_distributed` (`repro.distrib.local`) — the
  one-machine convenience path behind ``execute_sweep(..., workers=N)``;
* `repro.distrib.protocol` / `repro.distrib.progress` — the JSON-lines
  wire format and the shared cells/s + ETA reporter.

The contract inherited from the whole engine/store stack: however cells are
leased, re-leased, duplicated or interleaved, the final store is
**byte-identical** to a monolithic ``execute_sweep`` of the same spec.
``repro-eval coordinate`` / ``repro-eval work`` are the CLI faces.
"""

from repro.distrib.coordinator import (
    DEFAULT_BATCH_SIZE,
    DEFAULT_CHECKPOINT_EVERY,
    DEFAULT_LEASE_TIMEOUT,
    CoordinatorError,
    Lease,
    SweepCoordinator,
)
from repro.distrib.local import execute_sweep_distributed
from repro.distrib.progress import ProgressReporter, format_eta
from repro.distrib.protocol import (
    PROTOCOL_VERSION,
    MessageStream,
    ProtocolError,
    connect,
)
from repro.distrib.worker import (
    WorkerError,
    connect_with_retry,
    run_worker,
    worker_process_entry,
)

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_CHECKPOINT_EVERY",
    "DEFAULT_LEASE_TIMEOUT",
    "CoordinatorError",
    "Lease",
    "SweepCoordinator",
    "execute_sweep_distributed",
    "ProgressReporter",
    "format_eta",
    "PROTOCOL_VERSION",
    "MessageStream",
    "ProtocolError",
    "connect",
    "WorkerError",
    "connect_with_retry",
    "run_worker",
    "worker_process_entry",
]
