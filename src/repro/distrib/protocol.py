"""JSON-lines wire protocol between the sweep service and its peers.

Every message is one JSON object on one ``\\n``-terminated line over a plain
TCP connection — trivially debuggable with ``nc`` and exactly as portable as
the result stores themselves (floats serialize via ``repr``/``json`` and
round-trip bitwise, so a record that crosses the wire is byte-for-byte the
record a local run would have produced).

Version 2 (the multi-sweep service protocol).  Version 1 was the
single-sweep coordinator protocol, whose ``welcome`` embedded the one
sweep's axes meta; a v2 ``welcome`` carries no sweep — each ``lease`` names
its sweep and ships the axes meta instead, which is what makes workers
sweep-agnostic.  ``hello``/``welcome`` negotiate the version: a mismatch is
answered with a versioned ``error`` message (not a decode crash), so an old
worker against a new service — or vice versa — fails loudly and legibly.

Message vocabulary (``type`` field); *w* = worker, *s* = service,
*c* = client (submitter/observer):

=============  =========  ==================================================
type           direction  payload
=============  =========  ==================================================
``hello``      w/c → s    ``version``, ``worker`` (display name),
                          ``role`` (``"worker"`` or ``"client"``; absent
                          means worker)
``welcome``    s → w/c    ``version``, ``heartbeat_interval``
``request``    w → s      ask for work (any sweep)
``lease``      s → w      ``lease_id``, ``sweep`` (name), ``keys`` (batch
                          of cell_keys), ``spec`` (axes meta — the worker
                          rebuilds the `SweepSpec` and indexes cells by key)
``wait``       s → w      ``seconds`` — nothing leasable right now, retry
``done``       s → w      nothing left to serve, disconnect
``result``     w → s      ``lease_id``, ``sweep``, ``records`` (one per
                          leased cell)
``heartbeat``  w → s      extends the worker's lease deadlines (no reply)
``submit``     c → s      ``sweep`` (axes meta), ``name``, ``priority``,
                          optional ``batch_size``/``checkpoint_every``/
                          ``resume``/``adaptive``/``store`` (directory on
                          the service host); replied with ``submitted``
                          carrying the admission ``snapshot``
``status``     any → s    optional ``sweep`` — replied with a ``status``
                          message carrying per-sweep ``snapshot``\\ s
                          (counts, EWMA throughput, ETA)
``cancel``     c → s      ``sweep`` — replied with ``cancelled`` + snapshot
``list``       any → s    replied with ``sweeps`` (name → status)
``metrics``    any → s    observer request (no ``hello`` needed); replied
                          with a ``metrics`` message carrying ``snapshot``
                          (queue depth, throughput, lease latency — see
                          ``SweepService.metrics_snapshot``)
``error``      both       ``message``, ``version`` — fatal for this
                          connection only; other tenants are unaffected
=============  =========  ==================================================

The service only ever *replies* (one response per request-shaped message);
workers may interleave write-only ``heartbeat`` lines from a background
thread, so :class:`MessageStream` serializes writes with a lock.
"""

from __future__ import annotations

import json
import socket
import threading
from typing import Dict, Optional

#: Protocol version; hello/welcome must agree exactly.  2 = multi-sweep
#: service verbs (submit/status/cancel/list, per-lease sweep meta).
PROTOCOL_VERSION = 2

#: Maximum accepted line length (a result batch of a few hundred cells is
#: well under this; anything bigger is a framing error, not a message).
MAX_LINE_BYTES = 64 * 1024 * 1024


class ProtocolError(ValueError):
    """A malformed, unversioned, or out-of-vocabulary message."""


def encode_message(message: Dict) -> bytes:
    """One compact JSON line (sorted keys, so encodings are canonical)."""
    return (json.dumps(message, sort_keys=True, separators=(",", ":"))
            + "\n").encode("utf-8")


def decode_message(line: str) -> Dict:
    try:
        message = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"undecodable message line: {error}") from error
    if not isinstance(message, dict) or not isinstance(message.get("type"), str):
        raise ProtocolError(f"message must be an object with a string "
                            f"'type' field, got {line[:200]!r}")
    return message


class MessageStream:
    """A line-framed JSON message channel over one TCP socket.

    Reads happen from a single thread per peer; writes may come from
    several (a worker's main loop plus its heartbeat thread), so ``send``
    holds a lock around the whole ``sendall``.
    """

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._reader = sock.makefile("rb")
        self._write_lock = threading.Lock()

    def send(self, message: Dict) -> None:
        data = encode_message(message)
        with self._write_lock:
            self._sock.sendall(data)

    def recv(self) -> Optional[Dict]:
        """The next message, or ``None`` on a cleanly closed connection."""
        line = self._reader.readline(MAX_LINE_BYTES)
        if not line:
            return None
        if not line.endswith(b"\n"):
            raise ProtocolError("truncated or oversized message line")
        return decode_message(line.decode("utf-8"))

    def interrupt(self) -> None:
        """Unblock a peer thread parked in :meth:`recv`.

        Safe to call from *any* thread: it only shuts the socket down
        (``recv`` then sees EOF and returns ``None``), leaving the actual
        close to the thread that owns the stream.  Closing the buffered
        reader from a foreign thread would instead deadlock on the buffer
        lock the blocked read holds.
        """
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass

    def close(self) -> None:
        """Full close — call from the thread that does the ``recv`` calls."""
        self.interrupt()
        for action in (self._reader.close, self._sock.close):
            try:
                action()
            except (OSError, ValueError):
                pass

    # Context-manager sugar for tests and ad-hoc clients.
    def __enter__(self) -> "MessageStream":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def connect(host: str, port: int, timeout: float = 10.0) -> MessageStream:
    """Open a message stream to ``host:port`` (one connection attempt)."""
    sock = socket.create_connection((host, port), timeout=timeout)
    sock.settimeout(None)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return MessageStream(sock)
