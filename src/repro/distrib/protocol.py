"""JSON-lines wire protocol between the sweep coordinator and its workers.

Every message is one JSON object on one ``\\n``-terminated line over a plain
TCP connection — trivially debuggable with ``nc`` and exactly as portable as
the result stores themselves (floats serialize via ``repr``/``json`` and
round-trip bitwise, so a record that crosses the wire is byte-for-byte the
record a local run would have produced).

Message vocabulary (``type`` field):

=============  =========  ==================================================
type           direction  payload
=============  =========  ==================================================
``hello``      w → c      ``version``, ``worker`` (display name)
``welcome``    c → w      ``version``, ``sweep`` (axes meta — the worker
                          rebuilds the `SweepSpec` and indexes cells by
                          key), ``heartbeat_interval``, ``total_cells``
``request``    w → c      ask for work
``lease``      c → w      ``lease_id``, ``keys`` (batch of cell_keys)
``wait``       c → w      ``seconds`` — nothing leasable right now, retry
``done``       c → w      sweep complete, disconnect
``result``     w → c      ``lease_id``, ``records`` (one per leased cell)
``heartbeat``  w → c      extends the worker's lease deadlines (no reply)
``metrics``    any → c    observer request (no ``hello`` needed); replied
                          with a ``metrics`` message carrying ``snapshot``
                          (queue depth, throughput, lease latency — see
                          ``SweepCoordinator.metrics_snapshot``)
``error``      both       ``message`` — fatal, close the connection
=============  =========  ==================================================

The coordinator only ever *replies* (one response per ``request``); workers
may interleave write-only ``heartbeat`` lines from a background thread, so
:class:`MessageStream` serializes writes with a lock.
"""

from __future__ import annotations

import json
import socket
import threading
from typing import Dict, Optional

#: Protocol version; hello/welcome must agree exactly.
PROTOCOL_VERSION = 1

#: Maximum accepted line length (a result batch of a few hundred cells is
#: well under this; anything bigger is a framing error, not a message).
MAX_LINE_BYTES = 64 * 1024 * 1024


class ProtocolError(ValueError):
    """A malformed, unversioned, or out-of-vocabulary message."""


def encode_message(message: Dict) -> bytes:
    """One compact JSON line (sorted keys, so encodings are canonical)."""
    return (json.dumps(message, sort_keys=True, separators=(",", ":"))
            + "\n").encode("utf-8")


def decode_message(line: str) -> Dict:
    try:
        message = json.loads(line)
    except json.JSONDecodeError as error:
        raise ProtocolError(f"undecodable message line: {error}") from error
    if not isinstance(message, dict) or not isinstance(message.get("type"), str):
        raise ProtocolError(f"message must be an object with a string "
                            f"'type' field, got {line[:200]!r}")
    return message


class MessageStream:
    """A line-framed JSON message channel over one TCP socket.

    Reads happen from a single thread per peer; writes may come from
    several (a worker's main loop plus its heartbeat thread), so ``send``
    holds a lock around the whole ``sendall``.
    """

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._reader = sock.makefile("rb")
        self._write_lock = threading.Lock()

    def send(self, message: Dict) -> None:
        data = encode_message(message)
        with self._write_lock:
            self._sock.sendall(data)

    def recv(self) -> Optional[Dict]:
        """The next message, or ``None`` on a cleanly closed connection."""
        line = self._reader.readline(MAX_LINE_BYTES)
        if not line:
            return None
        if not line.endswith(b"\n"):
            raise ProtocolError("truncated or oversized message line")
        return decode_message(line.decode("utf-8"))

    def interrupt(self) -> None:
        """Unblock a peer thread parked in :meth:`recv`.

        Safe to call from *any* thread: it only shuts the socket down
        (``recv`` then sees EOF and returns ``None``), leaving the actual
        close to the thread that owns the stream.  Closing the buffered
        reader from a foreign thread would instead deadlock on the buffer
        lock the blocked read holds.
        """
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass

    def close(self) -> None:
        """Full close — call from the thread that does the ``recv`` calls."""
        self.interrupt()
        for action in (self._reader.close, self._sock.close):
            try:
                action()
            except (OSError, ValueError):
                pass

    # Context-manager sugar for tests and ad-hoc clients.
    def __enter__(self) -> "MessageStream":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def connect(host: str, port: int, timeout: float = 10.0) -> MessageStream:
    """Open a message stream to ``host:port`` (one connection attempt)."""
    sock = socket.create_connection((host, port), timeout=timeout)
    sock.settimeout(None)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return MessageStream(sock)
