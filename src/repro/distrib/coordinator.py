"""Single-sweep compatibility face over the multi-sweep service.

PR 4 introduced :class:`SweepCoordinator` as a standalone server owning
exactly one sweep; the multi-tenant refactor moved the listener, lease
scheduler, journaling and fault tolerance into
:class:`repro.distrib.service.SweepService`.  This module keeps the
original one-sweep API — construct with a spec, ``start()``, ``run()``,
``summary()`` — as a thin wrapper that submits its single sweep to a
private service configured to *drain when idle* (workers are told ``done``
once the sweep is terminal, exactly the old behavior).

Everything documented for the old coordinator still holds, because the
service inherited its mechanics wholesale:

* **Dynamic load balancing** — batches of ``cell_key``\\ s leased on
  demand, cut from enumeration order so a batch usually shares one
  compiled program.  Batch size now follows the service's *adaptive* policy
  (:func:`repro.distrib.service.adaptive_batch`): ``batch_size`` is the
  ceiling, and cuts shrink toward 1 as the queue drains so the tail is
  spread across the fleet.
* **Fault tolerance** — heartbeat-extended lease deadlines, re-queue on
  dropped connections or expiry, at-least-once execution with duplicate
  completions validated **bitwise**; disagreement fails the sweep.
* **Determinism** — the final store is **byte-identical** to a monolithic
  ``execute_sweep`` of the same spec, however batches were interleaved.
* **Checkpoints** — completed records stream into the store's O(batch)
  journal every ``checkpoint_every`` cells; a crashed coordinator restarts
  with ``resume=True``.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.distrib.service import (
    DEFAULT_BATCH_SIZE,
    DEFAULT_CHECKPOINT_EVERY,
    DEFAULT_LEASE_TIMEOUT,
    CoordinatorError,
    Lease,
    SweepService,
)
from repro.engine.results import ResultStore
from repro.explore.sweep import SweepSpec

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_CHECKPOINT_EVERY",
    "DEFAULT_LEASE_TIMEOUT",
    "CoordinatorError",
    "Lease",
    "SweepCoordinator",
]


class SweepCoordinator:
    """Serve one sweep to a fleet of workers; collect a canonical store.

    Life cycle: construct → :meth:`start` (binds the listener, returns
    immediately) → workers connect → :meth:`wait`/:meth:`run` → summary.
    This is the drain-when-idle single-tenant shape of
    :class:`~repro.distrib.service.SweepService`: one named sweep is
    submitted up front, and workers are released with ``done`` the moment
    it reaches a terminal state.  ``adaptive=False`` pins every lease to
    the fixed ``batch_size`` cut (the pre-refactor behavior, kept for
    benchmarking the adaptive tail policy against).
    """

    def __init__(self, sweep: SweepSpec,
                 store: Optional[ResultStore] = None,
                 name: str = "sweep",
                 host: str = "127.0.0.1",
                 port: int = 0,
                 shard: Optional[Tuple[int, int]] = None,
                 resume: bool = False,
                 batch_size: int = DEFAULT_BATCH_SIZE,
                 lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
                 checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
                 progress: bool = False,
                 adaptive: bool = True):
        self.sweep = sweep
        self.store = store
        self.name = name
        self.host = host
        self.batch_size = batch_size
        self.lease_timeout = lease_timeout
        self.resume = resume
        self.service = SweepService(
            host=host, port=port, store=store,
            lease_timeout=lease_timeout,
            checkpoint_every=checkpoint_every,
            drain_when_idle=True, progress=progress)
        # Submitting before start() keeps the old construct-time
        # validation: bad batch sizes, resume-without-store and cell-key
        # collisions all raise here, not when the first worker connects.
        self._job = self.service.submit(
            sweep, name, store=store, shard=shard, resume=resume,
            batch_size=batch_size, checkpoint_every=checkpoint_every,
            adaptive=adaptive)

    # ------------------------------------------------------------------ #
    # Server life cycle
    # ------------------------------------------------------------------ #
    @property
    def port(self) -> int:
        return self.service.port

    @property
    def done(self) -> bool:
        return self._job.done.is_set()

    def start(self) -> "SweepCoordinator":
        """Bind the listener and start serving; returns immediately."""
        self.service.start()
        return self

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the sweep completes (or *timeout*); True when done."""
        return self._job.done.wait(timeout)

    def run(self, timeout: Optional[float] = None) -> Dict:
        """Block until completion, then finalize and return the summary."""
        if not self.wait(timeout):
            self.shutdown()
            raise CoordinatorError(
                f"sweep did not complete within {timeout} s "
                f"({self._progress_snapshot()})")
        return self.summary()

    def shutdown(self) -> None:
        """Stop serving (idempotent); outstanding connections get closed."""
        self.service.shutdown()

    def summary(self) -> Dict:
        """The finalized ``execute_sweep``-shaped summary of the sweep."""
        if not self._job.done.is_set():
            raise RuntimeError("sweep is not complete yet")
        self.shutdown()
        return self.service.summary(self.name)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict:
        """Point-in-time counters (for tests, monitoring, and progress)."""
        return self.service.job_stats(self.name)

    def metrics_snapshot(self) -> Dict:
        """The service metrics payload (single tenant: one ``sweep`` label).

        See :meth:`repro.distrib.service.SweepService.metrics_snapshot` —
        top-level aggregates plus the per-sweep block, all rendered by
        :func:`repro.telemetry.render_prometheus`.
        """
        return self.service.metrics_snapshot()

    def _progress_snapshot(self) -> str:
        stats = self.stats()
        return (f"{stats['done']}/{stats['total']} cells, "
                f"{stats['workers']} workers, {stats['leases']} leases")
