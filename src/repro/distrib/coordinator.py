"""The sweep coordinator: dynamic batch leasing with fault tolerance.

The coordinator owns one :class:`~repro.explore.SweepSpec` (optionally one
shard of it) and farms its cells out to any number of worker processes over
the JSON-lines TCP protocol (`repro.distrib.protocol`):

* **Dynamic load balancing.**  Cells are leased in *batches of cell_keys*,
  handed out on demand: a worker that finishes early immediately gets the
  next batch, so one straggler branch-and-bound batch never idles the rest
  of the fleet the way a static ``--shard i/N`` partition can.  Batches are
  cut from the sweep's enumeration order (benchmark varies slowest), so a
  batch usually shares one compiled program — the same locality the engine's
  process pool exploits.
* **Fault tolerance.**  Every lease carries a deadline, extended by worker
  heartbeats.  A dead worker (closed connection) or an expired lease puts
  the batch back at the *front* of the queue for the next requester.
  Execution is therefore at-least-once; a batch may legitimately complete
  twice.  Duplicate completions are validated **bitwise** against the first
  result (the same agreement rule as :meth:`ResultStore.merge`), and any
  disagreement aborts the run — a fleet that cannot reproduce a cell must
  not silently produce a store.
* **Determinism.**  Workers compute the exact same floats a local run does
  (engine invariant, asserted since PR 1), records cross the wire through
  JSON (floats round-trip via ``repr``), and the final store is written
  through the same sorted keyed-store path as a monolithic run — so the
  distributed store is **byte-identical** to ``execute_sweep`` of the same
  spec, no matter how batches were interleaved, re-leased, or duplicated.
* **Checkpoints.**  Completed records stream into the store's journal
  sidecar every ``checkpoint_every`` cells (O(batch) per checkpoint); the
  final compaction produces the canonical sorted store.  A crashed
  coordinator restarts with ``resume=True`` and re-runs only missing cells.
"""

from __future__ import annotations

import socket
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.distrib.progress import ProgressReporter
from repro.distrib.protocol import (
    PROTOCOL_VERSION,
    MessageStream,
    ProtocolError,
)
from repro.engine.results import ResultStore
from repro.explore.sweep import (
    SweepCell,
    SweepSpec,
    load_resumable_records,
    shard_cells,
)
from repro.telemetry import RateEwma, get_telemetry
from repro.telemetry.metrics import percentile

#: Cells per lease.  Small enough that a straggler holds little work,
#: large enough that a batch amortizes one compile.
DEFAULT_BATCH_SIZE = 4

#: Seconds a lease may go without a heartbeat before it is re-queued.
DEFAULT_LEASE_TIMEOUT = 60.0

#: Completed cells between journal checkpoints.
DEFAULT_CHECKPOINT_EVERY = 32


class CoordinatorError(RuntimeError):
    """The distributed run cannot produce a trustworthy store."""


@dataclass
class Lease:
    """One outstanding batch: who holds it and until when."""

    lease_id: int
    keys: List[str]
    worker: str
    deadline: float
    #: Monotonic grant time; completion minus grant is the lease latency
    #: sampled by the metrics plane.
    granted: float = 0.0


class SweepCoordinator:
    """Serve one sweep to a fleet of workers; collect a canonical store.

    Life cycle: construct → :meth:`start` (binds the listener, returns
    immediately) → workers connect → :meth:`wait`/:meth:`run` → summary.
    All shared state is guarded by one lock; per-connection reader threads
    and the lease reaper are the only writers.
    """

    def __init__(self, sweep: SweepSpec,
                 store: Optional[ResultStore] = None,
                 name: str = "sweep",
                 host: str = "127.0.0.1",
                 port: int = 0,
                 shard: Optional[Tuple[int, int]] = None,
                 resume: bool = False,
                 batch_size: int = DEFAULT_BATCH_SIZE,
                 lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
                 checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
                 progress: bool = False):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if lease_timeout <= 0:
            raise ValueError("lease_timeout must be positive")
        if resume and store is None:
            raise ValueError("resume requires a result store")
        self.sweep = sweep
        self.store = store
        self.name = name
        self.host = host
        self._requested_port = port
        self.batch_size = batch_size
        self.lease_timeout = lease_timeout
        self.heartbeat_interval = max(0.2, lease_timeout / 4.0)
        self.checkpoint_every = checkpoint_every
        self.resume = resume

        cells = sweep.cells()
        if shard is not None:
            cells = shard_cells(cells, shard[0], shard[1])
        self._cells: List[SweepCell] = cells
        self._by_key: Dict[str, SweepCell] = {c.key: c for c in cells}
        if len(self._by_key) != len(cells):
            raise ValueError("cell_key collision within one sweep "
                             "(two distinct cells hashed identically)")
        self._meta = sweep.meta()
        if shard is not None:
            self._meta["shard"] = [shard[0], shard[1]]

        self._stored: Dict[str, Dict] = {}
        if store is not None and not resume \
                and store.journal_path(name).exists():
            # A fresh run overwrites the store; a stale journal from some
            # earlier crashed run must not leak into it at compaction time.
            store.journal_path(name).unlink()
        if resume:
            # Shared with the in-process resume path: axes validated before
            # any journal is folded, foreign stores/journals refused.
            self._stored = load_resumable_records(store, name, sweep,
                                                  self._by_key)
        self._pending: Deque[str] = deque(
            c.key for c in cells if c.key not in self._stored)
        self._completed: Dict[str, Dict] = {}
        self._journal_tail: List[Dict] = []
        self._journaled = False
        self._leases: Dict[int, Lease] = {}
        self._next_lease_id = 1
        self._active_workers: Dict[str, int] = {}   # name -> completed cells
        self._connected = 0
        self._workers_seen = 0
        self._requeued = 0
        self._duplicates = 0
        self._failure: Optional[str] = None

        # Metrics plane (served to `repro-eval metrics` via the ``metrics``
        # protocol message; state lives here, no telemetry sink required).
        self._started = time.monotonic()
        self._overall_rate = RateEwma(start=self._started)
        self._worker_rates: Dict[str, RateEwma] = {}
        self._heartbeat_at: Dict[str, float] = {}
        self._lease_latencies: Deque[float] = deque(maxlen=256)
        self._reaped = 0

        self._lock = threading.Lock()
        #: Serializes journal file writes only — checkpoints fsync outside
        #: the state lock so disk latency never stalls lease hand-out or
        #: heartbeat processing for the rest of the fleet.
        self._journal_lock = threading.Lock()
        self._done = threading.Event()
        self._stop = threading.Event()
        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._streams: List[MessageStream] = []
        self._reporter = (ProgressReporter(len(cells), label=f"distrib:{name}")
                          if progress else None)
        if not self._pending:
            self._done.set()  # everything already stored (a completed resume)

    # ------------------------------------------------------------------ #
    # Server life cycle
    # ------------------------------------------------------------------ #
    @property
    def port(self) -> int:
        if self._listener is None:
            raise RuntimeError("coordinator not started")
        return self._listener.getsockname()[1]

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def start(self) -> "SweepCoordinator":
        """Bind the listener and start serving; returns immediately."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self._requested_port))
        listener.listen(64)
        listener.settimeout(0.2)
        self._listener = listener
        for target, tag in ((self._accept_loop, "accept"),
                            (self._reaper_loop, "reaper")):
            thread = threading.Thread(target=target, daemon=True,
                                      name=f"coordinator-{tag}")
            thread.start()
            self._threads.append(thread)
        return self

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the sweep completes (or *timeout*); True when done."""
        return self._done.wait(timeout)

    def run(self, timeout: Optional[float] = None) -> Dict:
        """Block until completion, then finalize and return the summary."""
        if not self.wait(timeout):
            self.shutdown()
            raise CoordinatorError(
                f"sweep did not complete within {timeout} s "
                f"({self._progress_snapshot()})")
        return self.summary()

    def shutdown(self) -> None:
        """Stop serving (idempotent); outstanding connections get closed."""
        self._stop.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._lock:
            streams = list(self._streams)
        for stream in streams:
            # Unblock client reader threads parked in recv(); each thread
            # closes its own stream on the way out (closing the buffered
            # reader from here would deadlock on its read lock).
            stream.interrupt()
        for thread in list(self._threads):
            thread.join(timeout=5.0)

    def summary(self) -> Dict:
        """Finalize the store and return an ``execute_sweep``-shaped summary."""
        if not self._done.is_set():
            raise RuntimeError("sweep is not complete yet")
        self.shutdown()
        with self._lock:
            if self._failure is not None:
                raise CoordinatorError(self._failure)
            combined = dict(self._stored)
            combined.update(self._completed)
            records = [combined[key] for key in sorted(combined)]
            meta = dict(self._meta)
            meta["cells"] = len(records)
            summary = {
                "records": records, "meta": meta, "cells": len(self._cells),
                "computed": len(self._completed),
                "skipped": len(self._stored), "rechecked": 0, "path": None,
                "distrib": {
                    "workers": self._workers_seen,
                    "requeued_batches": self._requeued,
                    "duplicate_records": self._duplicates,
                    "cells_by_worker": dict(self._active_workers),
                },
            }
            if self.store is not None:
                with get_telemetry().span("store.checkpoint", kind="final",
                                          records=len(records)):
                    if self._journaled:
                        # Checkpoints were written; flush the tail and fold
                        # the journal into the canonical sorted store in one
                        # pass.
                        with self._journal_lock:
                            if self._journal_tail:
                                self.store.append_journal(
                                    self.name, self._journal_tail,
                                    meta=self._meta)
                                self._journal_tail = []
                            path = self.store.compact_journal(
                                self.name, merge_store=self.resume)
                    elif self.resume:
                        path = self.store.append_keyed(
                            self.name, list(self._completed.values()),
                            meta=meta)
                    else:
                        path = self.store.save_keyed(self.name, records,
                                                     meta=meta)
                summary["path"] = str(path)
        if self._reporter is not None:
            self._reporter.update(summary["computed"] + summary["skipped"],
                                  extra="complete", force=True)
        return summary

    # ------------------------------------------------------------------ #
    # Accept / reaper threads
    # ------------------------------------------------------------------ #
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            conn.settimeout(None)
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            thread = threading.Thread(target=self._serve_client,
                                      args=(MessageStream(conn),),
                                      daemon=True, name="coordinator-client")
            thread.start()
            self._threads.append(thread)

    def _reaper_loop(self) -> None:
        tick = min(1.0, self.lease_timeout / 4.0)
        while not self._stop.is_set() and not self._done.is_set():
            self._stop.wait(tick)
            now = time.monotonic()
            with self._lock:
                expired = [lease for lease in self._leases.values()
                           if lease.deadline < now]
                for lease in expired:
                    self._requeue_locked(lease)
                self._reaped += len(expired)
            self._emit_progress()

    def _requeue_locked(self, lease: Lease) -> None:
        """Put a lease's unfinished keys back at the front of the queue."""
        self._leases.pop(lease.lease_id, None)
        unfinished = [key for key in lease.keys
                      if key not in self._completed and key not in self._stored]
        if unfinished:
            self._pending.extendleft(reversed(unfinished))
            self._requeued += 1

    # ------------------------------------------------------------------ #
    # Per-connection protocol
    # ------------------------------------------------------------------ #
    def _serve_client(self, stream: MessageStream) -> None:
        worker: Optional[str] = None
        with self._lock:
            self._streams.append(stream)
        try:
            while not self._stop.is_set():
                message = stream.recv()
                if message is None:
                    return  # worker gone; finally-block requeues its leases
                kind = message["type"]
                if kind == "hello":
                    worker = self._register(message)
                    stream.send({
                        "type": "welcome", "version": PROTOCOL_VERSION,
                        "sweep": self.sweep.meta(), "name": self.name,
                        "total_cells": len(self._cells),
                        "heartbeat_interval": self.heartbeat_interval,
                    })
                elif kind == "metrics":
                    # Observer request, allowed without a hello: a metrics
                    # scraper is not a worker and holds no leases.  The
                    # connection stays open so a monitor can poll.
                    stream.send({"type": "metrics",
                                 "snapshot": self.metrics_snapshot()})
                elif worker is None:
                    raise ProtocolError(f"first message must be hello, "
                                        f"got {kind!r}")
                elif kind == "request":
                    reply = self._assign(worker)
                    stream.send(reply)
                    if reply["type"] == "done":
                        return
                elif kind == "heartbeat":
                    self._extend_leases(worker)
                elif kind == "result":
                    self._complete(worker, message)
                elif kind == "error":
                    raise ProtocolError(
                        f"worker {worker} reported: {message.get('message')}")
                else:
                    raise ProtocolError(f"unknown message type {kind!r}")
        except (ProtocolError, ValueError, OSError) as error:
            try:
                stream.send({"type": "error", "message": str(error)})
            except OSError:
                pass
        finally:
            with self._lock:
                for lease in list(self._leases.values()):
                    if lease.worker == worker:
                        self._requeue_locked(lease)
                if worker is not None:
                    self._connected -= 1
                if stream in self._streams:
                    self._streams.remove(stream)
                # Prune this handler from the join list — an elastic fleet
                # reconnects many times over a long sweep, and the list
                # must not grow (nor shutdown joins slow down) with every
                # connection that ever existed.
                try:
                    self._threads.remove(threading.current_thread())
                except ValueError:
                    pass
            stream.close()
            self._emit_progress()

    def _register(self, message: Dict) -> str:
        if message.get("version") != PROTOCOL_VERSION:
            raise ProtocolError(
                f"protocol version mismatch: coordinator speaks "
                f"{PROTOCOL_VERSION}, worker sent {message.get('version')!r}")
        base = str(message.get("worker") or "worker")
        with self._lock:
            self._workers_seen += 1
            self._connected += 1
            worker = f"{base}#{self._workers_seen}"
            self._active_workers.setdefault(worker, 0)
        return worker

    def _assign(self, worker: str) -> Dict:
        with self._lock:
            if self._failure is not None:
                return {"type": "error", "message": self._failure}
            if self._done.is_set():
                return {"type": "done"}
            # Skip keys that were re-queued (expired lease) but completed
            # anyway before being re-leased — at-least-once execution means
            # a late result may beat its replacement to the queue, and
            # re-simulating a cell whose record is already held is waste.
            keys: List[str] = []
            while self._pending and len(keys) < self.batch_size:
                key = self._pending.popleft()
                if key not in self._completed and key not in self._stored:
                    keys.append(key)
            if not keys:
                return {"type": "wait", "seconds": 0.5}
            now = time.monotonic()
            lease = Lease(lease_id=self._next_lease_id, keys=keys,
                          worker=worker, deadline=now + self.lease_timeout,
                          granted=now)
            self._next_lease_id += 1
            self._leases[lease.lease_id] = lease
            return {"type": "lease", "lease_id": lease.lease_id, "keys": keys}

    def _extend_leases(self, worker: str) -> None:
        now = time.monotonic()
        deadline = now + self.lease_timeout
        with self._lock:
            self._heartbeat_at[worker] = now
            for lease in self._leases.values():
                if lease.worker == worker:
                    lease.deadline = deadline

    def _complete(self, worker: str, message: Dict) -> None:
        records = message.get("records")
        if not isinstance(records, list):
            raise ProtocolError("result message must carry a records list")
        now = time.monotonic()
        new_cells = 0
        with self._lock:
            # The lease may already be gone (expired and re-leased) — the
            # records are still valid work and go through the same duplicate
            # validation as any other completion (at-least-once execution).
            lease = self._leases.pop(message.get("lease_id"), None)
            if lease is not None:
                self._lease_latencies.append(now - lease.granted)
            self._heartbeat_at[worker] = now
            for record in records:
                key = record.get("cell_key") if isinstance(record, dict) else None
                if key not in self._by_key:
                    # Put the batch's unfinished cells back before dropping
                    # this connection: a bad result must not strand a lease.
                    if lease is not None:
                        self._requeue_locked(lease)
                    raise ProtocolError(
                        f"result for unknown cell {key!r} (not in this sweep)")
                existing = self._completed.get(key, self._stored.get(key))
                if existing is not None:
                    self._duplicates += 1
                    if existing != record:
                        self._failure = (
                            f"cell {key} completed twice with DIFFERENT "
                            f"records (worker {worker}); the fleet is not "
                            f"bitwise-reproducible — refusing to write a "
                            f"store")
                        self._done.set()
                        return
                    continue
                self._completed[key] = record
                self._journal_tail.append(record)
                self._active_workers[worker] = \
                    self._active_workers.get(worker, 0) + 1
                new_cells += 1
            if new_cells:
                self._overall_rate.observe(new_cells, now)
                self._worker_rates.setdefault(
                    worker, RateEwma(start=self._started)
                ).observe(new_cells, now)
            to_journal: Optional[List[Dict]] = None
            if (self.store is not None and self.checkpoint_every
                    and len(self._journal_tail) >= self.checkpoint_every):
                to_journal = self._journal_tail
                self._journal_tail = []
                self._journaled = True
            if len(self._completed) + len(self._stored) >= len(self._cells):
                self._done.set()
        if to_journal:
            try:
                with self._journal_lock, \
                        get_telemetry().span("store.checkpoint",
                                             kind="journal",
                                             records=len(to_journal)):
                    self.store.append_journal(self.name, to_journal,
                                              meta=self._meta)
            except Exception as error:
                # The records were already popped from the tail; losing the
                # write silently would finalize a store missing cells while
                # claiming success.  Abort the run loudly instead.
                with self._lock:
                    self._failure = (
                        f"journal checkpoint failed ({error}); aborting "
                        f"rather than finalize a store with missing cells")
                    self._done.set()
        self._emit_progress()

    # ------------------------------------------------------------------ #
    # Introspection / progress
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict:
        """Point-in-time counters (for tests, monitoring, and progress)."""
        with self._lock:
            return {
                "total": len(self._cells),
                "done": len(self._completed) + len(self._stored),
                "computed": len(self._completed),
                "skipped": len(self._stored),
                "pending": len(self._pending),
                "leased": sum(len(l.keys) for l in self._leases.values()),
                "leases": len(self._leases),
                "workers": self._connected,
                "workers_seen": self._workers_seen,
                "requeued_batches": self._requeued,
                "duplicate_records": self._duplicates,
                "cells_by_worker": dict(self._active_workers),
                "failure": self._failure,
            }

    def metrics_snapshot(self) -> Dict:
        """The JSON payload served for a ``metrics`` protocol request.

        Everything :func:`repro.telemetry.render_prometheus` knows how to
        render: queue depth, lease/worker counts, the overall and per-worker
        throughput EWMAs, lease latency p50/p95 over the last 256 leases,
        per-worker heartbeat ages, and the EWMA-based ETA.  All state lives
        on the coordinator, so the metrics plane works with or without a
        ``--telemetry`` sink.
        """
        now = time.monotonic()
        with self._lock:
            total = len(self._cells)
            done = len(self._completed) + len(self._stored)
            throughput = self._overall_rate.rate
            remaining = total - done
            if remaining <= 0:
                eta: Optional[float] = 0.0
            elif throughput:
                eta = remaining / throughput
            else:
                eta = None
            snapshot: Dict = {
                "total": total,
                "done": done,
                "pending": len(self._pending),
                "leased": sum(len(l.keys) for l in self._leases.values()),
                "leases": len(self._leases),
                "workers": self._connected,
                "workers_seen": self._workers_seen,
                "requeued_batches": self._requeued,
                "reaped_leases": self._reaped,
                "duplicate_records": self._duplicates,
                "throughput": throughput,
                "eta_seconds": eta,
                "worker_cells": dict(self._active_workers),
                "worker_throughput": {
                    name: rate.rate
                    for name, rate in self._worker_rates.items()
                    if rate.rate is not None},
                "heartbeat_age_seconds": {
                    name: now - at
                    for name, at in self._heartbeat_at.items()},
                "lease_latency_seconds": {},
            }
            latencies = list(self._lease_latencies)
        p50 = percentile(latencies, 0.5)
        if p50 is not None:
            snapshot["lease_latency_seconds"] = {
                "0.5": p50, "0.95": percentile(latencies, 0.95)}
        hub = get_telemetry()
        if hub.enabled:
            hub.set_gauge("coordinator.queue_depth", snapshot["pending"])
            hub.set_gauge("coordinator.outstanding_leases",
                          snapshot["leases"])
            hub.set_gauge("coordinator.workers_connected",
                          snapshot["workers"])
        return snapshot

    def _progress_snapshot(self) -> str:
        stats = self.stats()
        return (f"{stats['done']}/{stats['total']} cells, "
                f"{stats['workers']} workers, {stats['leases']} leases")

    def _emit_progress(self) -> None:
        hub = get_telemetry()
        if hub.enabled:
            with self._lock:
                hub.set_gauge("coordinator.queue_depth", len(self._pending))
                hub.set_gauge("coordinator.outstanding_leases",
                              len(self._leases))
                hub.set_gauge("coordinator.workers_connected", self._connected)
        if self._reporter is None or self._done.is_set():
            return  # the final line is emitted once, by summary()
        stats = self.stats()
        self._reporter.update(
            stats["done"],
            extra=(f"{stats['workers']} workers, {stats['leased']} leased, "
                   f"{stats['requeued_batches']} requeued"))
