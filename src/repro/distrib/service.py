"""The multi-sweep service: named sweeps, priorities, adaptive leases.

PR 4's coordinator ran exactly one sweep per process with a fixed fleet.
:class:`SweepService` promotes that into a long-lived, multi-tenant server:
any number of **named sweeps** live concurrently inside one process, each
with its own queue, store file, journal checkpoints and counters, all
served by one sweep-agnostic worker fleet over the JSON-lines protocol
(`repro.distrib.protocol`, version 2).

* **Named sweeps.**  ``submit()`` (in process or over the wire) registers a
  :class:`SweepJob` under a unique name.  Every job keeps the full per-sweep
  state the old coordinator kept globally — pending queue, stored/completed
  records, journal tail, throughput EWMA — so tenants cannot observe each
  other through shared counters or shared store files.
* **Priority scheduling.**  Leases are handed out by weighted fair share:
  each admitting job is scored ``priority / (leased_cells + 1)`` and the
  highest score wins (ties break to higher priority, then submission
  order).  A priority-3 sweep therefore holds ~3x the outstanding cells of
  a priority-1 sweep on the same fleet, and the shares rebalance instantly
  when sweeps are submitted or cancelled mid-run (see
  :func:`schedule_score`).
* **Adaptive lease tails.**  Batch size is no longer a fixed cut: each
  lease takes ``adaptive_batch(remaining, fleet, max_batch)`` cells, which
  equals ``max_batch`` while the queue is deep and shrinks toward 1 as the
  remaining-work/fleet ratio drops — the hp-adaptive-FEM rebalancing
  insight that a draining queue must be spread thin so no straggler holds
  the tail (``benchmarks/bench_service.py`` pins the win over fixed cuts).
* **Cancellation.**  ``cancel()`` stops leasing a sweep immediately;
  in-flight leases drain (their results are still accepted and journaled),
  then the journal is compacted so the partial store is a well-formed keyed
  store — mergeable and resumable like any shard.
* **The invariant.**  Per sweep, nothing changed: every completed sweep's
  store is **byte-identical** to a monolithic ``execute_sweep`` of the same
  spec, no matter how many tenants shared the fleet, how leases were
  interleaved, re-leased or duplicated, or which workers were SIGKILLed
  (CI submits two concurrent sweeps, cancels a third, kills a worker, and
  ``cmp``s every completed store against its monolithic reference).

Failure is per-tenant: a sweep whose fleet produces conflicting duplicate
records (or whose journal write fails) flips to ``failed`` and stops
leasing, without disturbing the other tenants.  The single-sweep
:class:`~repro.distrib.coordinator.SweepCoordinator` is now a thin
compatibility face over this service.
"""

from __future__ import annotations

import socket
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.distrib.progress import ProgressReporter
from repro.distrib.protocol import (
    PROTOCOL_VERSION,
    MessageStream,
    ProtocolError,
)
from repro.engine.results import ResultStore
from repro.explore.sweep import (
    SweepCell,
    SweepSpec,
    load_resumable_records,
    shard_cells,
)
from repro.telemetry import RateEwma, get_telemetry
from repro.telemetry.metrics import percentile

#: Ceiling on cells per lease.  Small enough that a straggler holds little
#: work, large enough that a deep-queue batch amortizes one compile.
DEFAULT_BATCH_SIZE = 4

#: Seconds a lease may go without a heartbeat before it is re-queued.
DEFAULT_LEASE_TIMEOUT = 60.0

#: Completed cells between journal checkpoints.
DEFAULT_CHECKPOINT_EVERY = 32

#: Adaptive batching aims to leave every connected worker about this many
#: more leases before a sweep's queue runs dry, so the tail is spread
#: across the fleet instead of parked in one straggler's batch.
TAIL_LEASES_PER_WORKER = 4

#: Job life cycle.  ``running`` admits leases; ``cancelling`` drains
#: in-flight leases; the last three are terminal.
JOB_RUNNING = "running"
JOB_CANCELLING = "cancelling"
JOB_COMPLETED = "completed"
JOB_CANCELLED = "cancelled"
JOB_FAILED = "failed"
TERMINAL_STATES = (JOB_COMPLETED, JOB_CANCELLED, JOB_FAILED)


class ServiceError(RuntimeError):
    """A sweep cannot be admitted, found, or trusted by the service."""


class CoordinatorError(ServiceError):
    """The distributed run cannot produce a trustworthy store."""


def adaptive_batch(remaining: int, fleet: int, max_batch: int,
                   tail_leases: int = TAIL_LEASES_PER_WORKER) -> int:
    """Cells to lease from a queue of *remaining* cells to a *fleet*.

    The policy: while the queue is deep every lease takes ``max_batch``
    cells (locality — a batch usually shares one compiled program); once
    ``remaining`` falls under ``fleet * tail_leases * max_batch`` the cut
    shrinks so that roughly ``tail_leases`` leases per worker remain,
    bottoming out at single-cell leases for the final stretch.  This is the
    dynamic-load-balancing tail rule: a draining queue handed out in big
    fixed batches ends with one worker holding the whole tail, while a
    shrinking cut keeps every worker busy to the end.

    >>> adaptive_batch(remaining=1000, fleet=2, max_batch=4)
    4
    >>> adaptive_batch(remaining=16, fleet=2, max_batch=4)
    2
    >>> adaptive_batch(remaining=3, fleet=2, max_batch=4)
    1
    """
    if remaining <= 0:
        return 0
    fleet = max(1, fleet)
    target = -(-remaining // (fleet * max(1, tail_leases)))  # ceil division
    return max(1, min(max_batch, target))


def schedule_score(priority: int, leased_cells: int) -> float:
    """Weighted-fair-share score of one admitting sweep.

    The next lease goes to the sweep with the highest score, so the
    steady-state outstanding-cell shares converge to the priority ratio:

    >>> schedule_score(3, leased_cells=1) > schedule_score(1, leased_cells=0)
    True
    >>> schedule_score(1, leased_cells=0) > schedule_score(3, leased_cells=3)
    True
    """
    return priority / (leased_cells + 1.0)


@dataclass
class Lease:
    """One outstanding batch: which sweep, who holds it, until when."""

    lease_id: int
    sweep: str
    keys: List[str]
    worker: str
    deadline: float
    #: Monotonic grant time; completion minus grant is the lease latency
    #: sampled by the metrics plane.
    granted: float = 0.0


@dataclass
class SweepJob:
    """Per-tenant state of one named sweep hosted by the service.

    Everything the old single-sweep coordinator kept as instance state now
    lives here, one copy per tenant; the service's lock guards all of it.
    """

    name: str
    sweep: SweepSpec
    store: Optional[ResultStore]
    priority: int
    order: int
    max_batch: int
    adaptive: bool
    checkpoint_every: int
    resume: bool
    meta: Dict
    cells: List[SweepCell] = field(default_factory=list)
    by_key: Dict[str, SweepCell] = field(default_factory=dict)
    stored: Dict[str, Dict] = field(default_factory=dict)
    pending: Deque[str] = field(default_factory=deque)
    completed: Dict[str, Dict] = field(default_factory=dict)
    journal_tail: List[Dict] = field(default_factory=list)
    journaled: bool = False
    status: str = JOB_RUNNING
    failure: Optional[str] = None
    requeued: int = 0
    duplicates: int = 0
    dropped_after_terminal: int = 0
    leased_cells: int = 0
    cells_by_worker: Dict[str, int] = field(default_factory=dict)
    rate: RateEwma = field(default_factory=RateEwma)
    done: "threading.Event" = field(default_factory=threading.Event)
    store_path: Optional[str] = None
    reporter: Optional[ProgressReporter] = None

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATES

    @property
    def done_cells(self) -> int:
        return len(self.completed) + len(self.stored)

    def snapshot(self, now: float) -> Dict:
        """Point-in-time per-sweep stats (status verb, metrics, progress)."""
        throughput = self.rate.rate
        remaining = len(self.pending) + self.leased_cells
        if self.status == JOB_COMPLETED or remaining <= 0:
            eta: Optional[float] = 0.0
        elif throughput:
            eta = remaining / throughput
        else:
            eta = None
        return {
            "status": self.status,
            "priority": self.priority,
            "total": len(self.cells),
            "done": self.done_cells,
            "computed": len(self.completed),
            "skipped": len(self.stored),
            "pending": len(self.pending),
            "leased": self.leased_cells,
            "requeued_batches": self.requeued,
            "duplicate_records": self.duplicates,
            "throughput": throughput,
            "eta_seconds": eta,
            "failure": self.failure,
            "store_path": self.store_path,
        }


class SweepService:
    """Serve many named sweeps to one sweep-agnostic worker fleet.

    Life cycle: construct → :meth:`start` (binds the listener, returns
    immediately) → :meth:`submit` sweeps (in process or via the ``submit``
    protocol verb) → workers connect and drain them → :meth:`wait` /
    :meth:`summary` per sweep.  All shared state is guarded by one lock;
    per-connection reader threads and the lease reaper are the only
    writers.  With ``drain_when_idle=True`` the service tells workers
    ``done`` once every submitted sweep is terminal (the single-sweep
    coordinator mode); otherwise idle workers are parked with ``wait`` so
    later submissions reuse the same fleet.
    """

    def __init__(self,
                 host: str = "127.0.0.1",
                 port: int = 0,
                 store: Optional[ResultStore] = None,
                 lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
                 checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
                 drain_when_idle: bool = False,
                 progress: bool = False):
        if lease_timeout <= 0:
            raise ValueError("lease_timeout must be positive")
        self.host = host
        self._requested_port = port
        self.store = store
        self.lease_timeout = lease_timeout
        self.heartbeat_interval = max(0.2, lease_timeout / 4.0)
        self.checkpoint_every = checkpoint_every
        self.drain_when_idle = drain_when_idle
        self.progress = progress

        self._jobs: Dict[str, SweepJob] = {}
        self._job_order = 0
        self._leases: Dict[int, Lease] = {}
        self._next_lease_id = 1
        self._active_workers: Dict[str, int] = {}   # name -> completed cells
        self._connected = 0
        self._workers_seen = 0

        # Metrics plane (served to `repro-eval metrics` via the ``metrics``
        # protocol message; state lives here, no telemetry sink required).
        self._started = time.monotonic()
        self._overall_rate = RateEwma(start=self._started)
        self._worker_rates: Dict[str, RateEwma] = {}
        self._heartbeat_at: Dict[str, float] = {}
        self._lease_latencies: Deque[float] = deque(maxlen=256)
        self._reaped = 0

        self._lock = threading.Lock()
        #: Serializes journal/store file writes only — checkpoints fsync
        #: outside the state lock so disk latency never stalls lease
        #: hand-out or heartbeat processing for the rest of the fleet.
        self._journal_lock = threading.Lock()
        self._stop = threading.Event()
        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._streams: List[MessageStream] = []

    # ------------------------------------------------------------------ #
    # Server life cycle
    # ------------------------------------------------------------------ #
    @property
    def port(self) -> int:
        if self._listener is None:
            raise RuntimeError("service not started")
        return self._listener.getsockname()[1]

    def start(self) -> "SweepService":
        """Bind the listener and start serving; returns immediately."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self._requested_port))
        listener.listen(64)
        listener.settimeout(0.2)
        self._listener = listener
        for target, tag in ((self._accept_loop, "accept"),
                            (self._reaper_loop, "reaper")):
            thread = threading.Thread(target=target, daemon=True,
                                      name=f"service-{tag}")
            thread.start()
            self._threads.append(thread)
        return self

    def shutdown(self) -> None:
        """Stop serving (idempotent); outstanding connections get closed."""
        self._stop.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._lock:
            streams = list(self._streams)
        for stream in streams:
            # Unblock client reader threads parked in recv(); each thread
            # closes its own stream on the way out (closing the buffered
            # reader from here would deadlock on its read lock).
            stream.interrupt()
        for thread in list(self._threads):
            thread.join(timeout=5.0)

    def drained(self) -> bool:
        """True once at least one sweep was submitted and all are terminal."""
        with self._lock:
            return bool(self._jobs) and all(job.terminal
                                            for job in self._jobs.values())

    # ------------------------------------------------------------------ #
    # Tenant management: submit / cancel / wait / summary
    # ------------------------------------------------------------------ #
    def submit(self, sweep: SweepSpec, name: str,
               store: Optional[ResultStore] = None,
               priority: int = 1,
               shard: Optional[Tuple[int, int]] = None,
               resume: bool = False,
               batch_size: int = DEFAULT_BATCH_SIZE,
               checkpoint_every: Optional[int] = None,
               adaptive: bool = True) -> SweepJob:
        """Admit *sweep* under the unique *name*; returns its live job.

        ``store`` defaults to the service-wide store root (the sweep's
        records land in ``<root>/<name>.json``); ``priority`` weights the
        lease scheduler; ``batch_size`` is the lease-size *ceiling* —
        actual cuts follow :func:`adaptive_batch` unless ``adaptive=False``
        pins them to the fixed ceiling.  ``resume``/``shard`` compose
        exactly as on the old single-sweep coordinator.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if priority < 1:
            raise ValueError("priority must be >= 1")
        store = store if store is not None else self.store
        if resume and store is None:
            raise ServiceError("resume requires a result store")

        cells = sweep.cells()
        if shard is not None:
            cells = shard_cells(cells, shard[0], shard[1])
        by_key = {cell.key: cell for cell in cells}
        if len(by_key) != len(cells):
            raise ServiceError("cell_key collision within one sweep "
                               "(two distinct cells hashed identically)")
        meta = sweep.meta()
        if shard is not None:
            meta["shard"] = [shard[0], shard[1]]

        stored: Dict[str, Dict] = {}
        if resume:
            # Shared with the in-process resume path: axes validated before
            # any journal is folded, foreign stores/journals refused.
            stored = load_resumable_records(store, name, sweep, by_key)

        with self._lock:
            if name in self._jobs:
                raise ServiceError(
                    f"sweep name {name!r} is already taken in this service "
                    f"(status {self._jobs[name].status}); pick another name")
            if store is not None and not resume \
                    and store.journal_path(name).exists():
                # A fresh run overwrites the store; a stale journal from some
                # earlier crashed run must not leak into it at compaction
                # time.  Unlinked only after the name check above — a
                # rejected duplicate submit (e.g. a wire client retrying
                # after a lost reply) must never delete the live sweep's
                # journal checkpoints.
                store.journal_path(name).unlink()
            job = SweepJob(
                name=name, sweep=sweep, store=store, priority=priority,
                order=self._job_order, max_batch=batch_size,
                adaptive=adaptive,
                checkpoint_every=(self.checkpoint_every
                                  if checkpoint_every is None
                                  else checkpoint_every),
                resume=resume, meta=meta, cells=cells, by_key=by_key,
                stored=stored,
                pending=deque(c.key for c in cells if c.key not in stored),
                # Anchor the throughput EWMA at admission so the very first
                # completed batch already yields a rate (and an ETA).
                rate=RateEwma(start=time.monotonic()),
            )
            self._job_order += 1
            if self.progress:
                job.reporter = ProgressReporter(len(cells),
                                                label=f"distrib:{name}")
            self._jobs[name] = job
        if not job.pending:
            # Everything already stored (a completed resume): finalize now
            # so waiters and stores behave exactly like a computed run.
            self._maybe_finish(job)
        return job

    def cancel(self, name: str) -> Dict:
        """Stop leasing *name*; drain in-flight leases; keep the partial.

        Pending cells are dropped immediately.  Leases already out with
        workers are left to finish — their results are accepted and
        journaled like any others (at-least-once execution makes dropping
        them indistinguishable from losing a worker anyway).  Once the last
        lease resolves, the journal is compacted so the partial store is a
        well-formed, mergeable keyed store, and the job goes ``cancelled``.
        """
        finalize = False
        with self._lock:
            job = self._jobs.get(name)
            if job is None:
                raise ServiceError(f"no sweep named {name!r}")
            if job.terminal:
                return job.snapshot(time.monotonic())
            if job.status == JOB_RUNNING:
                job.status = JOB_CANCELLING
                job.pending.clear()
            finalize = job.leased_cells == 0
        if finalize:
            # No leases in flight: the job goes terminal before we return,
            # so the caller sees "cancelled", not a vacuous "cancelling".
            self._finalize_cancel(job)
        with self._lock:
            return job.snapshot(time.monotonic())

    def wait(self, name: str, timeout: Optional[float] = None) -> bool:
        """Block until sweep *name* reaches a terminal state."""
        return self._job(name).done.wait(timeout)

    def _job(self, name: str) -> SweepJob:
        with self._lock:
            job = self._jobs.get(name)
        if job is None:
            raise ServiceError(f"no sweep named {name!r}")
        return job

    def summary(self, name: str) -> Dict:
        """Finalized ``execute_sweep``-shaped summary of sweep *name*.

        Raises :class:`CoordinatorError` if the sweep failed (conflicting
        duplicate records, journal write failure) — a fleet that cannot
        reproduce a cell must not hand back a summary that looks like
        success.
        """
        job = self._job(name)
        if not job.done.is_set():
            raise RuntimeError(f"sweep {name!r} is not complete yet")
        with self._lock:
            if job.failure is not None:
                raise CoordinatorError(job.failure)
            combined = dict(job.stored)
            combined.update(job.completed)
            records = [combined[key] for key in sorted(combined)]
            meta = dict(job.meta)
            meta["cells"] = len(records)
            return {
                "records": records, "meta": meta, "cells": len(job.cells),
                "computed": len(job.completed),
                "skipped": len(job.stored), "rechecked": 0,
                "status": job.status,
                "path": job.store_path,
                "distrib": {
                    "workers": self._workers_seen,
                    "requeued_batches": job.requeued,
                    "duplicate_records": job.duplicates,
                    "cells_by_worker": dict(job.cells_by_worker),
                },
            }

    def status_snapshot(self, name: Optional[str] = None) -> Dict:
        """Per-sweep snapshots (the payload of the ``status`` verb)."""
        now = time.monotonic()
        with self._lock:
            if name is not None:
                job = self._jobs.get(name)
                if job is None:
                    raise ServiceError(f"no sweep named {name!r}")
                return {name: job.snapshot(now)}
            return {job_name: job.snapshot(now)
                    for job_name, job in sorted(self._jobs.items())}

    # ------------------------------------------------------------------ #
    # Accept / reaper threads
    # ------------------------------------------------------------------ #
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            conn.settimeout(None)
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            thread = threading.Thread(target=self._serve_client,
                                      args=(MessageStream(conn),),
                                      daemon=True, name="service-client")
            thread.start()
            self._threads.append(thread)

    def _reaper_loop(self) -> None:
        tick = min(1.0, self.lease_timeout / 4.0)
        while not self._stop.is_set():
            self._stop.wait(tick)
            now = time.monotonic()
            to_finalize: List[SweepJob] = []
            with self._lock:
                expired = [lease for lease in self._leases.values()
                           if lease.deadline < now]
                for lease in expired:
                    job = self._requeue_locked(lease)
                    if job is not None:
                        to_finalize.append(job)
                self._reaped += len(expired)
            for job in to_finalize:
                self._finalize_cancel(job)
            self._emit_progress()

    def _requeue_locked(self, lease: Lease) -> Optional[SweepJob]:
        """Return a lease's unfinished keys to its sweep's queue.

        Returns the job if this was the last in-flight lease of a
        *cancelling* sweep — the caller must finalize it outside the lock.
        """
        self._leases.pop(lease.lease_id, None)
        job = self._jobs.get(lease.sweep)
        if job is None:
            return None
        job.leased_cells = max(0, job.leased_cells - len(lease.keys))
        if job.status == JOB_RUNNING:
            unfinished = [key for key in lease.keys
                          if key not in job.completed
                          and key not in job.stored]
            if unfinished:
                job.pending.extendleft(reversed(unfinished))
                job.requeued += 1
        if job.status == JOB_CANCELLING and job.leased_cells == 0:
            return job
        return None

    # ------------------------------------------------------------------ #
    # Per-connection protocol
    # ------------------------------------------------------------------ #
    def _serve_client(self, stream: MessageStream) -> None:
        worker: Optional[str] = None
        negotiated = False
        with self._lock:
            self._streams.append(stream)
        try:
            while not self._stop.is_set():
                message = stream.recv()
                if message is None:
                    return  # peer gone; finally-block requeues its leases
                kind = message["type"]
                if kind == "hello":
                    version = message.get("version")
                    if version != PROTOCOL_VERSION:
                        raise ProtocolError(
                            f"protocol version mismatch: this service "
                            f"speaks version {PROTOCOL_VERSION}, the peer "
                            f"sent {version!r}; upgrade the older side")
                    negotiated = True
                    if message.get("role", "worker") == "worker":
                        worker = self._register(message)
                    stream.send({
                        "type": "welcome", "version": PROTOCOL_VERSION,
                        "heartbeat_interval": self.heartbeat_interval,
                        "sweeps": len(self._jobs),
                    })
                elif kind == "metrics":
                    # Observer request, allowed without a hello: a metrics
                    # scraper is not a worker and holds no leases.  The
                    # connection stays open so a monitor can poll.
                    stream.send({"type": "metrics",
                                 "snapshot": self.metrics_snapshot()})
                elif kind == "status":
                    stream.send({"type": "status",
                                 "sweeps": self.status_snapshot(
                                     message.get("sweep"))})
                elif kind == "list":
                    stream.send({"type": "sweeps",
                                 "sweeps": self._list_sweeps()})
                elif kind in ("submit", "cancel") and not negotiated:
                    raise ProtocolError(
                        f"{kind} requires a version-negotiated connection: "
                        f"send hello (version {PROTOCOL_VERSION}) first")
                elif kind == "submit":
                    stream.send(self._submit_from_wire(message))
                elif kind == "cancel":
                    name = message.get("sweep")
                    if not isinstance(name, str):
                        raise ProtocolError(
                            "cancel requires a 'sweep' name")
                    try:
                        snapshot = self.cancel(name)
                    except ServiceError as error:
                        raise ProtocolError(str(error)) from error
                    stream.send({"type": "cancelled", "sweep": name,
                                 "snapshot": snapshot})
                elif worker is None:
                    raise ProtocolError(f"first message must be hello, "
                                        f"got {kind!r}")
                elif kind == "request":
                    reply = self._assign(worker)
                    stream.send(reply)
                    if reply["type"] == "done":
                        return
                elif kind == "heartbeat":
                    self._extend_leases(worker)
                elif kind == "result":
                    self._complete(worker, message)
                elif kind == "error":
                    raise ProtocolError(
                        f"worker {worker} reported: {message.get('message')}")
                else:
                    raise ProtocolError(f"unknown message type {kind!r}")
        except (ProtocolError, ValueError, OSError) as error:
            # Per-connection containment: a malformed, truncated, oversized
            # or out-of-vocabulary message costs its sender the connection
            # (with a versioned error reply when the socket still works),
            # never the service — other tenants and workers are untouched,
            # and the finally-block below returns any leases to their
            # queues so no work is stranded.
            try:
                stream.send({"type": "error",
                             "version": PROTOCOL_VERSION,
                             "message": str(error)})
            except OSError:
                pass
        finally:
            to_finalize: List[SweepJob] = []
            with self._lock:
                for lease in list(self._leases.values()):
                    if lease.worker == worker:
                        job = self._requeue_locked(lease)
                        if job is not None:
                            to_finalize.append(job)
                if worker is not None:
                    self._connected -= 1
                if stream in self._streams:
                    self._streams.remove(stream)
                # Prune this handler from the join list — an elastic fleet
                # reconnects many times over a long service lifetime, and
                # the list must not grow (nor shutdown joins slow down)
                # with every connection that ever existed.
                try:
                    self._threads.remove(threading.current_thread())
                except ValueError:
                    pass
            for job in to_finalize:
                self._finalize_cancel(job)
            stream.close()
            self._emit_progress()

    def _register(self, message: Dict) -> str:
        base = str(message.get("worker") or "worker")
        with self._lock:
            self._workers_seen += 1
            self._connected += 1
            worker = f"{base}#{self._workers_seen}"
            self._active_workers.setdefault(worker, 0)
        return worker

    def _submit_from_wire(self, message: Dict) -> Dict:
        """Admit a sweep described by a ``submit`` protocol message."""
        meta = message.get("sweep")
        name = message.get("name")
        if not isinstance(meta, dict) or not isinstance(name, str) or not name:
            raise ProtocolError("submit requires a 'sweep' axes object "
                                "and a non-empty 'name'")
        store_dir = message.get("store")
        if store_dir is not None and (not isinstance(store_dir, str)
                                      or not store_dir):
            raise ProtocolError("submit 'store' must be a non-empty "
                                "directory path on the service host")
        checkpoint_every = message.get("checkpoint_every")
        try:
            sweep = SweepSpec.from_meta(meta)
            job = self.submit(
                sweep, name,
                store=ResultStore(store_dir) if store_dir else None,
                priority=int(message.get("priority", 1)),
                resume=bool(message.get("resume", False)),
                batch_size=int(message.get("batch_size",
                                           DEFAULT_BATCH_SIZE)),
                checkpoint_every=(None if checkpoint_every is None
                                  else int(checkpoint_every)),
                adaptive=bool(message.get("adaptive", True)))
        except (ServiceError, ValueError, TypeError) as error:
            raise ProtocolError(f"submit rejected: {error}") from error
        return {"type": "submitted", "sweep": name,
                "cells": len(job.cells), "pending": len(job.pending),
                "priority": job.priority}

    def _list_sweeps(self) -> List[Dict]:
        now = time.monotonic()
        with self._lock:
            return [dict(job.snapshot(now), name=name)
                    for name, job in sorted(self._jobs.items())]

    # ------------------------------------------------------------------ #
    # Lease scheduling
    # ------------------------------------------------------------------ #
    def _pick_job_locked(self) -> Optional[SweepJob]:
        best: Optional[SweepJob] = None
        best_rank: Tuple[float, int, int] = (-1.0, 0, 0)
        for job in self._jobs.values():
            if job.status != JOB_RUNNING or not job.pending:
                continue
            rank = (schedule_score(job.priority, job.leased_cells),
                    job.priority, -job.order)
            if rank > best_rank:
                best, best_rank = job, rank
        return best

    def _assign(self, worker: str) -> Dict:
        with self._lock:
            job = self._pick_job_locked()
            if job is None:
                if self.drain_when_idle and self._jobs and \
                        all(j.terminal for j in self._jobs.values()):
                    return {"type": "done"}
                return {"type": "wait", "seconds": 0.5}
            fleet = max(1, self._connected)
            if job.adaptive:
                cut = adaptive_batch(len(job.pending), fleet, job.max_batch)
            else:
                cut = job.max_batch
            # Skip keys that were re-queued (expired lease) but completed
            # anyway before being re-leased — at-least-once execution means
            # a late result may beat its replacement to the queue, and
            # re-simulating a cell whose record is already held is waste.
            keys: List[str] = []
            while job.pending and len(keys) < cut:
                key = job.pending.popleft()
                if key not in job.completed and key not in job.stored:
                    keys.append(key)
            if not keys:
                return {"type": "wait", "seconds": 0.5}
            now = time.monotonic()
            lease = Lease(lease_id=self._next_lease_id, sweep=job.name,
                          keys=keys, worker=worker,
                          deadline=now + self.lease_timeout, granted=now)
            self._next_lease_id += 1
            self._leases[lease.lease_id] = lease
            job.leased_cells += len(keys)
            # Every worker that ever held a lease on this sweep appears in
            # its per-sweep counters — a SIGKILLed worker shows up with 0
            # completed cells rather than vanishing from the summary.
            job.cells_by_worker.setdefault(worker, 0)
            return {"type": "lease", "lease_id": lease.lease_id,
                    "sweep": job.name, "keys": keys, "spec": job.meta}

    def _extend_leases(self, worker: str) -> None:
        now = time.monotonic()
        deadline = now + self.lease_timeout
        with self._lock:
            self._heartbeat_at[worker] = now
            for lease in self._leases.values():
                if lease.worker == worker:
                    lease.deadline = deadline

    # ------------------------------------------------------------------ #
    # Completion, journaling, finalization
    # ------------------------------------------------------------------ #
    def _route_locked(self, message: Dict) -> Optional[SweepJob]:
        """The job a lease-less ``result`` message belongs to (its sweep
        field, or — for late results whose lease already expired — the cell
        key).  Results that still hold a live lease are routed by the lease
        itself in :meth:`_complete`; a worker is not trusted to relabel
        leased work across tenants."""
        name = message.get("sweep")
        if isinstance(name, str) and name in self._jobs:
            return self._jobs[name]
        records = message.get("records")
        if isinstance(records, list):
            for record in records:
                key = record.get("cell_key") if isinstance(record, dict) \
                    else None
                for job in self._jobs.values():
                    if key in job.by_key:
                        return job
        return None

    def _complete(self, worker: str, message: Dict) -> None:
        records = message.get("records")
        if not isinstance(records, list):
            raise ProtocolError("result message must carry a records list")
        now = time.monotonic()
        new_cells = 0
        to_journal: Optional[List[Dict]] = None
        finished = False
        cancel_drained = False
        with self._lock:
            # The lease may already be gone (expired and re-leased) — the
            # records are still valid work and go through the same duplicate
            # validation as any other completion (at-least-once execution).
            lease = self._leases.pop(message.get("lease_id"), None)
            if lease is not None:
                self._lease_latencies.append(now - lease.granted)
            self._heartbeat_at[worker] = now
            if lease is not None:
                # The lease is authoritative: route by its sweep and settle
                # its leased-cell count on that job, whatever the message
                # claims — otherwise a mislabelled result would decrement
                # the wrong tenant and leave the leased sweep hung forever
                # (the lease is already popped, so the reaper cannot
                # recover it).
                job = self._jobs.get(lease.sweep)
                if job is not None:
                    job.leased_cells = max(0, job.leased_cells
                                           - len(lease.keys))
                claimed = message.get("sweep")
                if isinstance(claimed, str) and claimed != lease.sweep:
                    # Return the batch's unfinished cells to their own
                    # queue before dropping the connection: the mismatch
                    # must not strand the lease's work.
                    if job is not None and job.status == JOB_RUNNING:
                        unfinished = [k for k in lease.keys
                                      if k not in job.completed
                                      and k not in job.stored]
                        if unfinished:
                            job.pending.extendleft(reversed(unfinished))
                            job.requeued += 1
                    raise ProtocolError(
                        f"result claims sweep {claimed!r} but lease "
                        f"{lease.lease_id} belongs to sweep "
                        f"{lease.sweep!r}")
            else:
                job = self._route_locked(message)
            if job is None:
                raise ProtocolError(
                    f"result for unknown sweep "
                    f"{message.get('sweep')!r} (no live sweep owns it)")
            if job.terminal:
                # A straggler's results arriving after the sweep was
                # cancelled/failed: legitimate at-least-once residue, not
                # an error — count it and move on.
                job.dropped_after_terminal += len(records)
                return
            for record in records:
                key = record.get("cell_key") if isinstance(record, dict) \
                    else None
                if key not in job.by_key:
                    # Put the batch's unfinished cells back before dropping
                    # this connection: a bad result must not strand a lease.
                    if lease is not None and job.status == JOB_RUNNING:
                        unfinished = [k for k in lease.keys
                                      if k not in job.completed
                                      and k not in job.stored]
                        if unfinished:
                            job.pending.extendleft(reversed(unfinished))
                            job.requeued += 1
                    raise ProtocolError(
                        f"result for unknown cell {key!r} "
                        f"(not in sweep {job.name!r})")
                existing = job.completed.get(key, job.stored.get(key))
                if existing is not None:
                    job.duplicates += 1
                    if existing != record:
                        job.failure = (
                            f"cell {key} completed twice with DIFFERENT "
                            f"records (worker {worker}); the fleet is not "
                            f"bitwise-reproducible — refusing to write a "
                            f"store")
                        self._fail_locked(job)
                        return
                    continue
                job.completed[key] = record
                job.journal_tail.append(record)
                job.cells_by_worker[worker] = \
                    job.cells_by_worker.get(worker, 0) + 1
                self._active_workers[worker] = \
                    self._active_workers.get(worker, 0) + 1
                new_cells += 1
            if new_cells:
                self._overall_rate.observe(new_cells, now)
                job.rate.observe(new_cells, now)
                self._worker_rates.setdefault(
                    worker, RateEwma(start=self._started)
                ).observe(new_cells, now)
            if (job.store is not None and job.checkpoint_every
                    and len(job.journal_tail) >= job.checkpoint_every):
                to_journal = job.journal_tail
                job.journal_tail = []
                job.journaled = True
            if job.status == JOB_RUNNING and \
                    job.done_cells >= len(job.cells):
                finished = True
            if job.status == JOB_CANCELLING and job.leased_cells == 0:
                cancel_drained = True
        if to_journal:
            try:
                with self._journal_lock, \
                        get_telemetry().span("store.checkpoint",
                                             kind="journal", sweep=job.name,
                                             records=len(to_journal)):
                    job.store.append_journal(job.name, to_journal,
                                             meta=job.meta)
            except Exception as error:
                # The records were already popped from the tail; losing the
                # write silently would finalize a store missing cells while
                # claiming success.  Fail the sweep loudly instead.
                with self._lock:
                    job.failure = (
                        f"journal checkpoint failed ({error}); aborting "
                        f"rather than finalize a store with missing cells")
                    self._fail_locked(job)
                finished = cancel_drained = False
        if finished:
            self._finalize_complete(job)
        if cancel_drained:
            self._finalize_cancel(job)
        self._emit_progress(job)

    def _fail_locked(self, job: SweepJob) -> None:
        """Flip *job* to failed: stop leasing it, wake its waiters."""
        job.status = JOB_FAILED
        job.pending.clear()
        job.done.set()

    def _maybe_finish(self, job: SweepJob) -> None:
        """Finalize a job whose queue was empty at submission (resume)."""
        with self._lock:
            if job.terminal or job.done_cells < len(job.cells):
                return
        self._finalize_complete(job)

    def _finalize_complete(self, job: SweepJob) -> None:
        """Write sweep *job*'s canonical store and mark it completed.

        The write path is chosen exactly as a monolithic run would: journal
        compaction when checkpoints were written, keyed append on a resume,
        plain sorted save otherwise — that choice is what keeps the final
        bytes identical to ``execute_sweep`` of the same spec.
        """
        with self._lock:
            if job.terminal:
                return
            combined = dict(job.stored)
            combined.update(job.completed)
            records = [combined[key] for key in sorted(combined)]
            meta = dict(job.meta)
            meta["cells"] = len(records)
        try:
            if job.store is not None:
                with get_telemetry().span("store.checkpoint", kind="final",
                                          sweep=job.name,
                                          records=len(records)), \
                        self._journal_lock:
                    if job.journaled:
                        # Checkpoints were written; flush the tail and fold
                        # the journal into the canonical sorted store in
                        # one pass.
                        if job.journal_tail:
                            job.store.append_journal(
                                job.name, job.journal_tail, meta=job.meta)
                            job.journal_tail = []
                        path = job.store.compact_journal(
                            job.name, merge_store=job.resume)
                    elif job.resume:
                        path = job.store.append_keyed(
                            job.name, list(job.completed.values()),
                            meta=meta)
                    else:
                        path = job.store.save_keyed(job.name, records,
                                                    meta=meta)
                job.store_path = str(path)
        except Exception as error:
            with self._lock:
                job.failure = (f"finalizing the store for sweep "
                               f"{job.name!r} failed: {error}")
                self._fail_locked(job)
            return
        with self._lock:
            job.status = JOB_COMPLETED
            job.done.set()
        if job.reporter is not None:
            job.reporter.update(job.done_cells, extra="complete", force=True)

    def _finalize_cancel(self, job: SweepJob) -> None:
        """Drain-complete a cancelled sweep: flush, compact, mark."""
        with self._lock:
            if job.status != JOB_CANCELLING or job.leased_cells:
                return
            tail = job.journal_tail
            job.journal_tail = []
        try:
            if job.store is not None and (tail or job.journaled):
                with get_telemetry().span("store.checkpoint", kind="cancel",
                                          sweep=job.name,
                                          records=len(tail)), \
                        self._journal_lock:
                    if tail:
                        job.store.append_journal(job.name, tail,
                                                 meta=job.meta)
                    path = job.store.compact_journal(
                        job.name, merge_store=job.resume)
                if path is not None:
                    job.store_path = str(path)
        except Exception as error:
            with self._lock:
                job.failure = (f"compacting the partial store of cancelled "
                               f"sweep {job.name!r} failed: {error}")
                self._fail_locked(job)
            return
        with self._lock:
            job.status = JOB_CANCELLED
            job.done.set()
        if job.reporter is not None:
            job.reporter.update(job.done_cells, extra="cancelled",
                                force=True)

    # ------------------------------------------------------------------ #
    # Introspection / metrics / progress
    # ------------------------------------------------------------------ #
    def metrics_snapshot(self) -> Dict:
        """The JSON payload served for a ``metrics`` protocol request.

        Top-level fields aggregate over every hosted sweep (so existing
        dashboards on queue depth / throughput / ETA keep working), and the
        ``sweeps`` object carries the same numbers per tenant —
        :func:`repro.telemetry.render_prometheus` renders those with a
        ``sweep`` label on every sample.
        """
        now = time.monotonic()
        with self._lock:
            total = sum(len(job.cells) for job in self._jobs.values())
            done = sum(job.done_cells for job in self._jobs.values())
            pending = sum(len(job.pending) for job in self._jobs.values())
            leased = sum(len(l.keys) for l in self._leases.values())
            throughput = self._overall_rate.rate
            remaining = sum(len(job.pending) + job.leased_cells
                            for job in self._jobs.values()
                            if not job.terminal)
            if remaining <= 0:
                eta: Optional[float] = 0.0
            elif throughput:
                eta = remaining / throughput
            else:
                eta = None
            snapshot: Dict = {
                "total": total,
                "done": done,
                "pending": pending,
                "leased": leased,
                "leases": len(self._leases),
                "sweeps_hosted": len(self._jobs),
                "workers": self._connected,
                "workers_seen": self._workers_seen,
                "requeued_batches": sum(job.requeued
                                        for job in self._jobs.values()),
                "reaped_leases": self._reaped,
                "duplicate_records": sum(job.duplicates
                                         for job in self._jobs.values()),
                "throughput": throughput,
                "eta_seconds": eta,
                "worker_cells": dict(self._active_workers),
                "worker_throughput": {
                    name: rate.rate
                    for name, rate in self._worker_rates.items()
                    if rate.rate is not None},
                "heartbeat_age_seconds": {
                    name: now - at
                    for name, at in self._heartbeat_at.items()},
                "lease_latency_seconds": {},
                "sweeps": {name: job.snapshot(now)
                           for name, job in sorted(self._jobs.items())},
            }
            latencies = list(self._lease_latencies)
        p50 = percentile(latencies, 0.5)
        if p50 is not None:
            snapshot["lease_latency_seconds"] = {
                "0.5": p50, "0.95": percentile(latencies, 0.95)}
        hub = get_telemetry()
        if hub.enabled:
            hub.set_gauge("service.queue_depth", snapshot["pending"])
            hub.set_gauge("service.outstanding_leases", snapshot["leases"])
            hub.set_gauge("service.workers_connected", snapshot["workers"])
        return snapshot

    def job_stats(self, name: str) -> Dict:
        """Point-in-time counters of one sweep, coordinator-`stats` shaped."""
        with self._lock:
            job = self._jobs.get(name)
            if job is None:
                raise ServiceError(f"no sweep named {name!r}")
            return {
                "total": len(job.cells),
                "done": job.done_cells,
                "computed": len(job.completed),
                "skipped": len(job.stored),
                "pending": len(job.pending),
                "leased": job.leased_cells,
                "leases": sum(1 for lease in self._leases.values()
                              if lease.sweep == name),
                "workers": self._connected,
                "workers_seen": self._workers_seen,
                "requeued_batches": job.requeued,
                "duplicate_records": job.duplicates,
                "cells_by_worker": dict(job.cells_by_worker),
                "status": job.status,
                "failure": job.failure,
            }

    def _emit_progress(self, job: Optional[SweepJob] = None) -> None:
        hub = get_telemetry()
        if hub.enabled:
            with self._lock:
                hub.set_gauge("service.queue_depth",
                              sum(len(j.pending)
                                  for j in self._jobs.values()))
                hub.set_gauge("service.outstanding_leases",
                              len(self._leases))
                hub.set_gauge("service.workers_connected", self._connected)
        jobs = [job] if job is not None else list(self._jobs.values())
        for one in jobs:
            if one.reporter is None or one.done.is_set():
                continue  # the final line is emitted once, at finalization
            with self._lock:
                done = one.done_cells
                extra = (f"{self._connected} workers, "
                         f"{one.leased_cells} leased, "
                         f"{one.requeued} requeued")
            one.reporter.update(done, extra=extra)
