"""Instruction selection: IR functions to machine functions with virtual regs.

Selection is a straightforward tree-less mapping: every IR instruction expands
into one or a few machine instructions, operating on virtual registers that
share the IR's virtual-register numbering.  Calls use the physical argument
registers ``r0``-``r3`` directly; the register allocator keeps virtual values
out of caller-saved registers across those regions.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.ir import instructions as ir
from repro.ir.function import Function
from repro.ir.values import Const, Operand, VReg
from repro.isa.conditions import Cond, invert_cond
from repro.isa.instructions import Imm, MachineInstr, Opcode, RegList, Sym
from repro.isa.registers import ARG_REGS, LR, R0, Reg
from repro.machine.blocks import MachineBlock, MachineFunction
from repro.machine.frame import FrameRef


class ISelError(Exception):
    """Raised when an IR construct cannot be selected."""


_COND_MAP = {
    "eq": Cond.EQ, "ne": Cond.NE, "lt": Cond.LT, "le": Cond.LE,
    "gt": Cond.GT, "ge": Cond.GE, "lo": Cond.LO, "ls": Cond.LS,
    "hi": Cond.HI, "hs": Cond.HS,
}

_BINOP_MAP = {
    "add": Opcode.ADD, "sub": Opcode.SUB, "mul": Opcode.MUL,
    "sdiv": Opcode.SDIV, "udiv": Opcode.UDIV,
    "and": Opcode.AND, "or": Opcode.ORR, "xor": Opcode.EOR,
    "shl": Opcode.LSL, "lshr": Opcode.LSR, "ashr": Opcode.ASR,
}

#: Largest immediate accepted directly by add/sub (Thumb-2 wide encoding).
_MAX_ADDSUB_IMM = 4095
#: Largest immediate accepted by logical/shift/compare operations.
_MAX_LOGICAL_IMM = 255
#: Largest load/store immediate offset.
_MAX_MEM_OFFSET = 4095


class _FunctionSelector:
    def __init__(self, function: Function, use_cbz: bool = True):
        self.ir_function = function
        self.use_cbz = use_cbz
        self.machine = MachineFunction(function.name, function.num_params,
                                       is_library=function.is_library)
        self._next_vreg = function.vreg_count()
        self.block: Optional[MachineBlock] = None

    # ------------------------------------------------------------------ #
    def new_temp(self) -> Reg:
        reg = Reg(self._next_vreg, virtual=True)
        self._next_vreg += 1
        return reg

    @staticmethod
    def vreg(value: VReg) -> Reg:
        return Reg(value.index, virtual=True)

    def emit(self, opcode: Opcode, *operands, cond=None, predicated=False,
             comment: str = "") -> MachineInstr:
        instr = MachineInstr(opcode, list(operands), cond=cond,
                             predicated=predicated, comment=comment)
        self.block.append(instr)
        return instr

    # ------------------------------------------------------------------ #
    # Operand materialisation helpers
    # ------------------------------------------------------------------ #
    def reg_of(self, operand: Operand) -> Reg:
        """Return a register holding *operand*, materialising constants."""
        if isinstance(operand, VReg):
            return self.vreg(operand)
        if isinstance(operand, Const):
            return self.materialize_const(operand.value)
        raise ISelError(f"cannot use operand {operand!r}")

    def materialize_const(self, value: int, dst: Optional[Reg] = None) -> Reg:
        dst = dst or self.new_temp()
        value &= 0xFFFFFFFF
        if value <= _MAX_LOGICAL_IMM:
            self.emit(Opcode.MOV, dst, Imm(value))
        elif (~value & 0xFFFFFFFF) <= _MAX_LOGICAL_IMM:
            self.emit(Opcode.MVN, dst, Imm(~value & 0xFFFFFFFF))
        else:
            self.emit(Opcode.LDR_LIT, dst, Imm(value))
        return dst

    def reg_or_imm(self, operand: Operand, limit: int):
        """Return either an Imm (if small enough) or a register operand."""
        if isinstance(operand, Const):
            value = operand.value & 0xFFFFFFFF
            if value <= limit:
                return Imm(value)
            return self.materialize_const(operand.value)
        return self.reg_of(operand)

    # ------------------------------------------------------------------ #
    # Top level
    # ------------------------------------------------------------------ #
    def run(self) -> MachineFunction:
        # Copy stack-frame objects (local arrays) over to the machine function.
        for obj in self.ir_function.frame_objects.values():
            self.machine.frame_objects[obj.name] = obj.size

        # Create machine blocks mirroring the IR blocks, in the same order.
        for name in self.ir_function.block_order:
            self.machine.add_block(name)

        for index, name in enumerate(self.ir_function.block_order):
            ir_block = self.ir_function.blocks[name]
            self.block = self.machine.blocks[name]
            next_name = (self.ir_function.block_order[index + 1]
                         if index + 1 < len(self.ir_function.block_order) else None)
            if index == 0:
                self._lower_params()
            for instr in ir_block.instructions:
                self.select(instr)
            if ir_block.terminator is None:
                raise ISelError(f"{self.ir_function.name}/{name} has no terminator")
            self.select_terminator(ir_block.terminator, next_name)
        return self.machine

    def _lower_params(self) -> None:
        for index, param in enumerate(self.ir_function.params):
            if index >= len(ARG_REGS):
                raise ISelError("more than four parameters are not supported")
            self.emit(Opcode.MOV, self.vreg(param), ARG_REGS[index],
                      comment=f"param {index}")

    # ------------------------------------------------------------------ #
    # Ordinary instructions
    # ------------------------------------------------------------------ #
    def select(self, instr: ir.Instruction) -> None:
        if isinstance(instr, ir.Mov):
            self._select_mov(instr)
        elif isinstance(instr, ir.BinOp):
            self._select_binop(instr)
        elif isinstance(instr, ir.Load):
            self._select_load(instr)
        elif isinstance(instr, ir.Store):
            self._select_store(instr)
        elif isinstance(instr, ir.AddrOf):
            self.emit(Opcode.LDR_LIT, self.vreg(instr.dst), Sym(instr.symbol))
        elif isinstance(instr, ir.FrameAddr):
            self.emit(Opcode.ADD, self.vreg(instr.dst), Reg(13), FrameRef(instr.object_name))
        elif isinstance(instr, ir.Call):
            self._select_call(instr)
        else:
            raise ISelError(f"cannot select {type(instr).__name__}")

    def _select_mov(self, instr: ir.Mov) -> None:
        dst = self.vreg(instr.dst)
        if isinstance(instr.src, Const):
            self.materialize_const(instr.src.value, dst)
        else:
            self.emit(Opcode.MOV, dst, self.vreg(instr.src))

    def _select_binop(self, instr: ir.BinOp) -> None:
        dst = self.vreg(instr.dst)
        op = instr.op
        if op in ("srem", "urem"):
            div_op = Opcode.SDIV if op == "srem" else Opcode.UDIV
            lhs = self.reg_of(instr.lhs)
            rhs = self.reg_of(instr.rhs)
            quotient = self.new_temp()
            product = self.new_temp()
            self.emit(div_op, quotient, lhs, rhs)
            self.emit(Opcode.MUL, product, quotient, rhs)
            self.emit(Opcode.SUB, dst, lhs, product)
            return
        opcode = _BINOP_MAP.get(op)
        if opcode is None:
            raise ISelError(f"unknown binary op {op}")
        lhs = self.reg_of(instr.lhs)
        if opcode in (Opcode.ADD, Opcode.SUB):
            if isinstance(instr.rhs, Const):
                value = instr.rhs.value
                signed = value - (1 << 32) if value & 0x80000000 else value
                if 0 <= signed <= _MAX_ADDSUB_IMM:
                    self.emit(opcode, dst, lhs, Imm(signed))
                    return
                if -_MAX_ADDSUB_IMM <= signed < 0:
                    flipped = Opcode.SUB if opcode is Opcode.ADD else Opcode.ADD
                    self.emit(flipped, dst, lhs, Imm(-signed))
                    return
            rhs = self.reg_of(instr.rhs)
            self.emit(opcode, dst, lhs, rhs)
            return
        if opcode in (Opcode.MUL, Opcode.SDIV, Opcode.UDIV):
            rhs = self.reg_of(instr.rhs)
            self.emit(opcode, dst, lhs, rhs)
            return
        rhs_operand = self.reg_or_imm(instr.rhs, _MAX_LOGICAL_IMM)
        self.emit(opcode, dst, lhs, rhs_operand)

    def _select_load(self, instr: ir.Load) -> None:
        opcode = Opcode.LDR if instr.width == 4 else Opcode.LDRB
        base = self.reg_of(instr.base)
        offset = self._memory_offset(instr.offset)
        self.emit(opcode, self.vreg(instr.dst), base, offset)

    def _select_store(self, instr: ir.Store) -> None:
        opcode = Opcode.STR if instr.width == 4 else Opcode.STRB
        src = self.reg_of(instr.src)
        base = self.reg_of(instr.base)
        offset = self._memory_offset(instr.offset)
        self.emit(opcode, src, base, offset)

    def _memory_offset(self, operand: Operand):
        if isinstance(operand, Const):
            value = operand.value & 0xFFFFFFFF
            if value <= _MAX_MEM_OFFSET:
                return Imm(value)
            return self.materialize_const(operand.value)
        return self.vreg(operand)

    def _select_call(self, instr: ir.Call) -> None:
        if len(instr.args) > len(ARG_REGS):
            raise ISelError("more than four call arguments are not supported")
        self.machine.makes_calls = True
        for index, arg in enumerate(instr.args):
            target = ARG_REGS[index]
            if isinstance(arg, Const):
                value = arg.value & 0xFFFFFFFF
                if value <= _MAX_LOGICAL_IMM:
                    self.emit(Opcode.MOV, target, Imm(value), comment="arg")
                else:
                    self.emit(Opcode.LDR_LIT, target, Imm(value), comment="arg")
            else:
                self.emit(Opcode.MOV, target, self.vreg(arg), comment="arg")
        self.emit(Opcode.BL, Sym(instr.callee))
        if instr.dst is not None:
            self.emit(Opcode.MOV, self.vreg(instr.dst), R0, comment="retval")

    # ------------------------------------------------------------------ #
    # Terminators
    # ------------------------------------------------------------------ #
    def select_terminator(self, term: ir.Terminator, next_name: Optional[str]) -> None:
        if isinstance(term, ir.Jump):
            if term.target == next_name:
                self.block.fallthrough = term.target
            else:
                self.emit(Opcode.B, Sym(term.target))
                self.block.branch_target = term.target
            return
        if isinstance(term, ir.Ret):
            if term.value is not None:
                if isinstance(term.value, Const):
                    value = term.value.value & 0xFFFFFFFF
                    if value <= _MAX_LOGICAL_IMM:
                        self.emit(Opcode.MOV, R0, Imm(value))
                    else:
                        self.emit(Opcode.LDR_LIT, R0, Imm(value))
                else:
                    self.emit(Opcode.MOV, R0, self.vreg(term.value))
            self.emit(Opcode.BX, LR)
            return
        if isinstance(term, ir.Branch):
            self._select_branch(term, next_name)
            return
        raise ISelError(f"cannot select terminator {type(term).__name__}")

    def _select_branch(self, term: ir.Branch, next_name: Optional[str]) -> None:
        cond = _COND_MAP[term.cond]
        then_target, else_target = term.then_target, term.else_target

        # Prefer compare-with-zero short branches (cbz/cbnz) when possible.
        use_short = (self.use_cbz and isinstance(term.rhs, Const)
                     and term.rhs.value == 0 and term.cond in ("eq", "ne")
                     and isinstance(term.lhs, VReg))
        if use_short:
            opcode = Opcode.CBZ if term.cond == "eq" else Opcode.CBNZ
            if else_target == next_name:
                self.emit(opcode, self.vreg(term.lhs), Sym(then_target))
                self.block.branch_target = then_target
                self.block.fallthrough = else_target
                return
            inverse = Opcode.CBNZ if term.cond == "eq" else Opcode.CBZ
            if then_target == next_name:
                self.emit(inverse, self.vreg(term.lhs), Sym(else_target))
                self.block.branch_target = else_target
                self.block.fallthrough = then_target
                return
            self.emit(opcode, self.vreg(term.lhs), Sym(then_target))
            self.emit(Opcode.B, Sym(else_target))
            self.block.branch_target = then_target
            self.block.extra_target = else_target
            return

        lhs = self.reg_of(term.lhs)
        rhs = self.reg_or_imm(term.rhs, _MAX_LOGICAL_IMM)
        self.emit(Opcode.CMP, lhs, rhs)
        if else_target == next_name:
            self.emit(Opcode.BCC, Sym(then_target), cond=cond)
            self.block.branch_target = then_target
            self.block.fallthrough = else_target
        elif then_target == next_name:
            self.emit(Opcode.BCC, Sym(else_target), cond=invert_cond(cond))
            self.block.branch_target = else_target
            self.block.fallthrough = then_target
        else:
            self.emit(Opcode.BCC, Sym(then_target), cond=cond)
            self.emit(Opcode.B, Sym(else_target))
            self.block.branch_target = then_target
            self.block.extra_target = else_target


def select_instructions(function: Function, use_cbz: bool = True) -> MachineFunction:
    """Select machine instructions for one IR function."""
    return _FunctionSelector(function, use_cbz=use_cbz).run()
