"""Top-level compiler driver.

Pipelines a mini-C source (or an already-lowered IR module) through the
optimization passes, instruction selection, register allocation and frame
lowering, links the soft-float runtime when needed, prunes unreachable
functions and finally lays the program out over the flash/RAM memory map.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Union

from repro.analysis.callgraph import build_call_graph
from repro.codegen.framelower import lower_frame
from repro.codegen.isel import select_instructions
from repro.codegen.optlevels import OptLevel, PIPELINES, pass_manager_for
from repro.codegen.regalloc import allocate_registers
from repro.ir.module import Module
from repro.ir.verifier import verify_module
from repro.irgen.lowering import compile_source_to_ir
from repro.machine.layout import assign_addresses
from repro.machine.program import MachineProgram


@dataclass
class CompileOptions:
    """Options accepted by :func:`compile_ir_module` / :func:`compile_source`."""

    opt_level: OptLevel = OptLevel.O2
    entry: str = "main"
    link_runtime: bool = True
    prune_unreachable: bool = True
    verify: bool = True
    program_name: str = "program"
    stack_reserve: int = 1024

    @classmethod
    def for_level(cls, level: Union[OptLevel, str], **kwargs) -> "CompileOptions":
        if isinstance(level, str):
            level = OptLevel.parse(level)
        return cls(opt_level=level, **kwargs)


def compile_source(source: str, options: Optional[CompileOptions] = None) -> MachineProgram:
    """Compile mini-C *source* into a linked :class:`MachineProgram`."""
    options = options or CompileOptions()
    module = compile_source_to_ir(source, options.program_name)
    return compile_ir_module(module, options)


def compile_ir_module(module: Module,
                      options: Optional[CompileOptions] = None) -> MachineProgram:
    """Compile an IR *module* into a linked :class:`MachineProgram`."""
    options = options or CompileOptions()
    config = PIPELINES[options.opt_level]

    if options.link_runtime:
        _link_runtime_if_needed(module)

    if options.prune_unreachable and options.entry in module.functions:
        _prune_unreachable_functions(module, options.entry)

    if options.verify:
        verify_module(module)

    if config.passes:
        pass_manager_for(options.opt_level).run(module)
        if options.verify:
            verify_module(module)

    program = MachineProgram(options.program_name, entry=options.entry)
    for data in module.globals.values():
        program.add_global(data)

    for function in module.functions.values():
        machine_function = select_instructions(function, use_cbz=config.use_cbz)
        allocate_registers(machine_function, spill_all=config.spill_all)
        lower_frame(machine_function)
        program.add_function(machine_function)

    assign_addresses(program, stack_reserve=options.stack_reserve)
    return program


# --------------------------------------------------------------------------- #
# Linking helpers
# --------------------------------------------------------------------------- #
def _called_functions(module: Module) -> set:
    graph = build_call_graph(module)
    called = set()
    for targets in graph.callees.values():
        called |= targets
    return called


def _link_runtime_if_needed(module: Module) -> None:
    """Link the soft-float runtime if the module calls any of its routines."""
    from repro.runtime import softfloat

    called = _called_functions(module)
    needed = [name for name in called
              if name.startswith("__fp_") and name not in module.functions]
    if not needed:
        return
    runtime = softfloat.soft_float_module()
    for function in runtime.functions.values():
        if function.name not in module.functions:
            module.add_function(function)
    for data in runtime.globals.values():
        if data.name not in module.globals:
            module.add_global(data)


def _prune_unreachable_functions(module: Module, entry: str) -> None:
    graph = build_call_graph(module)
    keep = graph.reachable_from(entry)
    for name in list(module.functions):
        if name not in keep:
            del module.functions[name]
