"""Code generation: instruction selection, register allocation, frame lowering.

The top-level entry point is :func:`repro.codegen.compiler.compile_ir_module`
(or :func:`repro.codegen.compiler.compile_source`), which runs the optimization
pipeline for the requested ``-O`` level, selects instructions, allocates
registers, lays out stack frames and links the result into a
:class:`repro.machine.MachineProgram`.
"""

from repro.codegen.isel import select_instructions, ISelError
from repro.codegen.regalloc import allocate_registers, RegAllocError
from repro.codegen.framelower import lower_frame
from repro.codegen.optlevels import OptLevel, PIPELINES
from repro.codegen.compiler import (
    compile_ir_module,
    compile_source,
    CompileOptions,
)

__all__ = [
    "select_instructions",
    "ISelError",
    "allocate_registers",
    "RegAllocError",
    "lower_frame",
    "OptLevel",
    "PIPELINES",
    "compile_ir_module",
    "compile_source",
    "CompileOptions",
]
