"""Optimization-level definitions (mirroring the GCC levels used by the paper).

The paper evaluates its flash-RAM placement at ``-O0``, ``-O1``, ``-O2``,
``-O3`` and ``-Os`` of GCC 4.8.2.  Our pipelines are necessarily simpler, but
preserve the property that matters to the placement problem: different levels
produce differently shaped code (more/fewer blocks, spills, memory traffic),
so the placement ILP faces a different instance at each level.

* ``O0`` — no IR optimization, spill-everything register allocation.
* ``O1`` — constant folding, block-local copy propagation, DCE, CFG cleanup,
  linear-scan register allocation.
* ``O2`` — O1 plus common-subexpression elimination and a second pipeline
  iteration.
* ``O3`` — O2 with a third iteration of the pipeline (the paper's O3 results
  are close to O2 for these kernels too).
* ``Os`` — the O2 pipeline, with compare-and-branch-with-zero (``cbz``)
  disabled in favour of reusing compare results; net effect is slightly
  denser code.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List

from repro.passes import (
    CommonSubexpressionEliminationPass,
    ConstantFoldingPass,
    CopyPropagationPass,
    DeadCodeEliminationPass,
    SimplifyCFGPass,
)
from repro.passes.pass_manager import FunctionPass, PassManager


class OptLevel(Enum):
    """Named optimization levels accepted by the compiler driver."""

    O0 = "O0"
    O1 = "O1"
    O2 = "O2"
    O3 = "O3"
    OS = "Os"

    def __str__(self) -> str:
        return self.value

    @classmethod
    def parse(cls, text: str) -> "OptLevel":
        normalized = text.lstrip("-")
        for level in cls:
            if level.value.lower() == normalized.lower():
                return level
        raise ValueError(f"unknown optimization level {text!r}")


@dataclass
class PipelineConfig:
    """What a given optimization level does."""

    level: OptLevel
    passes: List[FunctionPass]
    iterations: int
    spill_all: bool
    use_cbz: bool


def _standard_passes(with_cse: bool) -> List[FunctionPass]:
    passes: List[FunctionPass] = [
        ConstantFoldingPass(),
        CopyPropagationPass(),
    ]
    if with_cse:
        passes.append(CommonSubexpressionEliminationPass())
    passes.extend([
        DeadCodeEliminationPass(),
        SimplifyCFGPass(),
    ])
    return passes


PIPELINES = {
    OptLevel.O0: PipelineConfig(OptLevel.O0, [], 0, spill_all=True, use_cbz=False),
    OptLevel.O1: PipelineConfig(OptLevel.O1, _standard_passes(with_cse=False), 1,
                                spill_all=False, use_cbz=True),
    OptLevel.O2: PipelineConfig(OptLevel.O2, _standard_passes(with_cse=True), 2,
                                spill_all=False, use_cbz=True),
    OptLevel.O3: PipelineConfig(OptLevel.O3, _standard_passes(with_cse=True), 3,
                                spill_all=False, use_cbz=True),
    OptLevel.OS: PipelineConfig(OptLevel.OS, _standard_passes(with_cse=True), 2,
                                spill_all=False, use_cbz=False),
}


def pass_manager_for(level: OptLevel) -> PassManager:
    """Create a :class:`PassManager` configured for *level*."""
    config = PIPELINES[level]
    return PassManager(config.passes, iterate=max(config.iterations, 1))
