"""Frame lowering: prologue/epilogue insertion and frame-reference resolution.

After register allocation the function knows its frame objects (local arrays
and spill slots) and which callee-saved registers it uses.  This pass

* lays out the frame and rewrites symbolic :class:`FrameRef` operands into
  SP-relative immediates,
* inserts ``push``/``sub sp`` prologues and ``add sp``/``pop`` epilogues,
* replaces ``bx lr`` with ``pop {..., pc}`` when the link register was saved.
"""

from __future__ import annotations

from typing import List

from repro.isa.instructions import Imm, MachineInstr, Opcode, RegList
from repro.isa.registers import LR, PC, SP, Reg
from repro.machine.blocks import MachineFunction
from repro.machine.frame import FrameLayout, FrameRef


def lower_frame(function: MachineFunction) -> FrameLayout:
    """Lower the stack frame of *function* in place and return its layout."""
    layout = FrameLayout()
    for name, size in sorted(function.frame_objects.items()):
        layout.add(name, size)
    frame_size = layout.aligned_size()
    function.frame_size = frame_size

    _resolve_frame_refs(function, layout)
    _insert_prologue_epilogue(function, frame_size)
    return layout


def _resolve_frame_refs(function: MachineFunction, layout: FrameLayout) -> None:
    for block in function.iter_blocks():
        for instr in block.instructions:
            new_operands = []
            for operand in instr.operands:
                if isinstance(operand, FrameRef):
                    new_operands.append(Imm(layout.offset_of(operand.name)))
                else:
                    new_operands.append(operand)
            instr.operands = new_operands


def _insert_prologue_epilogue(function: MachineFunction, frame_size: int) -> None:
    saved: List[Reg] = list(function.saved_registers)
    push_lr = function.makes_calls
    push_regs = saved + ([LR] if push_lr else [])

    prologue: List[MachineInstr] = []
    if push_regs:
        prologue.append(MachineInstr(Opcode.PUSH, [RegList(tuple(push_regs))],
                                     comment="prologue"))
    if frame_size > 0:
        prologue.append(MachineInstr(Opcode.SUB, [SP, SP, Imm(frame_size)],
                                     comment="prologue"))
    if prologue:
        entry = function.entry_block
        entry.instructions = prologue + entry.instructions

    for block in function.iter_blocks():
        new_instructions: List[MachineInstr] = []
        for instr in block.instructions:
            is_return = (instr.opcode is Opcode.BX and instr.operands
                         and instr.operands[0] == LR)
            if not is_return:
                new_instructions.append(instr)
                continue
            if frame_size > 0:
                new_instructions.append(MachineInstr(
                    Opcode.ADD, [SP, SP, Imm(frame_size)], comment="epilogue"))
            if push_lr:
                pop_regs = tuple(saved + [PC])
                new_instructions.append(MachineInstr(
                    Opcode.POP, [RegList(pop_regs)], comment="epilogue"))
            else:
                if saved:
                    new_instructions.append(MachineInstr(
                        Opcode.POP, [RegList(tuple(saved))], comment="epilogue"))
                new_instructions.append(instr)
        block.instructions = new_instructions
