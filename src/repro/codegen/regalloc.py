"""Register allocation.

Two allocators are provided:

* :func:`allocate_registers` — a linear-scan allocator over conservative live
  intervals, used at ``-O1`` and above.  Values live across a call are kept
  out of caller-saved registers; values that cannot be coloured are spilled to
  stack slots and rewritten through the reserved scratch registers.
* the *spill-everything* mode (``spill_all=True``) — every virtual register
  lives in a stack slot and is loaded/stored around each use, reproducing the
  shape of unoptimised (``-O0``) compiler output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.liveness import compute_liveness
from repro.isa.instructions import MachineInstr, Opcode
from repro.isa.registers import (
    ALLOCATABLE_REGS,
    ARG_REGS,
    CALLEE_SAVED_REGS,
    CALLER_SAVED_REGS,
    SP,
    SPILL_SCRATCH_REGS,
    Reg,
)
from repro.machine.blocks import MachineFunction
from repro.machine.frame import FrameRef


class RegAllocError(Exception):
    """Raised when allocation cannot complete (should not happen in practice)."""


@dataclass
class AllocationResult:
    """What the allocator produced, for tests and diagnostics."""

    assignment: Dict[Reg, Reg] = field(default_factory=dict)
    spilled: Set[Reg] = field(default_factory=set)
    used_callee_saved: List[Reg] = field(default_factory=list)


@dataclass
class _Interval:
    vreg: Reg
    start: int
    end: int
    crosses_call: bool = False
    assigned: Optional[Reg] = None


# --------------------------------------------------------------------------- #
# Interval construction
# --------------------------------------------------------------------------- #
def _number_instructions(function: MachineFunction) -> Dict[str, Tuple[int, int]]:
    """Assign a position range (start, end) to every block, in layout order."""
    ranges: Dict[str, Tuple[int, int]] = {}
    position = 0
    for block in function.iter_blocks():
        start = position
        position += max(len(block.instructions), 1)
        ranges[block.name] = (start, position - 1)
    return ranges


def _build_intervals(function: MachineFunction) -> List[_Interval]:
    liveness = compute_liveness(function)
    ranges = _number_instructions(function)
    intervals: Dict[Reg, _Interval] = {}

    def touch(vreg: Reg, position: int) -> None:
        interval = intervals.get(vreg)
        if interval is None:
            intervals[vreg] = _Interval(vreg, position, position)
        else:
            interval.start = min(interval.start, position)
            interval.end = max(interval.end, position)

    for block in function.iter_blocks():
        start, end = ranges[block.name]
        for vreg in liveness.live_in[block.name]:
            touch(vreg, start)
        for vreg in liveness.live_out[block.name]:
            touch(vreg, end)
        position = start
        for instr in block.instructions:
            for reg in instr.uses():
                if reg.virtual:
                    touch(reg, position)
            for reg in instr.defs():
                if reg.virtual:
                    touch(reg, position)
            position += 1

    call_regions = _find_call_regions(function, ranges)
    for interval in intervals.values():
        interval.crosses_call = any(
            interval.start <= region_end and interval.end >= region_start
            for region_start, region_end in call_regions)
    return sorted(intervals.values(), key=lambda i: (i.start, i.end))


def _find_call_regions(function: MachineFunction,
                       ranges: Dict[str, Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Positions of each call plus its argument-setup prefix."""
    regions: List[Tuple[int, int]] = []
    for block in function.iter_blocks():
        start, _ = ranges[block.name]
        for index, instr in enumerate(block.instructions):
            if instr.opcode is not Opcode.BL:
                continue
            begin = index
            while begin > 0:
                prev = block.instructions[begin - 1]
                if (prev.opcode in (Opcode.MOV, Opcode.LDR_LIT)
                        and prev.operands
                        and isinstance(prev.operands[0], Reg)
                        and prev.operands[0] in ARG_REGS
                        and not prev.operands[0].virtual):
                    begin -= 1
                else:
                    break
            regions.append((start + begin, start + index))
    return regions


# --------------------------------------------------------------------------- #
# Linear scan
# --------------------------------------------------------------------------- #
def _linear_scan(intervals: List[_Interval]) -> Tuple[Dict[Reg, Reg], Set[Reg]]:
    assignment: Dict[Reg, Reg] = {}
    spilled: Set[Reg] = set()
    active: List[_Interval] = []
    free: Set[Reg] = set(ALLOCATABLE_REGS)

    caller_saved = [r for r in ALLOCATABLE_REGS if r in CALLER_SAVED_REGS]
    callee_saved = [r for r in ALLOCATABLE_REGS if r in CALLEE_SAVED_REGS]

    for interval in intervals:
        # Expire finished intervals.
        for old in list(active):
            if old.end < interval.start:
                active.remove(old)
                if old.assigned is not None:
                    free.add(old.assigned)

        preferred = (callee_saved + caller_saved if interval.crosses_call
                     else caller_saved + callee_saved)
        allowed = callee_saved if interval.crosses_call else preferred
        candidates = [r for r in (allowed if interval.crosses_call else preferred)
                      if r in free]
        if candidates:
            reg = candidates[0]
            free.discard(reg)
            interval.assigned = reg
            assignment[interval.vreg] = reg
            active.append(interval)
            continue

        # Try to steal from the active interval that ends last, provided its
        # register is legal for the current interval.
        victims = sorted(active, key=lambda i: i.end, reverse=True)
        stolen = None
        for victim in victims:
            if victim.end <= interval.end:
                break
            if victim.assigned is None:
                continue
            if interval.crosses_call and victim.assigned not in CALLEE_SAVED_REGS:
                continue
            stolen = victim
            break
        if stolen is not None:
            reg = stolen.assigned
            spilled.add(stolen.vreg)
            assignment.pop(stolen.vreg, None)
            stolen.assigned = None
            active.remove(stolen)
            interval.assigned = reg
            assignment[interval.vreg] = reg
            active.append(interval)
        else:
            spilled.add(interval.vreg)
    return assignment, spilled


# --------------------------------------------------------------------------- #
# Instruction rewriting
# --------------------------------------------------------------------------- #
def _spill_slot_name(vreg: Reg) -> str:
    return f"spill.{vreg.index}"


def _rewrite_instructions(function: MachineFunction, assignment: Dict[Reg, Reg],
                          spilled: Set[Reg]) -> None:
    for block in function.iter_blocks():
        rewritten: List[MachineInstr] = []
        for instr in block.instructions:
            spilled_here = [r for r in _instr_regs(instr)
                            if r.virtual and r in spilled]
            scratch_map: Dict[Reg, Reg] = {}
            for index, vreg in enumerate(_dedupe(spilled_here)):
                if index >= len(SPILL_SCRATCH_REGS):
                    raise RegAllocError(
                        f"instruction needs more than {len(SPILL_SCRATCH_REGS)} "
                        f"spill scratch registers: {instr}")
                scratch_map[vreg] = SPILL_SCRATCH_REGS[index]

            uses = set(instr.uses())
            defs = set(instr.defs())

            # Reload spilled operands that are read.
            for vreg, scratch in scratch_map.items():
                if vreg in uses:
                    rewritten.append(MachineInstr(
                        Opcode.LDR, [scratch, SP, FrameRef(_spill_slot_name(vreg))],
                        comment=f"reload {vreg.name}"))

            _replace_regs(instr, assignment, scratch_map)
            rewritten.append(instr)

            # Store spilled results that were written.
            for vreg, scratch in scratch_map.items():
                if vreg in defs:
                    rewritten.append(MachineInstr(
                        Opcode.STR, [scratch, SP, FrameRef(_spill_slot_name(vreg))],
                        comment=f"spill {vreg.name}"))
        block.instructions = rewritten


def _instr_regs(instr: MachineInstr) -> List[Reg]:
    regs: List[Reg] = []
    for operand in instr.operands:
        if isinstance(operand, Reg):
            regs.append(operand)
    return regs


def _dedupe(regs: List[Reg]) -> List[Reg]:
    seen: List[Reg] = []
    for reg in regs:
        if reg not in seen:
            seen.append(reg)
    return seen


def _replace_regs(instr: MachineInstr, assignment: Dict[Reg, Reg],
                  scratch_map: Dict[Reg, Reg]) -> None:
    new_operands = []
    for operand in instr.operands:
        if isinstance(operand, Reg) and operand.virtual:
            if operand in scratch_map:
                new_operands.append(scratch_map[operand])
            elif operand in assignment:
                new_operands.append(assignment[operand])
            else:
                raise RegAllocError(f"virtual register {operand.name} was neither "
                                    f"assigned nor spilled in {instr}")
        else:
            new_operands.append(operand)
    instr.operands = new_operands


# --------------------------------------------------------------------------- #
# Public entry points
# --------------------------------------------------------------------------- #
def allocate_registers(function: MachineFunction,
                       spill_all: bool = False) -> AllocationResult:
    """Allocate registers in place and register spill slots on the function."""
    result = AllocationResult()

    if spill_all:
        all_vregs: Set[Reg] = set()
        for block in function.iter_blocks():
            for instr in block.instructions:
                for reg in _instr_regs(instr):
                    if reg.virtual:
                        all_vregs.add(reg)
        assignment: Dict[Reg, Reg] = {}
        spilled = all_vregs
    else:
        intervals = _build_intervals(function)
        assignment, spilled = _linear_scan(intervals)

    _rewrite_instructions(function, assignment, spilled)

    for vreg in spilled:
        slot = _spill_slot_name(vreg)
        if slot not in function.frame_objects:
            function.frame_objects[slot] = 4

    used = {reg for reg in assignment.values() if reg in CALLEE_SAVED_REGS}
    result.assignment = assignment
    result.spilled = spilled
    result.used_callee_saved = sorted(used, key=lambda r: r.index)
    function.saved_registers = list(result.used_callee_saved)
    return result
