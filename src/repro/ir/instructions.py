"""IR instruction definitions.

Ordinary instructions produce at most one virtual-register result.  Every
basic block ends with exactly one :class:`Terminator` (``jump``, ``branch`` or
``ret``).  Comparison conditions use lower-case ARM-style mnemonics so the
instruction selector can map them directly onto machine condition codes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.ir.values import Const, Operand, VReg

#: Binary opcodes supported by :class:`BinOp`.
BINARY_OPS = (
    "add", "sub", "mul", "sdiv", "udiv", "srem", "urem",
    "and", "or", "xor", "shl", "lshr", "ashr",
)

#: Comparison conditions usable in :class:`Branch`.
COMPARE_CONDS = ("eq", "ne", "lt", "le", "gt", "ge", "lo", "ls", "hi", "hs")


@dataclass
class Instruction:
    """Base class for non-terminator IR instructions."""

    def result(self) -> Optional[VReg]:
        """The virtual register defined by this instruction, if any."""
        return getattr(self, "dst", None)

    def operands(self) -> List[Operand]:
        """All value operands read by this instruction."""
        return []

    def replace_operands(self, mapping) -> None:
        """Replace operands according to ``mapping`` (old operand -> new)."""


@dataclass
class Terminator(Instruction):
    """Base class for block terminators."""

    def targets(self) -> List[str]:
        return []


# --------------------------------------------------------------------------- #
# Ordinary instructions
# --------------------------------------------------------------------------- #
@dataclass
class BinOp(Instruction):
    op: str
    dst: VReg
    lhs: Operand
    rhs: Operand

    def __post_init__(self):
        if self.op not in BINARY_OPS:
            raise ValueError(f"unknown binary op {self.op!r}")

    def operands(self) -> List[Operand]:
        return [self.lhs, self.rhs]

    def replace_operands(self, mapping) -> None:
        self.lhs = mapping.get(self.lhs, self.lhs)
        self.rhs = mapping.get(self.rhs, self.rhs)

    def __str__(self) -> str:
        return f"{self.dst!r} = {self.op} {self.lhs!r}, {self.rhs!r}"


@dataclass
class Mov(Instruction):
    dst: VReg
    src: Operand

    def operands(self) -> List[Operand]:
        return [self.src]

    def replace_operands(self, mapping) -> None:
        self.src = mapping.get(self.src, self.src)

    def __str__(self) -> str:
        return f"{self.dst!r} = mov {self.src!r}"


@dataclass
class Load(Instruction):
    """``dst = load width, [base + offset]`` (byte offset)."""

    dst: VReg
    base: Operand
    offset: Operand
    width: int = 4

    def operands(self) -> List[Operand]:
        return [self.base, self.offset]

    def replace_operands(self, mapping) -> None:
        self.base = mapping.get(self.base, self.base)
        self.offset = mapping.get(self.offset, self.offset)

    def __str__(self) -> str:
        return f"{self.dst!r} = load.w{self.width} [{self.base!r} + {self.offset!r}]"


@dataclass
class Store(Instruction):
    """``store width, src -> [base + offset]`` (byte offset)."""

    src: Operand
    base: Operand
    offset: Operand
    width: int = 4

    def operands(self) -> List[Operand]:
        return [self.src, self.base, self.offset]

    def replace_operands(self, mapping) -> None:
        self.src = mapping.get(self.src, self.src)
        self.base = mapping.get(self.base, self.base)
        self.offset = mapping.get(self.offset, self.offset)

    def __str__(self) -> str:
        return f"store.w{self.width} {self.src!r} -> [{self.base!r} + {self.offset!r}]"


@dataclass
class AddrOf(Instruction):
    """``dst = &global`` — the address of a module-level symbol."""

    dst: VReg
    symbol: str

    def __str__(self) -> str:
        return f"{self.dst!r} = addrof @{self.symbol}"


@dataclass
class FrameAddr(Instruction):
    """``dst = &frame_object`` — the address of a stack-allocated array."""

    dst: VReg
    object_name: str

    def __str__(self) -> str:
        return f"{self.dst!r} = frameaddr {self.object_name}"


@dataclass
class Call(Instruction):
    """``dst = call callee(args...)``; ``dst`` is None for void calls."""

    dst: Optional[VReg]
    callee: str
    args: List[Operand] = field(default_factory=list)

    def result(self) -> Optional[VReg]:
        return self.dst

    def operands(self) -> List[Operand]:
        return list(self.args)

    def replace_operands(self, mapping) -> None:
        self.args = [mapping.get(a, a) for a in self.args]

    def __str__(self) -> str:
        args = ", ".join(repr(a) for a in self.args)
        prefix = f"{self.dst!r} = " if self.dst is not None else ""
        return f"{prefix}call @{self.callee}({args})"


# --------------------------------------------------------------------------- #
# Terminators
# --------------------------------------------------------------------------- #
@dataclass
class Jump(Terminator):
    target: str

    def targets(self) -> List[str]:
        return [self.target]

    def __str__(self) -> str:
        return f"jump {self.target}"


@dataclass
class Branch(Terminator):
    """Fused compare-and-branch: ``if (lhs cond rhs) goto then else goto els``."""

    cond: str
    lhs: Operand
    rhs: Operand
    then_target: str
    else_target: str

    def __post_init__(self):
        if self.cond not in COMPARE_CONDS:
            raise ValueError(f"unknown compare condition {self.cond!r}")

    def operands(self) -> List[Operand]:
        return [self.lhs, self.rhs]

    def replace_operands(self, mapping) -> None:
        self.lhs = mapping.get(self.lhs, self.lhs)
        self.rhs = mapping.get(self.rhs, self.rhs)

    def targets(self) -> List[str]:
        return [self.then_target, self.else_target]

    def __str__(self) -> str:
        return (f"branch {self.lhs!r} {self.cond} {self.rhs!r} ? "
                f"{self.then_target} : {self.else_target}")


@dataclass
class Ret(Terminator):
    value: Optional[Operand] = None

    def operands(self) -> List[Operand]:
        return [self.value] if self.value is not None else []

    def replace_operands(self, mapping) -> None:
        if self.value is not None:
            self.value = mapping.get(self.value, self.value)

    def __str__(self) -> str:
        return f"ret {self.value!r}" if self.value is not None else "ret"
