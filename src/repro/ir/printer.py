"""Textual dump of IR modules and functions (for debugging and tests)."""

from __future__ import annotations

from repro.ir.function import Function
from repro.ir.module import Module


def function_to_text(function: Function) -> str:
    """Render a function as readable multi-line text."""
    header = [f"func @{function.name}({', '.join(repr(p) for p in function.params)})"]
    if function.is_library:
        header[0] += "  ; library"
    for obj in function.frame_objects.values():
        header.append(f"  frame {obj.name}: {obj.size} bytes")
    body = [str(function.blocks[name]) for name in function.block_order]
    return "\n".join(header + body)


def module_to_text(module: Module) -> str:
    """Render a whole module as readable multi-line text."""
    parts = [f"module {module.name}"]
    for data in module.globals.values():
        kind = "const" if data.const else "data"
        parts.append(f"global {data.name}: {kind}, {data.size} bytes")
    for function in module.functions.values():
        parts.append("")
        parts.append(function_to_text(function))
    return "\n".join(parts)
