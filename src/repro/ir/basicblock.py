"""IR basic blocks: an instruction list closed by a single terminator.

Blocks know their predecessors/successors through the terminator, which is
what the CFG cleanup pass and the machine-level lowering traverse.
"""

from __future__ import annotations

from typing import List, Optional

from repro.ir.instructions import Instruction, Terminator


class BasicBlock:
    """A sequence of straight-line IR instructions with one terminator.

    The terminator is stored separately from the instruction list so passes
    never have to special-case "is this the last instruction".
    """

    def __init__(self, name: str):
        self.name = name
        self.instructions: List[Instruction] = []
        self.terminator: Optional[Terminator] = None

    # ------------------------------------------------------------------ #
    def append(self, instr: Instruction) -> Instruction:
        if isinstance(instr, Terminator):
            if self.terminator is not None:
                raise ValueError(f"block {self.name} already has a terminator")
            self.terminator = instr
        else:
            self.instructions.append(instr)
        return instr

    def successors(self) -> List[str]:
        """Names of successor blocks (empty for return blocks)."""
        if self.terminator is None:
            return []
        return self.terminator.targets()

    @property
    def is_terminated(self) -> bool:
        return self.terminator is not None

    def all_instructions(self) -> List[Instruction]:
        """Body instructions followed by the terminator (if present)."""
        result = list(self.instructions)
        if self.terminator is not None:
            result.append(self.terminator)
        return result

    def __repr__(self) -> str:
        return f"<BasicBlock {self.name}: {len(self.instructions)} instrs>"

    def __str__(self) -> str:
        lines = [f"{self.name}:"]
        for instr in self.instructions:
            lines.append(f"  {instr}")
        if self.terminator is not None:
            lines.append(f"  {self.terminator}")
        return "\n".join(lines)
