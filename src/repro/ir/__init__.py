"""Register-based three-address intermediate representation.

The IR sits between the mini-C frontend and the Thumb-2-like code generator.
It is deliberately simple: an unbounded set of 32-bit virtual registers,
explicit ``load``/``store`` for arrays and globals, fused compare-and-branch
terminators, and calls.  Floating point has already been lowered to
soft-float runtime calls by the time IR exists, so every value is a 32-bit
integer word.
"""

from repro.ir.values import VReg, Const, Operand
from repro.ir.instructions import (
    BinOp,
    Mov,
    Load,
    Store,
    AddrOf,
    FrameAddr,
    Call,
    Jump,
    Branch,
    Ret,
    Instruction,
    Terminator,
    BINARY_OPS,
    COMPARE_CONDS,
)
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function, FrameObject
from repro.ir.module import Module, GlobalData
from repro.ir.builder import IRBuilder
from repro.ir.verifier import verify_module, verify_function, IRVerificationError
from repro.ir.printer import module_to_text, function_to_text

__all__ = [
    "VReg",
    "Const",
    "Operand",
    "BinOp",
    "Mov",
    "Load",
    "Store",
    "AddrOf",
    "FrameAddr",
    "Call",
    "Jump",
    "Branch",
    "Ret",
    "Instruction",
    "Terminator",
    "BINARY_OPS",
    "COMPARE_CONDS",
    "BasicBlock",
    "Function",
    "FrameObject",
    "Module",
    "GlobalData",
    "IRBuilder",
    "verify_module",
    "verify_function",
    "IRVerificationError",
    "module_to_text",
    "function_to_text",
]
