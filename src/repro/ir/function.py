"""IR functions and their stack frame objects."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.ir.basicblock import BasicBlock
from repro.ir.values import VReg


@dataclass
class FrameObject:
    """A stack-allocated object (local array or scratch area)."""

    name: str
    size: int
    alignment: int = 4


class Function:
    """An IR function: parameters, basic blocks and frame objects.

    ``is_library`` marks functions that belong to the runtime/soft-float
    library.  The flash-RAM placement optimizer treats such functions as
    opaque (their blocks can never be moved to RAM), reproducing the paper's
    limitation that statically-linked library code is invisible to the pass.
    """

    def __init__(self, name: str, num_params: int = 0, returns_value: bool = True,
                 is_library: bool = False):
        self.name = name
        self.num_params = num_params
        self.returns_value = returns_value
        self.is_library = is_library
        self.params: List[VReg] = [VReg(i) for i in range(num_params)]
        self.blocks: Dict[str, BasicBlock] = {}
        self.block_order: List[str] = []
        self.frame_objects: Dict[str, FrameObject] = {}
        self._next_vreg = num_params
        self._next_block = 0

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    def new_vreg(self) -> VReg:
        reg = VReg(self._next_vreg)
        self._next_vreg += 1
        return reg

    def new_block(self, hint: str = "bb") -> BasicBlock:
        name = f"{hint}.{self._next_block}"
        self._next_block += 1
        block = BasicBlock(name)
        self.blocks[name] = block
        self.block_order.append(name)
        return block

    def add_frame_object(self, name: str, size: int, alignment: int = 4) -> FrameObject:
        if name in self.frame_objects:
            raise ValueError(f"frame object {name} already exists in {self.name}")
        obj = FrameObject(name, size, alignment)
        self.frame_objects[name] = obj
        return obj

    # ------------------------------------------------------------------ #
    # Navigation
    # ------------------------------------------------------------------ #
    @property
    def entry_block(self) -> BasicBlock:
        if not self.block_order:
            raise ValueError(f"function {self.name} has no blocks")
        return self.blocks[self.block_order[0]]

    def iter_blocks(self) -> Iterator[BasicBlock]:
        for name in self.block_order:
            yield self.blocks[name]

    def get_block(self, name: str) -> BasicBlock:
        return self.blocks[name]

    def remove_block(self, name: str) -> None:
        del self.blocks[name]
        self.block_order.remove(name)

    def predecessors(self) -> Dict[str, List[str]]:
        """Map block name -> list of predecessor block names."""
        preds: Dict[str, List[str]] = {name: [] for name in self.block_order}
        for block in self.iter_blocks():
            for succ in block.successors():
                if succ in preds:
                    preds[succ].append(block.name)
        return preds

    def vreg_count(self) -> int:
        return self._next_vreg

    def __repr__(self) -> str:
        return f"<Function {self.name} ({len(self.block_order)} blocks)>"
