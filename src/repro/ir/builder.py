"""Convenience builder for constructing IR programmatically.

Used by the AST lowering and directly by tests and the synthetic-workload
generators (for example the Figure 1 instruction-power microbenchmarks).
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    AddrOf,
    BinOp,
    Branch,
    Call,
    FrameAddr,
    Jump,
    Load,
    Mov,
    Ret,
    Store,
)
from repro.ir.values import Const, Operand, VReg, as_operand


class IRBuilder:
    """Builds instructions into a current insertion block."""

    def __init__(self, function: Function):
        self.function = function
        self.block: Optional[BasicBlock] = None

    # ------------------------------------------------------------------ #
    def set_block(self, block: BasicBlock) -> BasicBlock:
        self.block = block
        return block

    def new_block(self, hint: str = "bb") -> BasicBlock:
        return self.function.new_block(hint)

    def _emit(self, instr):
        if self.block is None:
            raise RuntimeError("no insertion block set")
        return self.block.append(instr)

    @property
    def is_terminated(self) -> bool:
        return self.block is not None and self.block.is_terminated

    # ------------------------------------------------------------------ #
    # Value-producing instructions
    # ------------------------------------------------------------------ #
    def mov(self, src: Union[Operand, int]) -> VReg:
        dst = self.function.new_vreg()
        self._emit(Mov(dst, as_operand(src)))
        return dst

    def binop(self, op: str, lhs: Union[Operand, int], rhs: Union[Operand, int]) -> VReg:
        dst = self.function.new_vreg()
        self._emit(BinOp(op, dst, as_operand(lhs), as_operand(rhs)))
        return dst

    def add(self, lhs, rhs) -> VReg:
        return self.binop("add", lhs, rhs)

    def sub(self, lhs, rhs) -> VReg:
        return self.binop("sub", lhs, rhs)

    def mul(self, lhs, rhs) -> VReg:
        return self.binop("mul", lhs, rhs)

    def load(self, base, offset=0, width: int = 4) -> VReg:
        dst = self.function.new_vreg()
        self._emit(Load(dst, as_operand(base), as_operand(offset), width))
        return dst

    def store(self, src, base, offset=0, width: int = 4) -> None:
        self._emit(Store(as_operand(src), as_operand(base), as_operand(offset), width))

    def addr_of(self, symbol: str) -> VReg:
        dst = self.function.new_vreg()
        self._emit(AddrOf(dst, symbol))
        return dst

    def frame_addr(self, object_name: str) -> VReg:
        dst = self.function.new_vreg()
        self._emit(FrameAddr(dst, object_name))
        return dst

    def call(self, callee: str, args: List[Union[Operand, int]],
             returns_value: bool = True) -> Optional[VReg]:
        dst = self.function.new_vreg() if returns_value else None
        self._emit(Call(dst, callee, [as_operand(a) for a in args]))
        return dst

    # ------------------------------------------------------------------ #
    # Terminators
    # ------------------------------------------------------------------ #
    def jump(self, target: BasicBlock) -> None:
        self._emit(Jump(target.name))

    def branch(self, cond: str, lhs, rhs, then_block: BasicBlock,
               else_block: BasicBlock) -> None:
        self._emit(Branch(cond, as_operand(lhs), as_operand(rhs),
                          then_block.name, else_block.name))

    def ret(self, value=None) -> None:
        self._emit(Ret(as_operand(value) if value is not None else None))
