"""Structural verification of IR modules.

The verifier catches the mistakes that most commonly break later stages:
missing terminators, branches to unknown blocks, calls to unknown functions,
references to unknown globals or frame objects, and use of virtual registers
that are never defined anywhere in the function (parameters count as
definitions).  It intentionally does not require SSA or dominance-based
def-before-use, because the IR is not SSA.
"""

from __future__ import annotations

from typing import Set

from repro.ir.function import Function
from repro.ir.instructions import AddrOf, Branch, Call, FrameAddr, Jump
from repro.ir.module import Module
from repro.ir.values import VReg


class IRVerificationError(Exception):
    """Raised when a module or function fails verification."""


def verify_function(function: Function, module: Module = None) -> None:
    """Verify one function; raises :class:`IRVerificationError` on problems."""
    if not function.block_order:
        raise IRVerificationError(f"{function.name}: function has no blocks")

    defined: Set[VReg] = set(function.params)
    for block in function.iter_blocks():
        for instr in block.all_instructions():
            result = instr.result()
            if result is not None:
                defined.add(result)

    for block in function.iter_blocks():
        if block.terminator is None:
            raise IRVerificationError(
                f"{function.name}/{block.name}: block has no terminator")
        for instr in block.all_instructions():
            for operand in instr.operands():
                if isinstance(operand, VReg) and operand not in defined:
                    raise IRVerificationError(
                        f"{function.name}/{block.name}: use of undefined {operand!r}")
            if isinstance(instr, (Jump, Branch)):
                for target in instr.targets():
                    if target not in function.blocks:
                        raise IRVerificationError(
                            f"{function.name}/{block.name}: branch to unknown "
                            f"block {target}")
            if isinstance(instr, FrameAddr):
                if instr.object_name not in function.frame_objects:
                    raise IRVerificationError(
                        f"{function.name}/{block.name}: unknown frame object "
                        f"{instr.object_name}")
            if module is not None:
                if isinstance(instr, Call):
                    if instr.callee not in module.functions:
                        raise IRVerificationError(
                            f"{function.name}/{block.name}: call to unknown "
                            f"function {instr.callee}")
                    callee = module.functions[instr.callee]
                    if len(instr.args) != len(callee.params):
                        raise IRVerificationError(
                            f"{function.name}/{block.name}: call to "
                            f"{instr.callee} passes {len(instr.args)} "
                            f"argument(s), expected {len(callee.params)}")
                if isinstance(instr, AddrOf) and instr.symbol not in module.globals:
                    raise IRVerificationError(
                        f"{function.name}/{block.name}: reference to unknown global "
                        f"{instr.symbol}")


def verify_module(module: Module) -> None:
    """Verify every function of *module*."""
    for function in module.functions.values():
        verify_function(function, module)
