"""IR value kinds: virtual registers and integer constants."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True, order=True)
class VReg:
    """A virtual register holding one 32-bit word."""

    index: int

    def __repr__(self) -> str:
        return f"%{self.index}"


@dataclass(frozen=True)
class Const:
    """A 32-bit integer constant operand.

    Values are stored as Python ints; the simulator and code generator wrap
    them to 32 bits where relevant.  Floating-point constants are represented
    by their IEEE-754 single-precision bit pattern (an integer) because the
    whole backend is integer-only.
    """

    value: int

    def __repr__(self) -> str:
        return f"${self.value}"


Operand = Union[VReg, Const]


def as_operand(value) -> Operand:
    """Coerce a Python int or existing operand into an :data:`Operand`."""
    if isinstance(value, (VReg, Const)):
        return value
    if isinstance(value, int):
        return Const(value)
    raise TypeError(f"cannot use {value!r} as an IR operand")
