"""IR modules: functions plus global data."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ir.function import Function


@dataclass
class GlobalData:
    """A module-level variable.

    ``words`` holds the initial contents as 32-bit words.  ``const`` data is
    placed in flash (``.rodata``) by the layout stage; mutable data lives in
    RAM (``.data``), matching the memory map of the paper's target where the
    runtime copies initialised data into RAM at startup.
    """

    name: str
    words: List[int] = field(default_factory=list)
    const: bool = False

    @property
    def size(self) -> int:
        return 4 * len(self.words)


class Module:
    """A compilation unit: named functions and global data."""

    def __init__(self, name: str = "module"):
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, GlobalData] = {}

    # ------------------------------------------------------------------ #
    def add_function(self, function: Function) -> Function:
        if function.name in self.functions:
            raise ValueError(f"function {function.name} already defined")
        self.functions[function.name] = function
        return function

    def add_global(self, data: GlobalData) -> GlobalData:
        if data.name in self.globals:
            raise ValueError(f"global {data.name} already defined")
        self.globals[data.name] = data
        return data

    def get_function(self, name: str) -> Function:
        return self.functions[name]

    def merge(self, other: "Module") -> None:
        """Link another module into this one (used to add the runtime library)."""
        for function in other.functions.values():
            self.add_function(function)
        for data in other.globals.values():
            self.add_global(data)

    def __repr__(self) -> str:
        return (f"<Module {self.name}: {len(self.functions)} functions, "
                f"{len(self.globals)} globals>")
