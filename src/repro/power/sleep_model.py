"""Periodic-sensing energy model (Section 7, Equations 10-12).

The device wakes every ``T`` seconds, runs the active region (energy ``E0``,
duration ``TA``), then sleeps at quiescent power ``PS``.  Applying the
optimization scales the active energy by ``ke`` and the active time by ``kt``;
the paper's key observation is that total energy can drop even when ``ke`` is
close to 1, because a longer active region shortens the (non-free) sleep
interval.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import List

#: Sleep (quiescent) power of the paper's STM32F103RB prototype, in watts.
PAPER_SLEEP_POWER_W = 3.5e-3

#: The paper's measured case-study values for fdct (Section 7, Eq. 13).
PAPER_FDCT_E0_J = 16.9e-3
PAPER_FDCT_TA_S = 1.18
PAPER_FDCT_KE = 0.825
PAPER_FDCT_KT = 1.33


@dataclass
class SleepParameters:
    """Inputs of the case-study model."""

    active_energy_j: float          # E0
    active_time_s: float            # TA
    energy_factor: float            # ke
    time_factor: float              # kt
    sleep_power_w: float = PAPER_SLEEP_POWER_W


class PeriodicSensingModel:
    """Evaluates Equations 10-12 for a periodic-sensing application."""

    def __init__(self, params: SleepParameters):
        if params.active_time_s <= 0:
            raise ValueError("active time must be positive")
        if params.time_factor * params.active_time_s < 0:
            raise ValueError("optimized active time must be non-negative")
        self.params = params

    # ------------------------------------------------------------------ #
    def baseline_energy(self, period_s: float) -> float:
        """Equation 10: energy of one period without the optimization."""
        p = self.params
        self._check_period(period_s, p.active_time_s)
        return p.active_energy_j + p.sleep_power_w * (period_s - p.active_time_s)

    def optimized_energy(self, period_s: float) -> float:
        """Equation 11: energy of one period with the optimization applied."""
        p = self.params
        self._check_period(period_s, p.time_factor * p.active_time_s)
        return (p.energy_factor * p.active_energy_j
                + p.sleep_power_w * (period_s - p.time_factor * p.active_time_s))

    _PERIOD_UNSET = object()

    def energy_saved(self, period_s: object = _PERIOD_UNSET) -> float:
        """Equation 12: ``Es = E0(1-ke) + PS*TA*(kt-1)`` (period-independent).

        The saving does not depend on the period ``T``; the historical
        ``period_s`` argument (positional or keyword) is accepted and
        ignored for one deprecation cycle.
        """
        if period_s is not self._PERIOD_UNSET:
            warnings.warn(
                "PeriodicSensingModel.energy_saved() no longer takes a period:"
                " Equation 12 is period-independent",
                DeprecationWarning, stacklevel=2)
        p = self.params
        return (p.active_energy_j * (1.0 - p.energy_factor)
                + p.sleep_power_w * p.active_time_s * (p.time_factor - 1.0))

    def energy_ratio(self, period_s: float) -> float:
        """Optimized / baseline energy for one period (Figure 9's y axis)."""
        return self.optimized_energy(period_s) / self.baseline_energy(period_s)

    def battery_life_extension(self, period_s: float) -> float:
        """Fractional battery-life extension at a given period.

        A battery of fixed capacity powers ``capacity / E`` periods, so the
        extension is ``E/E' - 1``.
        """
        return 1.0 / self.energy_ratio(period_s) - 1.0

    def sweep_periods(self, multiples: List[float]) -> List[dict]:
        """Evaluate the model at ``T = m * TA`` for each multiple (Figure 9).

        A row is only valid when both active regions fit in the period:
        ``TA <= T`` and ``kt * TA <= T`` (Equations 10 and 11); infeasible
        multiples are skipped rather than producing negative sleep intervals.
        """
        rows = []
        for multiple in multiples:
            period = multiple * self.params.active_time_s
            if (period < self.params.active_time_s - 1e-12
                    or period < self.params.time_factor
                    * self.params.active_time_s - 1e-12):
                continue
            rows.append({
                "period_s": period,
                "period_multiple": multiple,
                "energy_ratio": self.energy_ratio(period),
                "energy_percent": 100.0 * self.energy_ratio(period),
                "battery_extension": self.battery_life_extension(period),
            })
        return rows

    @staticmethod
    def _check_period(period_s: float, active_s: float) -> None:
        if period_s < active_s - 1e-12:
            raise ValueError(
                f"period {period_s} s is shorter than the active region {active_s} s")


def energy_saved(active_energy_j: float, active_time_s: float, energy_factor: float,
                 time_factor: float, sleep_power_w: float = PAPER_SLEEP_POWER_W) -> float:
    """Convenience wrapper around Equation 12."""
    model = PeriodicSensingModel(SleepParameters(
        active_energy_j, active_time_s, energy_factor, time_factor, sleep_power_w))
    return model.energy_saved()


def battery_life_extension(params: SleepParameters, period_s: float) -> float:
    """Convenience wrapper: battery-life extension at one period."""
    return PeriodicSensingModel(params).battery_life_extension(period_s)
