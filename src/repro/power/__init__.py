"""Application-level power modelling: the periodic-sensing case study."""

from repro.power.sleep_model import (
    PeriodicSensingModel,
    SleepParameters,
    energy_saved,
    battery_life_extension,
)

__all__ = [
    "PeriodicSensingModel",
    "SleepParameters",
    "energy_saved",
    "battery_life_extension",
]
