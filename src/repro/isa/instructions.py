"""Machine instruction representation for the Thumb-2-like target.

Instructions are kept in a structured (not encoded) form: an :class:`Opcode`,
a list of operands (:class:`~repro.isa.registers.Reg`, :class:`Imm`,
:class:`Sym` or :class:`RegList`) and an optional condition code.  The
structured form is shared by the code generator, the flash/RAM placement
transformation and the simulator, which keeps the three phases consistent
without a binary encoder/decoder round-trip.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.isa.conditions import Cond
from repro.isa.registers import PC, Reg


class Opcode(Enum):
    """Mnemonics of the supported Thumb-2-like subset."""

    # Data processing
    MOV = "mov"          # mov rd, <reg|imm>
    MVN = "mvn"          # mvn rd, <reg|imm>
    ADD = "add"          # add rd, rn, <reg|imm>
    SUB = "sub"
    RSB = "rsb"          # reverse subtract (used for negation)
    MUL = "mul"
    SDIV = "sdiv"
    UDIV = "udiv"
    AND = "and"
    ORR = "orr"
    EOR = "eor"
    LSL = "lsl"
    LSR = "lsr"
    ASR = "asr"
    CMP = "cmp"          # cmp rn, <reg|imm>

    # Literal-pool / address formation
    LDR_LIT = "ldr_lit"  # ldr rd, =<imm|symbol>

    # Memory
    LDR = "ldr"          # ldr rd, [rn, <imm|reg>]
    STR = "str"          # str rs, [rn, <imm|reg>]
    LDRB = "ldrb"
    STRB = "strb"

    # Stack
    PUSH = "push"
    POP = "pop"

    # Control flow
    B = "b"              # unconditional direct branch
    BCC = "bcc"          # conditional direct branch (condition in .cond)
    CBZ = "cbz"
    CBNZ = "cbnz"
    BL = "bl"            # call
    BX = "bx"            # indirect branch / return (bx lr)
    LDR_PC_LIT = "ldr_pc_lit"  # ldr pc, =<label>: long-range indirect branch

    # Misc
    IT = "it"            # if-then predication prefix (single instruction)
    NOP = "nop"

    def __str__(self) -> str:
        return self.value


class InstrClass(Enum):
    """Coarse instruction classes used by the energy model (Figure 1)."""

    NOP = "nop"
    ALU = "alu"
    MUL = "mul"
    DIV = "div"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    CALL = "call"
    RETURN = "return"
    STACK = "stack"
    OTHER = "other"


class _FrozenOperand:
    """Mixin for immutable operands: copying returns the object itself.

    Keeps ``deepcopy`` of whole programs cheap and — more importantly —
    preserves register identity inside :class:`RegList` operands.
    """

    def __copy__(self):
        return self

    def __deepcopy__(self, memo):
        return self


@dataclass(frozen=True)
class Imm(_FrozenOperand):
    """An immediate operand."""

    value: int

    def __repr__(self) -> str:
        return f"#{self.value}"


@dataclass(frozen=True)
class Sym(_FrozenOperand):
    """A symbolic operand: label, function name or global-variable name.

    ``addend`` allows ``=symbol+offset`` style references (used for addresses
    of elements inside global arrays when statically known).
    """

    name: str
    addend: int = 0

    def __repr__(self) -> str:
        if self.addend:
            return f"={self.name}+{self.addend}"
        return f"={self.name}"


@dataclass(frozen=True)
class RegList(_FrozenOperand):
    """A register list operand for ``push``/``pop``."""

    regs: Tuple[Reg, ...]

    def __repr__(self) -> str:
        return "{" + ", ".join(r.name for r in self.regs) + "}"


Operand = Union[Reg, Imm, Sym, RegList]


# Opcodes whose first operand is a destination register.
_DEF_FIRST = {
    Opcode.MOV,
    Opcode.MVN,
    Opcode.ADD,
    Opcode.SUB,
    Opcode.RSB,
    Opcode.MUL,
    Opcode.SDIV,
    Opcode.UDIV,
    Opcode.AND,
    Opcode.ORR,
    Opcode.EOR,
    Opcode.LSL,
    Opcode.LSR,
    Opcode.ASR,
    Opcode.LDR_LIT,
    Opcode.LDR,
    Opcode.LDRB,
}

_TERMINATORS = {
    Opcode.B,
    Opcode.BCC,
    Opcode.CBZ,
    Opcode.CBNZ,
    Opcode.BX,
    Opcode.LDR_PC_LIT,
}


@dataclass
class MachineInstr:
    """A single machine instruction.

    ``cond`` carries the condition for :data:`Opcode.BCC`, :data:`Opcode.IT`
    and for instructions predicated by a preceding ``it`` (in which case
    ``predicated`` is True, as in ``ldrne r5, =label``).
    """

    opcode: Opcode
    operands: List[Operand] = field(default_factory=list)
    cond: Optional[Cond] = None
    predicated: bool = False
    comment: str = ""

    # ------------------------------------------------------------------ #
    # Classification helpers
    # ------------------------------------------------------------------ #
    @property
    def is_terminator(self) -> bool:
        """True if this instruction may transfer control out of its block."""
        return self.opcode in _TERMINATORS or (
            self.opcode is Opcode.POP
            and self.operands
            and isinstance(self.operands[0], RegList)
            and PC in self.operands[0].regs
        )

    @property
    def is_call(self) -> bool:
        return self.opcode is Opcode.BL

    @property
    def is_memory_access(self) -> bool:
        return self.opcode in (Opcode.LDR, Opcode.STR, Opcode.LDRB, Opcode.STRB)

    @property
    def is_load(self) -> bool:
        return self.opcode in (Opcode.LDR, Opcode.LDRB, Opcode.LDR_LIT)

    @property
    def is_store(self) -> bool:
        return self.opcode in (Opcode.STR, Opcode.STRB)

    # ------------------------------------------------------------------ #
    # Register def/use analysis (used by liveness and register allocation)
    # ------------------------------------------------------------------ #
    def defs(self) -> List[Reg]:
        """Registers written by this instruction (excluding PC/SP effects)."""
        op = self.opcode
        if op in _DEF_FIRST and self.operands and isinstance(self.operands[0], Reg):
            return [self.operands[0]]
        if op is Opcode.POP and isinstance(self.operands[0], RegList):
            return [r for r in self.operands[0].regs if r is not PC]
        return []

    def uses(self) -> List[Reg]:
        """Registers read by this instruction."""
        op = self.opcode
        regs: List[Reg] = []
        if op in (Opcode.MOV, Opcode.MVN, Opcode.LDR_LIT):
            regs.extend(o for o in self.operands[1:] if isinstance(o, Reg))
        elif op in _DEF_FIRST:
            regs.extend(o for o in self.operands[1:] if isinstance(o, Reg))
        elif op in (Opcode.CMP, Opcode.CBZ, Opcode.CBNZ, Opcode.BX):
            regs.extend(o for o in self.operands if isinstance(o, Reg))
        elif op in (Opcode.STR, Opcode.STRB):
            regs.extend(o for o in self.operands if isinstance(o, Reg))
        elif op is Opcode.PUSH and isinstance(self.operands[0], RegList):
            regs.extend(self.operands[0].regs)
        return regs

    # ------------------------------------------------------------------ #
    # Printing
    # ------------------------------------------------------------------ #
    def __str__(self) -> str:
        mnemonic = str(self.opcode)
        if self.opcode is Opcode.BCC and self.cond is not None:
            mnemonic = f"b{self.cond}"
        elif self.opcode is Opcode.IT and self.cond is not None:
            mnemonic = f"it {self.cond}"
            return mnemonic
        elif self.predicated and self.cond is not None:
            mnemonic = f"{mnemonic}{self.cond}"
        if self.opcode is Opcode.LDR_LIT:
            rd, src = self.operands
            text = f"ldr{self.cond if self.predicated and self.cond else ''} {rd.name}, {src!r}"
        elif self.opcode is Opcode.LDR_PC_LIT:
            text = f"ldr pc, {self.operands[0]!r}"
        elif self.opcode in (Opcode.LDR, Opcode.STR, Opcode.LDRB, Opcode.STRB):
            rd, rn, off = self.operands
            text = f"{mnemonic} {rd.name}, [{rn.name}, {off!r}]"
        else:
            rendered = []
            for operand in self.operands:
                if isinstance(operand, Reg):
                    rendered.append(operand.name)
                else:
                    rendered.append(repr(operand))
            text = f"{mnemonic} {', '.join(rendered)}" if rendered else mnemonic
        if self.comment:
            text = f"{text}  ; {self.comment}"
        return text


def make(opcode: Opcode, *operands: Operand, cond: Optional[Cond] = None,
         predicated: bool = False, comment: str = "") -> MachineInstr:
    """Convenience constructor used throughout codegen and tests."""
    return MachineInstr(opcode, list(operands), cond=cond, predicated=predicated,
                        comment=comment)
