"""Thumb-2-like target ISA definitions.

This package defines the machine-level instruction set used by the code
generator, the code transformation and the simulator.  It is a compact
Cortex-M3-flavoured subset: 16 registers, NZCV flags, two-operand compares,
conditional and unconditional branches, literal-pool loads (``ldr rd, =x``),
load/store to byte- or word-addressed memory, push/pop and the ``it``
predication prefix used by the flash/RAM instrumentation of the paper.
"""

from repro.isa.registers import (
    Reg,
    R0,
    R1,
    R2,
    R3,
    R4,
    R5,
    R6,
    R7,
    R8,
    R9,
    R10,
    R11,
    R12,
    SP,
    LR,
    PC,
    ALLOCATABLE_REGS,
    ARG_REGS,
    CALLEE_SAVED_REGS,
    CALLER_SAVED_REGS,
    SCRATCH_REG,
    SPILL_SCRATCH_REGS,
)
from repro.isa.conditions import Cond, invert_cond, cond_holds
from repro.isa.instructions import (
    Opcode,
    Operand,
    Imm,
    Sym,
    MachineInstr,
    InstrClass,
)
from repro.isa.timing import cycles_for, instr_class, CLOCK_HZ, CYCLE_TIME_S
from repro.isa.encoding import size_of

__all__ = [
    "Reg",
    "R0",
    "R1",
    "R2",
    "R3",
    "R4",
    "R5",
    "R6",
    "R7",
    "R8",
    "R9",
    "R10",
    "R11",
    "R12",
    "SP",
    "LR",
    "PC",
    "ALLOCATABLE_REGS",
    "ARG_REGS",
    "CALLEE_SAVED_REGS",
    "CALLER_SAVED_REGS",
    "SCRATCH_REG",
    "SPILL_SCRATCH_REGS",
    "Cond",
    "invert_cond",
    "cond_holds",
    "Opcode",
    "Operand",
    "Imm",
    "Sym",
    "MachineInstr",
    "InstrClass",
    "cycles_for",
    "instr_class",
    "size_of",
    "CLOCK_HZ",
    "CYCLE_TIME_S",
]
