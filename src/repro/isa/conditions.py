"""Condition codes and their evaluation against NZCV flags."""

from __future__ import annotations

from enum import Enum


class Cond(Enum):
    """ARM-style condition codes used by conditional branches and ``it``."""

    EQ = "eq"
    NE = "ne"
    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"
    LO = "lo"  # unsigned lower
    LS = "ls"  # unsigned lower or same
    HI = "hi"  # unsigned higher
    HS = "hs"  # unsigned higher or same
    AL = "al"  # always

    def __str__(self) -> str:
        return self.value


_INVERSES = {
    Cond.EQ: Cond.NE,
    Cond.NE: Cond.EQ,
    Cond.LT: Cond.GE,
    Cond.GE: Cond.LT,
    Cond.LE: Cond.GT,
    Cond.GT: Cond.LE,
    Cond.LO: Cond.HS,
    Cond.HS: Cond.LO,
    Cond.LS: Cond.HI,
    Cond.HI: Cond.LS,
}


def invert_cond(cond: Cond) -> Cond:
    """Return the logical negation of a condition code.

    ``AL`` has no inverse and raises ``ValueError``.
    """
    if cond is Cond.AL:
        raise ValueError("the 'always' condition cannot be inverted")
    return _INVERSES[cond]


def cond_holds(cond: Cond, n: bool, z: bool, c: bool, v: bool) -> bool:
    """Evaluate a condition code against NZCV flags (ARM semantics)."""
    if cond is Cond.AL:
        return True
    if cond is Cond.EQ:
        return z
    if cond is Cond.NE:
        return not z
    if cond is Cond.LT:
        return n != v
    if cond is Cond.GE:
        return n == v
    if cond is Cond.GT:
        return (not z) and (n == v)
    if cond is Cond.LE:
        return z or (n != v)
    if cond is Cond.LO:
        return not c
    if cond is Cond.HS:
        return c
    if cond is Cond.LS:
        return (not c) or z
    if cond is Cond.HI:
        return c and not z
    raise ValueError(f"unknown condition {cond}")
