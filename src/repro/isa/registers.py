"""Register definitions for the Thumb-2-like target.

The register file mirrors the ARMv7-M general purpose registers: ``r0``-``r12``
plus the stack pointer, link register and program counter.  The calling
convention follows a simplified AAPCS:

* arguments are passed in ``r0``-``r3`` (at most four word arguments),
* the result is returned in ``r0``,
* ``r0``-``r3`` and ``r12`` are caller-saved,
* ``r4``-``r11`` are callee-saved,
* ``r12`` is reserved as an assembler/codegen scratch register and is never
  allocated to user values.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Reg:
    """A physical or virtual register.

    Physical registers have ``index >= 0`` and ``virtual=False``.  Virtual
    registers (used between instruction selection and register allocation)
    have ``virtual=True`` and an arbitrary non-negative index in a separate
    namespace.
    """

    index: int
    virtual: bool = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.name

    # Registers are immutable value objects, but parts of the simulator rely
    # on identity checks against the canonical singletons (``reg is PC``), so
    # copying a program must never produce fresh Reg instances.
    def __copy__(self) -> "Reg":
        return self

    def __deepcopy__(self, memo) -> "Reg":
        return self

    def __reduce__(self):
        # Pickling must also round-trip to the canonical singletons — the
        # on-disk program cache ships whole programs between processes, and
        # an unpickled ``pc`` that is not ``PC`` would silently break the
        # simulator's identity checks.  (NOT ``PHYSICAL_REGS``: those are
        # distinct instances of the same values.)
        if not self.virtual and 0 <= self.index < 16:
            return (_canonical_reg, (self.index,))
        return (Reg, (self.index, self.virtual))

    @property
    def name(self) -> str:
        if self.virtual:
            return f"%v{self.index}"
        special = {13: "sp", 14: "lr", 15: "pc"}
        return special.get(self.index, f"r{self.index}")

    @property
    def is_physical(self) -> bool:
        return not self.virtual


def vreg(index: int) -> Reg:
    """Create a virtual register with the given index."""
    return Reg(index, virtual=True)


R0 = Reg(0)
R1 = Reg(1)
R2 = Reg(2)
R3 = Reg(3)
R4 = Reg(4)
R5 = Reg(5)
R6 = Reg(6)
R7 = Reg(7)
R8 = Reg(8)
R9 = Reg(9)
R10 = Reg(10)
R11 = Reg(11)
R12 = Reg(12)
SP = Reg(13)
LR = Reg(14)
PC = Reg(15)

PHYSICAL_REGS = tuple(Reg(i) for i in range(16))

#: Unpickling target for physical registers (see ``Reg.__reduce__``): the
#: *named* singletons above, which ``reg is PC``-style checks compare against.
_CANONICAL_REGS = (R0, R1, R2, R3, R4, R5, R6, R7, R8, R9, R10, R11, R12,
                   SP, LR, PC)


def _canonical_reg(index: int) -> Reg:
    return _CANONICAL_REGS[index]

#: Registers used for the first four word-sized arguments and the return value.
ARG_REGS = (R0, R1, R2, R3)

#: Registers a callee must preserve across a call.
CALLEE_SAVED_REGS = (R4, R5, R6, R7, R8, R9, R10, R11)

#: Registers a caller must assume are clobbered by a call.
CALLER_SAVED_REGS = (R0, R1, R2, R3, R12)

#: Scratch register reserved for code generation / instrumentation sequences.
#: The paper's Figure 4 instrumentation uses ``r5`` freely because the rewrite
#: happens at the end of a basic block where the terminator's own condition
#: register pressure is known; we instead reserve ``r12`` so the rewrite never
#: interferes with allocated values.
SCRATCH_REG = R12

#: Registers the linear-scan allocator may hand out to virtual registers.
#: ``r10``-``r12`` are kept back as spill/materialisation scratch registers so
#: that any instruction with spilled operands can always be rewritten.
ALLOCATABLE_REGS = (R0, R1, R2, R3, R4, R5, R6, R7, R8, R9)

#: Scratch registers used when rewriting instructions with spilled operands.
SPILL_SCRATCH_REGS = (R10, R11, R12)
