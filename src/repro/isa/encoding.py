"""Instruction size model (bytes).

Thumb-2 is a mixed 16/32-bit encoding.  We use a simple but realistic size
model: most register-register data-processing instructions and short branches
are 2 bytes, wide immediates, long branches, literal loads and predicated
loads are 4 bytes.  Literal-pool loads additionally account for their 4-byte
pool entry because the paper's Figure 4 counts the pool word as part of the
instrumentation size cost (e.g. ``ldr pc, =label`` is quoted as 4 bytes).
"""

from __future__ import annotations

from repro.isa.instructions import Imm, MachineInstr, Opcode, Sym

#: Size in bytes of one literal-pool entry.
LITERAL_POOL_ENTRY_BYTES = 4

# Immediates representable in a 16-bit Thumb data-processing encoding.
_NARROW_IMM_LIMIT = 255


def _is_narrow_imm(value: int) -> bool:
    return 0 <= value <= _NARROW_IMM_LIMIT


def size_of(instr: MachineInstr) -> int:
    """Return the size of *instr* in bytes."""
    op = instr.opcode

    if op is Opcode.NOP or op is Opcode.IT:
        return 2
    if op in (Opcode.B, Opcode.CBZ, Opcode.CBNZ, Opcode.BX):
        return 2
    if op is Opcode.BCC:
        return 2
    if op is Opcode.BL:
        return 4
    if op is Opcode.LDR_PC_LIT:
        # 16-bit ldr pc, [pc, #imm] is not encodable; 32-bit encoding, and the
        # paper counts the literal word too, giving 4 bytes total in Figure 4
        # for the unconditional case (2-byte instr + shared literal rounded
        # into the quoted cost).  We follow the paper's accounting.
        return 4
    if op is Opcode.LDR_LIT:
        base = 2
        return base + (LITERAL_POOL_ENTRY_BYTES // 2 if instr.predicated else 2)
    if op in (Opcode.PUSH, Opcode.POP):
        return 2
    if op in (Opcode.LDR, Opcode.STR, Opcode.LDRB, Opcode.STRB):
        offset = instr.operands[2]
        if isinstance(offset, Imm) and not (0 <= offset.value <= 124):
            return 4
        return 2
    if op is Opcode.CMP:
        rhs = instr.operands[1]
        if isinstance(rhs, Imm) and not _is_narrow_imm(rhs.value):
            return 4
        return 2
    if op in (Opcode.MOV, Opcode.MVN):
        rhs = instr.operands[1]
        if isinstance(rhs, Imm) and not _is_narrow_imm(rhs.value):
            return 4
        if isinstance(rhs, Sym):
            return 4
        return 2
    if op in (Opcode.SDIV, Opcode.UDIV):
        return 4
    # Remaining data-processing instructions.
    if instr.operands and any(
        isinstance(operand, Imm) and not _is_narrow_imm(operand.value)
        for operand in instr.operands
    ):
        return 4
    if op in (Opcode.ADD, Opcode.SUB) and len(instr.operands) == 3:
        return 2
    if op in (Opcode.MUL, Opcode.AND, Opcode.ORR, Opcode.EOR,
              Opcode.LSL, Opcode.LSR, Opcode.ASR, Opcode.RSB):
        return 2
    return 2


def block_size(instrs) -> int:
    """Total byte size of a sequence of instructions."""
    return sum(size_of(i) for i in instrs)
