"""Cycle-cost and instruction-class model for the Cortex-M3-like core.

The timing numbers follow the ARM Cortex-M3 Technical Reference Manual at the
granularity the paper's cost model needs: single-cycle ALU operations,
two-cycle loads/stores, multi-cycle divides, and pipeline-refill penalties on
taken branches.  The instrumentation sequences of Figure 4 (``ldr pc,
=label``, ``it`` + predicated literal loads + ``bx``) reproduce the paper's
quoted cycle counts when costed with this model.
"""

from __future__ import annotations

from typing import FrozenSet

from repro.isa.instructions import InstrClass, MachineInstr, Opcode, RegList
from repro.isa.registers import PC, Reg

#: Core clock of the STM32F100 used by the paper (value B of the datasheet).
CLOCK_HZ = 24_000_000

#: Seconds per cycle.
CYCLE_TIME_S = 1.0 / CLOCK_HZ

#: Extra cycles paid when a taken branch forces a pipeline refill.
BRANCH_TAKEN_PENALTY = 2

#: Extra stall cycles when a load/store targets RAM while the instruction
#: stream itself is being fetched from RAM (single-ported SRAM contention,
#: the source of the paper's ``L_b`` parameter).
RAM_CONTENTION_STALL = 1

#: Wait states per flash access at 24 MHz (STM32F100 datasheet: one wait
#: state above 24 MHz band boundary; the flat model folds this into the
#: table costs, the pipelined model of :mod:`repro.sim.pipeline` charges it
#: per fetch unless hidden behind a multi-cycle instruction).
FLASH_WAIT_STATES = 1

#: Stall cycles when an instruction reads the destination register of the
#: immediately preceding load (pipelined timing model only).
LOAD_USE_STALL = 1


_CLASS_BY_OPCODE = {
    Opcode.NOP: InstrClass.NOP,
    Opcode.IT: InstrClass.ALU,
    Opcode.MOV: InstrClass.ALU,
    Opcode.MVN: InstrClass.ALU,
    Opcode.ADD: InstrClass.ALU,
    Opcode.SUB: InstrClass.ALU,
    Opcode.RSB: InstrClass.ALU,
    Opcode.AND: InstrClass.ALU,
    Opcode.ORR: InstrClass.ALU,
    Opcode.EOR: InstrClass.ALU,
    Opcode.LSL: InstrClass.ALU,
    Opcode.LSR: InstrClass.ALU,
    Opcode.ASR: InstrClass.ALU,
    Opcode.CMP: InstrClass.ALU,
    Opcode.MUL: InstrClass.MUL,
    Opcode.SDIV: InstrClass.DIV,
    Opcode.UDIV: InstrClass.DIV,
    Opcode.LDR: InstrClass.LOAD,
    Opcode.LDRB: InstrClass.LOAD,
    Opcode.LDR_LIT: InstrClass.LOAD,
    Opcode.STR: InstrClass.STORE,
    Opcode.STRB: InstrClass.STORE,
    Opcode.PUSH: InstrClass.STACK,
    Opcode.POP: InstrClass.STACK,
    Opcode.B: InstrClass.BRANCH,
    Opcode.BCC: InstrClass.BRANCH,
    Opcode.CBZ: InstrClass.BRANCH,
    Opcode.CBNZ: InstrClass.BRANCH,
    Opcode.LDR_PC_LIT: InstrClass.BRANCH,
    Opcode.BL: InstrClass.CALL,
    Opcode.BX: InstrClass.RETURN,
}


def instr_class(instr: MachineInstr) -> InstrClass:
    """Return the coarse class of *instr*, used by the energy model."""
    return _CLASS_BY_OPCODE.get(instr.opcode, InstrClass.OTHER)


def cycles_for(instr: MachineInstr, taken: bool = True) -> int:
    """Return the cycle cost of one execution of *instr*.

    ``taken`` only matters for conditional branches (``bcc``, ``cbz``,
    ``cbnz``) and for predicated instructions whose condition failed, which
    cost a single cycle.
    """
    op = instr.opcode

    if instr.predicated and not taken:
        return 1

    if op in (Opcode.NOP, Opcode.IT, Opcode.MOV, Opcode.MVN, Opcode.CMP,
              Opcode.ADD, Opcode.SUB, Opcode.RSB, Opcode.AND, Opcode.ORR,
              Opcode.EOR, Opcode.LSL, Opcode.LSR, Opcode.ASR):
        return 1
    if op is Opcode.MUL:
        return 1
    if op in (Opcode.SDIV, Opcode.UDIV):
        return 6
    if op in (Opcode.LDR, Opcode.LDRB, Opcode.LDR_LIT):
        return 2
    if op in (Opcode.STR, Opcode.STRB):
        return 2
    if op is Opcode.PUSH:
        regs = instr.operands[0]
        return 1 + (len(regs.regs) if isinstance(regs, RegList) else 1)
    if op is Opcode.POP:
        regs = instr.operands[0]
        count = len(regs.regs) if isinstance(regs, RegList) else 1
        extra = BRANCH_TAKEN_PENALTY if isinstance(regs, RegList) and PC in regs.regs else 0
        return 1 + count + extra
    if op is Opcode.B:
        return 1 + BRANCH_TAKEN_PENALTY
    if op in (Opcode.BCC, Opcode.CBZ, Opcode.CBNZ):
        return 1 + BRANCH_TAKEN_PENALTY if taken else 1
    if op is Opcode.BL:
        return 1 + BRANCH_TAKEN_PENALTY + 1
    if op is Opcode.BX:
        return 1 + BRANCH_TAKEN_PENALTY
    if op is Opcode.LDR_PC_LIT:
        # Literal fetch + pipeline refill: the paper quotes 4 cycles.
        return 4
    return 1


_LOAD_OPS = frozenset({Opcode.LDR, Opcode.LDRB, Opcode.LDR_LIT})
_BINARY_ALU_OPS = frozenset({Opcode.ADD, Opcode.SUB, Opcode.RSB, Opcode.AND,
                             Opcode.ORR, Opcode.EOR, Opcode.LSL, Opcode.LSR,
                             Opcode.ASR, Opcode.MUL, Opcode.SDIV, Opcode.UDIV})

_EMPTY_READS: "FrozenSet[int]" = frozenset()


def load_dest(instr: MachineInstr) -> int:
    """Destination register index of a load, or -1 for non-loads.

    Used by the pipelined timing model's load-use hazard detection.  ``pop``
    also loads, but its multi-cycle stack walk already covers the writeback
    latency, so it is deliberately excluded.
    """
    if instr.opcode in _LOAD_OPS and instr.operands:
        dst = instr.operands[0]
        if isinstance(dst, Reg):
            return dst.index
    return -1


def registers_read(instr: MachineInstr) -> "FrozenSet[int]":
    """Indices of the registers *instr* reads in its first pipeline stage.

    Conservative on purpose: only the operand positions that feed the
    address/ALU stage (where a load-use hazard bites) are reported, and any
    unexpected operand shape degrades to "reads nothing" rather than raising
    at decode time.
    """
    op = instr.opcode
    ops = instr.operands
    reads = []
    try:
        if op in (Opcode.MOV, Opcode.MVN):
            sources = (ops[1],)
        elif op in _BINARY_ALU_OPS:
            sources = (ops[1], ops[2])
        elif op is Opcode.CMP:
            sources = (ops[0], ops[1])
        elif op in (Opcode.LDR, Opcode.LDRB):
            sources = (ops[1], ops[2])
        elif op in (Opcode.STR, Opcode.STRB):
            sources = (ops[0], ops[1], ops[2])
        elif op in (Opcode.CBZ, Opcode.CBNZ, Opcode.BX):
            sources = (ops[0],)
        elif op is Opcode.PUSH:
            regs = ops[0]
            sources = tuple(regs.regs) if isinstance(regs, RegList) else ()
        else:
            return _EMPTY_READS
        for source in sources:
            if isinstance(source, Reg):
                reads.append(source.index)
    except (IndexError, AttributeError, TypeError):
        return _EMPTY_READS
    if not reads:
        return _EMPTY_READS
    return frozenset(reads)
