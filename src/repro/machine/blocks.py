"""Machine basic blocks and machine functions."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterator, List, Optional

from repro.isa.encoding import size_of
from repro.isa.instructions import MachineInstr, Opcode
from repro.isa.timing import cycles_for


class TerminatorKind(Enum):
    """How a block ends, mirroring the instrumentation cases of Figure 4."""

    UNCONDITIONAL = "unconditional"      # ends in `b label`
    CONDITIONAL = "conditional"          # ends in `b<cc> label` (+ fall-through)
    SHORT_CONDITIONAL = "short_conditional"  # ends in `cbz`/`cbnz` (+ fall-through)
    FALLTHROUGH = "fallthrough"          # no branch at all
    RETURN = "return"                    # `bx lr` / `pop {..., pc}`
    INDIRECT = "indirect"                # already an indirect branch


class MachineBlock:
    """A machine basic block.

    ``branch_target`` / ``fallthrough`` record the CFG edges explicitly so the
    placement pass and the simulator never have to re-derive them from label
    arithmetic.  ``section`` is ``"flash"`` originally; the flash-RAM
    transformation moves selected blocks to ``"ram"``.
    """

    def __init__(self, name: str, function_name: str):
        self.name = name
        self.function_name = function_name
        self.instructions: List[MachineInstr] = []
        self.branch_target: Optional[str] = None
        self.extra_target: Optional[str] = None
        self.fallthrough: Optional[str] = None
        self.section: str = "flash"
        self.address: Optional[int] = None
        self.instrumented: bool = False
        #: Lazily built predecoded instruction records (repro.sim.decode);
        #: ``(stamp, records)`` or None.  Never copied with the block.
        self._decode_cache = None

    def __deepcopy__(self, memo):
        import copy as _copy
        clone = self.__class__.__new__(self.__class__)
        memo[id(self)] = clone
        for key, value in self.__dict__.items():
            if key == "_decode_cache":
                clone._decode_cache = None
            else:
                setattr(clone, key, _copy.deepcopy(value, memo))
        return clone

    def __getstate__(self):
        # The decode cache holds closures: unpicklable, and lazily rebuilt.
        state = self.__dict__.copy()
        state["_decode_cache"] = None
        return state

    # ------------------------------------------------------------------ #
    def append(self, instr: MachineInstr) -> MachineInstr:
        self.instructions.append(instr)
        return instr

    def successors(self) -> List[str]:
        succs: List[str] = []
        if self.branch_target is not None:
            succs.append(self.branch_target)
        if self.extra_target is not None and self.extra_target not in succs:
            succs.append(self.extra_target)
        if self.fallthrough is not None and self.fallthrough not in succs:
            succs.append(self.fallthrough)
        return succs

    def all_instructions(self) -> List[MachineInstr]:
        return list(self.instructions)

    # ------------------------------------------------------------------ #
    # Size / cycle bookkeeping for the cost model
    # ------------------------------------------------------------------ #
    def size_bytes(self) -> int:
        """The ``S_b`` parameter: total code size of the block in bytes."""
        return sum(size_of(i) for i in self.instructions)

    def instruction_offsets(self) -> List[int]:
        """Byte offset of each instruction from the block start.

        Combined with ``address`` this gives every instruction's fetch
        address — the pipelined timing model uses it to map instructions to
        icache lines.
        """
        offsets: List[int] = []
        position = 0
        for instr in self.instructions:
            offsets.append(position)
            position += size_of(instr)
        return offsets

    def cycle_estimate(self) -> int:
        """The ``C_b`` parameter: estimated cycles for one execution.

        Conditional branches are costed at the average of the taken and
        not-taken cases, matching the paper's remark that ``C_b`` is always a
        best estimate.
        """
        total = 0.0
        for instr in self.instructions:
            if instr.opcode in (Opcode.BCC, Opcode.CBZ, Opcode.CBNZ):
                total += (cycles_for(instr, taken=True) +
                          cycles_for(instr, taken=False)) / 2.0
            else:
                total += cycles_for(instr, taken=True)
        return max(1, int(round(total)))

    def load_store_count(self) -> int:
        """Number of data-memory accesses (drives the ``L_b`` contention cost)."""
        return sum(1 for i in self.instructions
                   if i.opcode in (Opcode.LDR, Opcode.LDRB, Opcode.STR,
                                   Opcode.STRB, Opcode.LDR_LIT))

    def terminator_kind(self) -> TerminatorKind:
        """Classify how the block transfers control (Figure 4 cases)."""
        tail = self.instructions[-2:]
        opcodes = [instr.opcode for instr in tail]
        if not opcodes:
            return TerminatorKind.FALLTHROUGH
        last = opcodes[-1]
        if last is Opcode.B:
            # A `b<cc>`/`cbz` immediately before the `b` makes this the
            # two-way conditional case.
            if len(opcodes) == 2 and opcodes[0] is Opcode.BCC:
                return TerminatorKind.CONDITIONAL
            if len(opcodes) == 2 and opcodes[0] in (Opcode.CBZ, Opcode.CBNZ):
                return TerminatorKind.SHORT_CONDITIONAL
            return TerminatorKind.UNCONDITIONAL
        if last is Opcode.BCC:
            return TerminatorKind.CONDITIONAL
        if last in (Opcode.CBZ, Opcode.CBNZ):
            return TerminatorKind.SHORT_CONDITIONAL
        if last is Opcode.BX or (last is Opcode.POP and tail[-1].is_terminator):
            return TerminatorKind.RETURN
        if last is Opcode.LDR_PC_LIT:
            return TerminatorKind.INDIRECT
        return TerminatorKind.FALLTHROUGH

    def __repr__(self) -> str:
        return f"<MachineBlock {self.function_name}/{self.name} [{self.section}]>"

    def __str__(self) -> str:
        lines = [f"{self.name}:  ; section={self.section}"]
        for instr in self.instructions:
            lines.append(f"    {instr}")
        return "\n".join(lines)


class MachineFunction:
    """A machine function: ordered machine blocks plus frame information."""

    def __init__(self, name: str, num_params: int = 0, is_library: bool = False):
        self.name = name
        self.num_params = num_params
        self.is_library = is_library
        self.blocks: Dict[str, MachineBlock] = {}
        self.block_order: List[str] = []
        self.frame_size: int = 0
        self.frame_objects: Dict[str, int] = {}
        self.saved_registers: List = []
        self.makes_calls: bool = False

    # ------------------------------------------------------------------ #
    def add_block(self, name: str) -> MachineBlock:
        if name in self.blocks:
            raise ValueError(f"block {name} already exists in {self.name}")
        block = MachineBlock(name, self.name)
        self.blocks[name] = block
        self.block_order.append(name)
        return block

    @property
    def entry_block(self) -> MachineBlock:
        return self.blocks[self.block_order[0]]

    def iter_blocks(self) -> Iterator[MachineBlock]:
        for name in self.block_order:
            yield self.blocks[name]

    def get_block(self, name: str) -> MachineBlock:
        return self.blocks[name]

    def size_bytes(self) -> int:
        return sum(block.size_bytes() for block in self.iter_blocks())

    def callee_names(self) -> List[str]:
        """Names of functions this function calls (via ``bl``)."""
        names: List[str] = []
        for block in self.iter_blocks():
            for instr in block.instructions:
                if instr.opcode is Opcode.BL and instr.operands:
                    target = instr.operands[0]
                    name = getattr(target, "name", None)
                    if name is not None and name not in names:
                        names.append(name)
        return names

    def __repr__(self) -> str:
        return f"<MachineFunction {self.name} ({len(self.block_order)} blocks)>"

    def __str__(self) -> str:
        lines = [f"{self.name}:  ; frame={self.frame_size} bytes"]
        for block in self.iter_blocks():
            lines.append(str(block))
        return "\n".join(lines)
