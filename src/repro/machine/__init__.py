"""Machine-level program representation: blocks, functions, sections, layout."""

from repro.machine.blocks import MachineBlock, MachineFunction, TerminatorKind
from repro.machine.program import MachineProgram, Section, MemoryRegion
from repro.machine.frame import FrameRef, FrameLayout
from repro.machine.layout import assign_addresses, LayoutError, LayoutResult

__all__ = [
    "MachineBlock",
    "MachineFunction",
    "TerminatorKind",
    "MachineProgram",
    "Section",
    "MemoryRegion",
    "FrameRef",
    "FrameLayout",
    "assign_addresses",
    "LayoutError",
    "LayoutResult",
]
