"""Stack-frame references and frame layout.

Before frame lowering, instructions may reference stack objects (local
arrays, spill slots) symbolically through :class:`FrameRef` operands.  The
:class:`FrameLayout` assigns every object a byte offset from SP and the frame
lowering pass rewrites the references into plain immediates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass(frozen=True)
class FrameRef:
    """A symbolic reference to a stack-frame object (by name)."""

    name: str

    def __repr__(self) -> str:
        return f"[frame:{self.name}]"


@dataclass
class FrameLayout:
    """Assigns byte offsets (relative to SP after the prologue) to objects."""

    offsets: Dict[str, int] = field(default_factory=dict)
    size: int = 0

    def add(self, name: str, size: int, alignment: int = 4) -> int:
        if name in self.offsets:
            return self.offsets[name]
        self.size = _align(self.size, alignment)
        self.offsets[name] = self.size
        self.size += _align(size, 4)
        return self.offsets[name]

    def offset_of(self, name: str) -> int:
        return self.offsets[name]

    def aligned_size(self, alignment: int = 8) -> int:
        """Total frame size rounded up to the AAPCS stack alignment."""
        return _align(self.size, alignment)


def _align(value: int, alignment: int) -> int:
    remainder = value % alignment
    return value if remainder == 0 else value + alignment - remainder
