"""Whole-program machine representation and the target memory map."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterator, List, Optional

from repro.ir.module import GlobalData
from repro.machine.blocks import MachineBlock, MachineFunction


class Section(Enum):
    """Linker sections used by the layout stage."""

    TEXT = ".text"        # code executed from flash
    RAMCODE = ".ramcode"  # code relocated to RAM by the optimization
    RODATA = ".rodata"    # constant data, stays in flash
    DATA = ".data"        # mutable data, copied to RAM at startup


@dataclass(frozen=True)
class MemoryRegion:
    """A physical memory region of the SoC."""

    name: str
    origin: int
    size: int

    @property
    def end(self) -> int:
        return self.origin + self.size

    def contains(self, address: int) -> bool:
        return self.origin <= address < self.end


#: Memory map of the STM32F100RB used in the paper: 64 KB flash, 8 KB RAM.
FLASH_REGION = MemoryRegion("flash", 0x0800_0000, 64 * 1024)
RAM_REGION = MemoryRegion("ram", 0x2000_0000, 8 * 1024)


class MachineProgram:
    """A linked machine program: functions plus global data plus memory map."""

    def __init__(self, name: str = "program", entry: str = "main",
                 flash: MemoryRegion = FLASH_REGION,
                 ram: MemoryRegion = RAM_REGION):
        self.name = name
        self.entry = entry
        self.flash = flash
        self.ram = ram
        self.functions: Dict[str, MachineFunction] = {}
        self.function_order: List[str] = []
        self.globals: Dict[str, GlobalData] = {}
        self.global_addresses: Dict[str, int] = {}
        self.block_addresses: Dict[str, int] = {}
        #: Bumped by every address assignment; predecoded instruction caches
        #: (see :mod:`repro.sim.decode`) are stamped with it and rebuilt after
        #: any re-layout (e.g. the flash-RAM placement transformation).
        self.layout_generation: int = 0
        #: Trace-compiled superblock state (:mod:`repro.sim.superblock`):
        #: ``(generation, superblocks, hot_counts)`` or None.  Holds decode
        #: closures, so it is dropped on pickle/deepcopy (``__getstate__``).
        self._superblock_cache = None

    # ------------------------------------------------------------------ #
    def add_function(self, function: MachineFunction) -> MachineFunction:
        if function.name in self.functions:
            raise ValueError(f"function {function.name} already defined")
        self.functions[function.name] = function
        self.function_order.append(function.name)
        return function

    def add_global(self, data: GlobalData) -> GlobalData:
        if data.name in self.globals:
            raise ValueError(f"global {data.name} already defined")
        self.globals[data.name] = data
        return data

    def get_function(self, name: str) -> MachineFunction:
        return self.functions[name]

    def iter_functions(self) -> Iterator[MachineFunction]:
        for name in self.function_order:
            yield self.functions[name]

    def iter_blocks(self) -> Iterator[MachineBlock]:
        for function in self.iter_functions():
            yield from function.iter_blocks()

    def block_key(self, block: MachineBlock) -> str:
        """Globally unique key for a block (function-qualified)."""
        return f"{block.function_name}:{block.name}"

    def superblock_state(self):
        """Superblock map + hotness counters valid for the current layout.

        Returns ``(superblocks, hot_counts)``, both plain dicts keyed by
        ``(function_name, block_name)`` payloads.  Stamped with
        ``layout_generation`` exactly like the per-block decode caches: any
        re-layout makes the next call start from empty state, so stale
        superblocks can never execute against a moved block.
        """
        cache = self._superblock_cache
        if cache is None or cache[0] != self.layout_generation:
            if cache is not None and cache[1]:
                from repro.telemetry import get_telemetry
                hub = get_telemetry()
                if hub.enabled:
                    hub.add("sim.superblock.invalidations", len(cache[1]))
            cache = (self.layout_generation, {}, {})
            self._superblock_cache = cache
        return cache[1], cache[2]

    def __getstate__(self):
        # Superblocks hold decode-time closures: unpicklable, and bound to
        # this program object's blocks.  Copies rebuild them lazily.  (This
        # also covers deepcopy, which goes through __reduce_ex__.)
        state = self.__dict__.copy()
        state["_superblock_cache"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._superblock_cache = None

    def find_block(self, key: str) -> MachineBlock:
        function_name, block_name = key.split(":", 1)
        return self.functions[function_name].blocks[block_name]

    # ------------------------------------------------------------------ #
    # Size queries used by the evaluation and by R_spare derivation
    # ------------------------------------------------------------------ #
    def code_size(self) -> int:
        return sum(f.size_bytes() for f in self.iter_functions())

    def ram_code_size(self) -> int:
        return sum(b.size_bytes() for b in self.iter_blocks() if b.section == "ram")

    def mutable_data_size(self) -> int:
        return sum(g.size for g in self.globals.values() if not g.const)

    def const_data_size(self) -> int:
        return sum(g.size for g in self.globals.values() if g.const)

    def __repr__(self) -> str:
        return (f"<MachineProgram {self.name}: {len(self.functions)} functions, "
                f"{self.code_size()} bytes of code>")

    def to_text(self) -> str:
        """Assembly-like dump of the whole program."""
        lines = [f"; program {self.name} (entry: {self.entry})"]
        for data in self.globals.values():
            section = Section.RODATA.value if data.const else Section.DATA.value
            lines.append(f"; global {data.name} in {section}, {data.size} bytes")
        for function in self.iter_functions():
            lines.append("")
            lines.append(str(function))
        return "\n".join(lines)
