"""Address assignment ("linking") for machine programs.

Code blocks in the ``flash`` section are placed in flash after the constant
data; blocks moved to the ``ram`` section are placed in RAM after the mutable
data, exactly like the custom linker section the paper loads into RAM at
startup.  The resulting addresses feed the simulator (fetch memory selection)
and the RAM-budget accounting of the placement constraint (Equation 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.machine.program import MachineProgram


class LayoutError(Exception):
    """Raised when a program does not fit in its memory regions."""


@dataclass
class LayoutResult:
    """Summary of the address assignment."""

    flash_code_bytes: int = 0
    ram_code_bytes: int = 0
    rodata_bytes: int = 0
    data_bytes: int = 0
    stack_base: int = 0
    ram_free_bytes: int = 0


def _align(value: int, alignment: int = 4) -> int:
    remainder = value % alignment
    return value if remainder == 0 else value + alignment - remainder


def assign_addresses(program: MachineProgram, stack_reserve: int = 1024) -> LayoutResult:
    """Assign addresses to every global and basic block of *program*.

    ``stack_reserve`` is how much RAM is kept for the stack; the stack grows
    down from the top of RAM, so it is only used for the overflow check.
    """
    result = LayoutResult()
    program.layout_generation += 1

    # --- constant data in flash ------------------------------------------ #
    flash_cursor = program.flash.origin
    for data in program.globals.values():
        if data.const:
            program.global_addresses[data.name] = flash_cursor
            flash_cursor += _align(data.size)
    result.rodata_bytes = flash_cursor - program.flash.origin

    # --- code kept in flash ----------------------------------------------- #
    for function in program.iter_functions():
        for name in function.block_order:
            block = function.blocks[name]
            if block.section != "ram":
                block.address = flash_cursor
                program.block_addresses[program.block_key(block)] = flash_cursor
                flash_cursor += _align(block.size_bytes(), 2)
    result.flash_code_bytes = (flash_cursor - program.flash.origin
                               - result.rodata_bytes)
    if flash_cursor > program.flash.end:
        raise LayoutError(
            f"program does not fit in flash: needs {flash_cursor - program.flash.origin}"
            f" bytes, flash is {program.flash.size}")

    # --- mutable data in RAM ---------------------------------------------- #
    ram_cursor = program.ram.origin
    for data in program.globals.values():
        if not data.const:
            program.global_addresses[data.name] = ram_cursor
            ram_cursor += _align(data.size)
    result.data_bytes = ram_cursor - program.ram.origin

    # --- relocated code in RAM -------------------------------------------- #
    for function in program.iter_functions():
        for name in function.block_order:
            block = function.blocks[name]
            if block.section == "ram":
                block.address = ram_cursor
                program.block_addresses[program.block_key(block)] = ram_cursor
                ram_cursor += _align(block.size_bytes(), 2)
    result.ram_code_bytes = ram_cursor - program.ram.origin - result.data_bytes

    result.stack_base = program.ram.end
    result.ram_free_bytes = program.ram.end - ram_cursor
    if ram_cursor + stack_reserve > program.ram.end:
        raise LayoutError(
            f"RAM overflow: data+ramcode needs {ram_cursor - program.ram.origin} bytes "
            f"plus {stack_reserve} stack, RAM is {program.ram.size}")
    return result
