"""Benchmark registry and helpers for compiling/simulating the suite."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.beebs.programs.crypto_kernels import BLOWFISH_SOURCE, RIJNDAEL_SOURCE
from repro.beebs.programs.float_kernels import CUBIC_SOURCE, FLOAT_MATMULT_SOURCE
from repro.beebs.programs.integer_kernels import (
    CRC32_SOURCE,
    DIJKSTRA_SOURCE,
    FDCT_SOURCE,
    FIR2D_SOURCE,
    INT_MATMULT_SOURCE,
    SHA_SOURCE,
)


@dataclass(frozen=True)
class Benchmark:
    """One benchmark kernel of the suite."""

    name: str
    source: str
    description: str
    uses_float: bool = False


_BENCHMARKS: Dict[str, Benchmark] = {
    "2dfir": Benchmark("2dfir", FIR2D_SOURCE,
                       "two-dimensional FIR filter over a small image"),
    "blowfish": Benchmark("blowfish", BLOWFISH_SOURCE,
                          "Blowfish-style Feistel cipher with reduced S-boxes"),
    "crc32": Benchmark("crc32", CRC32_SOURCE,
                       "bitwise CRC-32 over a pseudo-random buffer"),
    "cubic": Benchmark("cubic", CUBIC_SOURCE,
                       "cubic root solving via Newton iteration (soft-float)",
                       uses_float=True),
    "dijkstra": Benchmark("dijkstra", DIJKSTRA_SOURCE,
                          "single-source shortest paths on a dense graph"),
    "fdct": Benchmark("fdct", FDCT_SOURCE,
                      "forward discrete cosine transform on 8x8 blocks"),
    "float_matmult": Benchmark("float_matmult", FLOAT_MATMULT_SOURCE,
                               "single-precision matrix multiply (soft-float)",
                               uses_float=True),
    "int_matmult": Benchmark("int_matmult", INT_MATMULT_SOURCE,
                             "integer matrix multiply"),
    "rijndael": Benchmark("rijndael", RIJNDAEL_SOURCE,
                          "AES-style rounds with generated tables"),
    "sha": Benchmark("sha", SHA_SOURCE,
                     "SHA-1 style compression rounds"),
}

#: Names in the order the paper's Figure 5 lists them.
BENCHMARK_NAMES: List[str] = [
    "2dfir", "blowfish", "crc32", "cubic", "dijkstra", "fdct",
    "float_matmult", "int_matmult", "rijndael", "sha",
]


def get_benchmark(name: str) -> Benchmark:
    """Look up a benchmark by its BEEBS name."""
    try:
        return _BENCHMARKS[name]
    except KeyError as exc:
        raise KeyError(f"unknown benchmark {name!r}; "
                       f"known: {', '.join(BENCHMARK_NAMES)}") from exc


def iter_benchmarks(names: Optional[List[str]] = None) -> Iterator[Benchmark]:
    """Iterate over benchmarks (all of them by default, in Figure 5 order)."""
    for name in (names or BENCHMARK_NAMES):
        yield get_benchmark(name)
