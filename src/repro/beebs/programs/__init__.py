"""Source texts of the individual benchmark kernels."""
