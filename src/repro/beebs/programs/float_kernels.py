"""Floating-point benchmark kernels: cubic and float_matmult.

Both rely heavily on the soft-float runtime, reproducing the paper's
observation that library-dominated benchmarks gain little from the
optimization because library code cannot be relocated.
"""

CUBIC_SOURCE = r"""
// Solve x^3 + a*x^2 + b*x + c = 0 for its real root via Newton iteration
// (the BEEBS cubic workload class, dominated by soft-float library calls).
float poly(float a, float b, float c, float x)
{
    return ((x + a) * x + b) * x + c;
}

float poly_derivative(float a, float b, float x)
{
    return (3.0 * x + 2.0 * a) * x + b;
}

float solve_cubic(float a, float b, float c)
{
    float x = 1.0;
    for (int iteration = 0; iteration < 12; ++iteration) {
        float value = poly(a, b, c, x);
        float slope = poly_derivative(a, b, x);
        if (slope == 0.0) {
            return x;
        }
        x = x - value / slope;
    }
    return x;
}

int main(void)
{
    int checksum = 0;
    for (int k = 1; k <= 4; ++k) {
        float a = 1.0 * k;
        float b = -7.0;
        float c = -1.0 * k;
        float root = solve_cubic(a, b, c);
        float scaled = root * 1000.0;
        checksum += scaled;
    }
    return checksum;
}
"""

FLOAT_MATMULT_SOURCE = r"""
// Single-precision matrix-matrix multiplication through the soft-float
// runtime (BEEBS float_matmult class).
float matrix_a[36];
float matrix_b[36];
float matrix_c[36];

void init_matrices(int n)
{
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
            matrix_a[i * n + j] = 1.0 * ((i + 2 * j) % 7) + 0.5;
            matrix_b[i * n + j] = 1.0 * ((3 * i + j) % 5) + 0.25;
        }
    }
}

void multiply(int n)
{
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
            float acc = 0.0;
            for (int k = 0; k < n; ++k) {
                acc = acc + matrix_a[i * n + k] * matrix_b[k * n + j];
            }
            matrix_c[i * n + j] = acc;
        }
    }
}

int main(void)
{
    init_matrices(6);
    multiply(6);
    float total = 0.0;
    for (int i = 0; i < 36; ++i) {
        total = total + matrix_c[i];
    }
    int checksum = total;
    return checksum;
}
"""
