"""Crypto benchmark kernels: blowfish and rijndael (reduced-size tables)."""

BLOWFISH_SOURCE = r"""
// Blowfish-style Feistel network with reduced S-boxes (BEEBS blowfish class).
unsigned sbox0[64];
unsigned sbox1[64];
unsigned p_array[18];

void init_tables(void)
{
    unsigned seed = 305419896;
    for (int i = 0; i < 64; ++i) {
        seed = seed * 1664525 + 1013904223;
        sbox0[i] = seed;
        seed = seed * 1664525 + 1013904223;
        sbox1[i] = seed;
    }
    for (int i = 0; i < 18; ++i) {
        seed = seed * 1664525 + 1013904223;
        p_array[i] = seed;
    }
}

unsigned feistel(unsigned x)
{
    unsigned high = (x >> 26) & 63;
    unsigned low = (x >> 10) & 63;
    return (sbox0[high] + sbox1[low]) ^ (sbox0[low & 63] | sbox1[high]);
}

unsigned encrypt_half(unsigned left, unsigned right)
{
    for (int round = 0; round < 16; ++round) {
        left = left ^ p_array[round];
        right = right ^ feistel(left);
        unsigned swap = left;
        left = right;
        right = swap;
    }
    return left ^ p_array[16] ^ (right ^ p_array[17]);
}

int main(void)
{
    init_tables();
    unsigned checksum = 0;
    unsigned left = 1;
    unsigned right = 2;
    for (int blockIndex = 0; blockIndex < 8; ++blockIndex) {
        checksum = checksum ^ encrypt_half(left + blockIndex, right + 2 * blockIndex);
        left = left + 3;
        right = right + 5;
    }
    return checksum & 1048575;
}
"""

RIJNDAEL_SOURCE = r"""
// Rijndael (AES)-style rounds: SubBytes via a generated S-box, ShiftRows,
// a simplified MixColumns over GF(2^8) and AddRoundKey.
unsigned sbox[256];
unsigned state[16];
unsigned round_key[16];

unsigned xtime(unsigned value)
{
    value = value << 1;
    if ((value & 256) != 0) {
        value = (value ^ 27) & 255;
    }
    return value & 255;
}

void init_tables(void)
{
    // A permutation standing in for the real AES S-box (affine map over bytes).
    for (int i = 0; i < 256; ++i) {
        sbox[i] = (i * 7 + 99) & 255;
    }
    for (int i = 0; i < 16; ++i) {
        state[i] = (i * 17 + 1) & 255;
        round_key[i] = (i * 29 + 5) & 255;
    }
}

void sub_bytes(void)
{
    for (int i = 0; i < 16; ++i) {
        state[i] = sbox[state[i]];
    }
}

void shift_rows(void)
{
    for (int row = 1; row < 4; ++row) {
        for (int shift = 0; shift < row; ++shift) {
            unsigned first = state[row];
            state[row] = state[row + 4];
            state[row + 4] = state[row + 8];
            state[row + 8] = state[row + 12];
            state[row + 12] = first;
        }
    }
}

void mix_columns(void)
{
    for (int col = 0; col < 4; ++col) {
        int base = col * 4;
        unsigned a0 = state[base];
        unsigned a1 = state[base + 1];
        unsigned a2 = state[base + 2];
        unsigned a3 = state[base + 3];
        state[base] = xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3;
        state[base + 1] = a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3;
        state[base + 2] = a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3);
        state[base + 3] = (xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3);
    }
}

void add_round_key(int round)
{
    for (int i = 0; i < 16; ++i) {
        state[i] = state[i] ^ ((round_key[i] + round * 13) & 255);
    }
}

int main(void)
{
    init_tables();
    add_round_key(0);
    for (int round = 1; round <= 10; ++round) {
        sub_bytes();
        shift_rows();
        if (round < 10) {
            mix_columns();
        }
        add_round_key(round);
    }
    unsigned checksum = 0;
    for (int i = 0; i < 16; ++i) {
        checksum = (checksum << 1) ^ state[i];
    }
    return checksum & 1048575;
}
"""
