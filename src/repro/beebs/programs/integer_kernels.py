"""Integer benchmark kernels: 2dfir, crc32, dijkstra, fdct, int_matmult, sha."""

FIR2D_SOURCE = r"""
// 2-dimensional FIR filter over a small image (BEEBS 2dfir workload class).
int image[100];
int output_image[100];
int coefficients[9] = {1, 2, 1, 2, 4, 2, 1, 2, 1};

void init_image(void)
{
    for (int i = 0; i < 100; ++i) {
        image[i] = (i * 7 + 3) % 64;
    }
}

int fir2d(int width, int height)
{
    int checksum = 0;
    for (int row = 1; row < height - 1; ++row) {
        for (int col = 1; col < width - 1; ++col) {
            int acc = 0;
            for (int krow = 0; krow < 3; ++krow) {
                for (int kcol = 0; kcol < 3; ++kcol) {
                    int pixel = image[(row + krow - 1) * width + (col + kcol - 1)];
                    acc += pixel * coefficients[krow * 3 + kcol];
                }
            }
            output_image[row * width + col] = acc >> 4;
            checksum += acc >> 4;
        }
    }
    return checksum;
}

int main(void)
{
    init_image();
    return fir2d(10, 10);
}
"""

CRC32_SOURCE = r"""
// CRC-32 (bitwise, reflected polynomial) over a pseudo-random buffer.
unsigned message[64];

void init_message(void)
{
    unsigned seed = 123456789;
    for (int i = 0; i < 64; ++i) {
        seed = seed * 1103515245 + 12345;
        message[i] = seed;
    }
}

unsigned crc32_word(unsigned crc, unsigned data)
{
    crc = crc ^ data;
    for (int bit = 0; bit < 32; ++bit) {
        if ((crc & 1) != 0) {
            crc = (crc >> 1) ^ 3988292384;
        } else {
            crc = crc >> 1;
        }
    }
    return crc;
}

int main(void)
{
    init_message();
    unsigned crc = 4294967295;
    for (int i = 0; i < 64; ++i) {
        crc = crc32_word(crc, message[i]);
    }
    return (crc ^ 4294967295) & 65535;
}
"""

DIJKSTRA_SOURCE = r"""
// Single-source shortest paths on a dense random graph (adjacency matrix).
int adjacency[144];
int distance_[12];
int visited[12];

void init_graph(void)
{
    unsigned seed = 7;
    for (int i = 0; i < 12; ++i) {
        for (int j = 0; j < 12; ++j) {
            seed = seed * 1103515245 + 12345;
            int weight = (seed >> 16) % 20 + 1;
            if (i == j) { weight = 0; }
            adjacency[i * 12 + j] = weight;
        }
    }
}

int dijkstra(int source, int nodes)
{
    for (int i = 0; i < nodes; ++i) {
        distance_[i] = 100000;
        visited[i] = 0;
    }
    distance_[source] = 0;
    for (int round = 0; round < nodes; ++round) {
        int best = -1;
        int best_distance = 100000;
        for (int i = 0; i < nodes; ++i) {
            if (visited[i] == 0 && distance_[i] < best_distance) {
                best = i;
                best_distance = distance_[i];
            }
        }
        if (best < 0) { break; }
        visited[best] = 1;
        for (int j = 0; j < nodes; ++j) {
            int candidate = distance_[best] + adjacency[best * 12 + j];
            if (candidate < distance_[j]) {
                distance_[j] = candidate;
            }
        }
    }
    int checksum = 0;
    for (int i = 0; i < nodes; ++i) {
        checksum += distance_[i];
    }
    return checksum;
}

int main(void)
{
    init_graph();
    return dijkstra(0, 12);
}
"""

FDCT_SOURCE = r"""
// Forward discrete cosine transform on 8x8 blocks (integer butterflies),
// the paper's case-study kernel.
int block[64];
int coefficients[64];

void init_block(int offset)
{
    for (int i = 0; i < 64; ++i) {
        block[i] = ((i * 13 + offset * 31) % 255) - 128;
    }
}

void fdct_rows(void)
{
    for (int row = 0; row < 8; ++row) {
        int base = row * 8;
        int s07 = block[base + 0] + block[base + 7];
        int d07 = block[base + 0] - block[base + 7];
        int s16 = block[base + 1] + block[base + 6];
        int d16 = block[base + 1] - block[base + 6];
        int s25 = block[base + 2] + block[base + 5];
        int d25 = block[base + 2] - block[base + 5];
        int s34 = block[base + 3] + block[base + 4];
        int d34 = block[base + 3] - block[base + 4];
        coefficients[base + 0] = s07 + s16 + s25 + s34;
        coefficients[base + 4] = s07 - s16 - s25 + s34;
        coefficients[base + 2] = (d07 * 106 + d16 * 44 - d25 * 44 - d34 * 106) >> 7;
        coefficients[base + 6] = (d07 * 44 - d16 * 106 + d25 * 106 - d34 * 44) >> 7;
        coefficients[base + 1] = (d07 * 124 + d16 * 105 + d25 * 70 + d34 * 24) >> 7;
        coefficients[base + 3] = (d07 * 105 - d16 * 24 - d25 * 124 - d34 * 70) >> 7;
        coefficients[base + 5] = (d07 * 70 - d16 * 124 + d25 * 24 + d34 * 105) >> 7;
        coefficients[base + 7] = (d07 * 24 - d16 * 70 + d25 * 105 - d34 * 124) >> 7;
    }
}

void fdct_columns(void)
{
    for (int col = 0; col < 8; ++col) {
        int s07 = coefficients[col] + coefficients[56 + col];
        int d07 = coefficients[col] - coefficients[56 + col];
        int s16 = coefficients[8 + col] + coefficients[48 + col];
        int d16 = coefficients[8 + col] - coefficients[48 + col];
        int s25 = coefficients[16 + col] + coefficients[40 + col];
        int d25 = coefficients[16 + col] - coefficients[40 + col];
        int s34 = coefficients[24 + col] + coefficients[32 + col];
        int d34 = coefficients[24 + col] - coefficients[32 + col];
        block[col] = (s07 + s16 + s25 + s34) >> 3;
        block[32 + col] = (s07 - s16 - s25 + s34) >> 3;
        block[16 + col] = (d07 * 106 + d16 * 44 - d25 * 44 - d34 * 106) >> 10;
        block[48 + col] = (d07 * 44 - d16 * 106 + d25 * 106 - d34 * 44) >> 10;
        block[8 + col] = (d07 * 124 + d16 * 105 + d25 * 70 + d34 * 24) >> 10;
        block[24 + col] = (d07 * 105 - d16 * 24 - d25 * 124 - d34 * 70) >> 10;
        block[40 + col] = (d07 * 70 - d16 * 124 + d25 * 24 + d34 * 105) >> 10;
        block[56 + col] = (d07 * 24 - d16 * 70 + d25 * 105 - d34 * 124) >> 10;
    }
}

int main(void)
{
    int checksum = 0;
    for (int frame = 0; frame < 4; ++frame) {
        init_block(frame);
        fdct_rows();
        fdct_columns();
        for (int i = 0; i < 64; ++i) {
            checksum += block[i] * (i + 1);
        }
    }
    return checksum & 1048575;
}
"""

INT_MATMULT_SOURCE = r"""
// Integer matrix-matrix multiplication (the paper's best case at O2).
int matrix_a[100];
int matrix_b[100];
int matrix_c[100];

void init_matrices(int n)
{
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
            matrix_a[i * n + j] = (i + 2 * j) % 17;
            matrix_b[i * n + j] = (3 * i + j) % 13;
        }
    }
}

void multiply(int n)
{
    for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
            int acc = 0;
            for (int k = 0; k < n; ++k) {
                acc += matrix_a[i * n + k] * matrix_b[k * n + j];
            }
            matrix_c[i * n + j] = acc;
        }
    }
}

int main(void)
{
    init_matrices(10);
    multiply(10);
    int checksum = 0;
    for (int i = 0; i < 100; ++i) {
        checksum += matrix_c[i];
    }
    return checksum;
}
"""

SHA_SOURCE = r"""
// SHA-1 style compression rounds over a pseudo-random message schedule.
unsigned schedule[80];
unsigned digest[5];

unsigned rotate_left(unsigned value, int amount)
{
    return (value << amount) | (value >> (32 - amount));
}

void init_schedule(void)
{
    unsigned seed = 2463534242;
    for (int i = 0; i < 16; ++i) {
        seed = seed ^ (seed << 13);
        seed = seed ^ (seed >> 17);
        seed = seed ^ (seed << 5);
        schedule[i] = seed;
    }
    for (int i = 16; i < 80; ++i) {
        schedule[i] = rotate_left(
            schedule[i - 3] ^ schedule[i - 8] ^ schedule[i - 14] ^ schedule[i - 16], 1);
    }
}

void sha_compress(void)
{
    unsigned a = 1732584193;
    unsigned b = 4023233417;
    unsigned c = 2562383102;
    unsigned d = 271733878;
    unsigned e = 3285377520;
    for (int t = 0; t < 80; ++t) {
        unsigned f;
        unsigned k;
        if (t < 20) {
            f = (b & c) | ((~b) & d);
            k = 1518500249;
        } else if (t < 40) {
            f = b ^ c ^ d;
            k = 1859775393;
        } else if (t < 60) {
            f = (b & c) | (b & d) | (c & d);
            k = 2400959708;
        } else {
            f = b ^ c ^ d;
            k = 3395469782;
        }
        unsigned temp = rotate_left(a, 5) + f + e + k + schedule[t];
        e = d;
        d = c;
        c = rotate_left(b, 30);
        b = a;
        a = temp;
    }
    digest[0] = digest[0] + a;
    digest[1] = digest[1] + b;
    digest[2] = digest[2] + c;
    digest[3] = digest[3] + d;
    digest[4] = digest[4] + e;
}

int main(void)
{
    digest[0] = 1732584193;
    digest[1] = 4023233417;
    digest[2] = 2562383102;
    digest[3] = 271733878;
    digest[4] = 3285377520;
    int checksum = 0;
    for (int blockIndex = 0; blockIndex < 2; ++blockIndex) {
        init_schedule();
        sha_compress();
    }
    for (int i = 0; i < 5; ++i) {
        checksum = checksum ^ (digest[i] & 65535);
    }
    return checksum;
}
"""
