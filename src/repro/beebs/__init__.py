"""BEEBS-like benchmark suite (the paper's evaluation workloads).

Ten kernels with the same names and workload classes as the BEEBS subset used
in the paper: ``2dfir``, ``blowfish``, ``crc32``, ``cubic``, ``dijkstra``,
``fdct``, ``float_matmult``, ``int_matmult``, ``rijndael`` and ``sha``.  Each
is written in the mini-C dialect, sized so that a full simulation finishes in
well under a second, and returns a checksum so compilation correctness can be
asserted at every optimization level.
"""

from repro.beebs.suite import (
    BENCHMARK_NAMES,
    Benchmark,
    get_benchmark,
    iter_benchmarks,
)

__all__ = ["BENCHMARK_NAMES", "Benchmark", "get_benchmark", "iter_benchmarks"]
