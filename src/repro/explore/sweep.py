"""Declarative placement design-space sweeps over the experiment engine.

A :class:`SweepSpec` is a cross product of the placement knobs the paper
varies in Section 6: ``X_limit`` (allowed slowdown), ``R_spare`` (RAM budget,
``None`` = derive statically), the flash/RAM energy ratio (``None`` = the
calibrated Figure 1 tables), the solver and the block-frequency mode, crossed
with BEEBS kernels and optimization levels.  :func:`run_sweep` expands the
spec into engine cells in a deterministic order and fans them out through
:meth:`~repro.engine.ExperimentEngine.run_cells`, so a parallel sweep is
bitwise identical to a sequential one and every (benchmark, level) compiles
exactly once per process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.beebs import BENCHMARK_NAMES
from repro.engine import ExperimentEngine, ExperimentSpec, default_engine
from repro.engine.results import BenchmarkRun
from repro.sim.energy import EnergyModel, PowerTable


def scaled_energy_model(flash_ram_ratio: float,
                        base: Optional[EnergyModel] = None) -> EnergyModel:
    """An energy model whose ``e_flash / e_ram`` equals *flash_ram_ratio*.

    The per-class flash powers (and the flash-data load exception, which is
    flash-dominated) are scaled by a single factor; RAM powers are left at
    the calibrated Figure 1 values, so the sweep varies exactly one physical
    axis — how much more expensive flash accesses are than RAM accesses.
    """
    if flash_ram_ratio <= 0:
        raise ValueError("flash/RAM energy ratio must be positive")
    base = base if base is not None else EnergyModel()
    factor = flash_ram_ratio / (base.e_flash / base.e_ram)
    table = PowerTable(
        flash={cls: power * factor for cls, power in base.table.flash.items()},
        ram=dict(base.table.ram),
        ram_fetch_flash_data_load=base.table.ram_fetch_flash_data_load * factor,
    )
    return EnergyModel(table=table, cycle_time_s=base.cycle_time_s)


@dataclass(frozen=True)
class SweepCell:
    """One point of the design space: an engine spec plus its energy axis."""

    spec: ExperimentSpec
    flash_ram_ratio: Optional[float] = None

    def energy_model(self, base: Optional[EnergyModel] = None) -> Optional[EnergyModel]:
        """The cell's energy model, or ``None`` for the engine default."""
        if self.flash_ram_ratio is None:
            return None
        return scaled_energy_model(self.flash_ram_ratio, base)


@dataclass(frozen=True)
class SweepSpec:
    """Cross product of placement knobs (Section 6's exploration axes)."""

    benchmarks: Tuple[str, ...] = tuple(BENCHMARK_NAMES)
    opt_levels: Tuple[str, ...] = ("O2",)
    x_limits: Tuple[float, ...] = (1.1, 1.5, 2.0)
    r_spares: Tuple[Optional[int], ...] = (None,)
    flash_ram_ratios: Tuple[Optional[float], ...] = (None,)
    solvers: Tuple[str, ...] = ("ilp",)
    frequency_modes: Tuple[str, ...] = ("static",)

    def __post_init__(self):
        # Accept any sequence; store tuples so the spec stays hashable.
        for name in ("benchmarks", "opt_levels", "x_limits", "r_spares",
                     "flash_ram_ratios", "solvers", "frequency_modes"):
            value = getattr(self, name)
            if not isinstance(value, tuple):
                object.__setattr__(self, name, tuple(value))
            if not getattr(self, name):
                raise ValueError(f"sweep axis {name!r} must not be empty")

    @property
    def size(self) -> int:
        return (len(self.benchmarks) * len(self.opt_levels) * len(self.x_limits)
                * len(self.r_spares) * len(self.flash_ram_ratios)
                * len(self.solvers) * len(self.frequency_modes))

    def cells(self) -> List[SweepCell]:
        """The sweep's cells in deterministic nesting order.

        Benchmark and level vary slowest so that contiguous chunks of the
        cell list share a compiled program — the same adjacency the engine's
        chunked process fan-out exploits.
        """
        cells: List[SweepCell] = []
        for benchmark in self.benchmarks:
            for level in self.opt_levels:
                for mode in self.frequency_modes:
                    for solver in self.solvers:
                        for ratio in self.flash_ram_ratios:
                            for r_spare in self.r_spares:
                                for x_limit in self.x_limits:
                                    cells.append(SweepCell(
                                        spec=ExperimentSpec(
                                            benchmark=benchmark,
                                            opt_level=level,
                                            x_limit=x_limit,
                                            r_spare=r_spare,
                                            frequency_mode=mode,
                                            solver=solver,
                                        ),
                                        flash_ram_ratio=ratio,
                                    ))
        return cells


def cell_record(cell: SweepCell, run: BenchmarkRun) -> Dict:
    """Flat JSON-safe record of one sweep cell (knobs + measurements)."""
    estimate = run.solution.estimate if run.solution else None
    record = {
        "benchmark": cell.spec.benchmark,
        "opt_level": cell.spec.opt_level,
        "frequency_mode": cell.spec.frequency_mode,
        "solver": cell.spec.solver,
        "x_limit": cell.spec.x_limit,
        "r_spare_requested": cell.spec.r_spare,
        "flash_ram_ratio": cell.flash_ram_ratio,
        "baseline_energy_j": run.baseline.energy_j,
        "baseline_cycles": run.baseline.cycles,
        "energy_j": (run.optimized.energy_j if run.optimized is not None
                     else run.baseline.energy_j),
        "cycles": (run.optimized.cycles if run.optimized is not None
                   else run.baseline.cycles),
        "energy_change": run.energy_change,
        "time_change": run.time_change,
        "time_ratio": 1.0 + run.time_change,
        "power_change": run.power_change,
        "ram_bytes": estimate.ram_bytes if estimate else 0,
        "blocks_moved": len(run.solution.ram_blocks) if run.solution else 0,
        "model_energy_j": estimate.energy_j if estimate else None,
        "model_time_ratio": estimate.time_ratio if estimate else None,
        "solver_status": run.solution.solver_status if run.solution else "",
        "r_spare_derived": run.solution.r_spare if run.solution else None,
        "ram_blocks": sorted(run.solution.ram_blocks) if run.solution else [],
    }
    return record


@dataclass
class SweepResult:
    """All cells of one executed sweep, in cell order."""

    sweep: SweepSpec
    cells: List[SweepCell]
    runs: List[BenchmarkRun]
    records: List[Dict] = field(default_factory=list)

    def __post_init__(self):
        if not self.records:
            self.records = [cell_record(cell, run)
                            for cell, run in zip(self.cells, self.runs)]

    def meta(self) -> Dict:
        return {
            "benchmarks": list(self.sweep.benchmarks),
            "opt_levels": list(self.sweep.opt_levels),
            "x_limits": list(self.sweep.x_limits),
            "r_spares": list(self.sweep.r_spares),
            "flash_ram_ratios": list(self.sweep.flash_ram_ratios),
            "solvers": list(self.sweep.solvers),
            "frequency_modes": list(self.sweep.frequency_modes),
            "cells": len(self.records),
        }


def run_sweep(sweep: SweepSpec,
              engine: Optional[ExperimentEngine] = None,
              max_workers: Optional[int] = None) -> SweepResult:
    """Execute every cell of *sweep* through the engine, in cell order."""
    engine = engine if engine is not None else default_engine()
    cells = sweep.cells()
    base_model = engine.energy_model
    payload: List[Tuple[ExperimentSpec, Optional[EnergyModel]]] = [
        (cell.spec, cell.energy_model(base_model)) for cell in cells
    ]
    runs = engine.run_cells(payload, max_workers=max_workers)
    return SweepResult(sweep=sweep, cells=cells, runs=runs)
