"""Declarative placement design-space sweeps over the experiment engine.

A :class:`SweepSpec` is a cross product of the placement knobs the paper
varies in Section 6: ``X_limit`` (allowed slowdown), ``R_spare`` (RAM budget,
``None`` = derive statically), the flash/RAM energy ratio (``None`` = the
calibrated Figure 1 tables), the solver, the block-frequency mode and the
timing model (``"flat"`` default, or the pipelined/icache variants of
:mod:`repro.sim.pipeline`), crossed with BEEBS kernels and optimization
levels.  :func:`run_sweep` expands the
spec into engine cells in a deterministic order and fans them out through
:meth:`~repro.engine.ExperimentEngine.run_cells`, so a parallel sweep is
bitwise identical to a sequential one and every (benchmark, level) compiles
exactly once per process.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable, ClassVar, Dict, List, Optional, Sequence, Tuple

from repro.beebs import BENCHMARK_NAMES
from repro.engine import ExperimentEngine, ExperimentSpec, default_engine
from repro.engine.results import PER_RUN_META_KEYS, BenchmarkRun, ResultStore
from repro.sim.energy import EnergyModel, PowerTable
from repro.sim.pipeline import TimingSpec
from repro.telemetry import get_telemetry


def scaled_energy_model(flash_ram_ratio: float,
                        base: Optional[EnergyModel] = None) -> EnergyModel:
    """An energy model whose ``e_flash / e_ram`` equals *flash_ram_ratio*.

    The per-class flash powers (and the flash-data load exception, which is
    flash-dominated) are scaled by a single factor; RAM powers are left at
    the calibrated Figure 1 values, so the sweep varies exactly one physical
    axis — how much more expensive flash accesses are than RAM accesses.
    """
    if flash_ram_ratio <= 0:
        raise ValueError("flash/RAM energy ratio must be positive")
    base = base if base is not None else EnergyModel()
    factor = flash_ram_ratio / (base.e_flash / base.e_ram)
    table = PowerTable(
        flash={cls: power * factor for cls, power in base.table.flash.items()},
        ram=dict(base.table.ram),
        ram_fetch_flash_data_load=base.table.ram_fetch_flash_data_load * factor,
    )
    return EnergyModel(table=table, cycle_time_s=base.cycle_time_s)


#: The knobs that identify one sweep cell.  ``cell_key`` hashes exactly
#: these, so two cells are the same experiment iff their keys are equal —
#: independent of the enumeration order of the spec that produced them.
#: ``timing_model`` enters the hash payload only when it differs from
#: ``"flat"``, so every pre-existing flat cell keeps its historical key
#: (and stored sweeps remain byte-identical).
CELL_KEY_FIELDS: Tuple[str, ...] = (
    "benchmark", "opt_level", "optimize", "x_limit", "r_spare",
    "flash_ram_ratio", "solver", "frequency_mode", "timing_model",
)


@dataclass(frozen=True)
class SweepCell:
    """One point of the design space: an engine spec plus its energy axis."""

    spec: ExperimentSpec
    flash_ram_ratio: Optional[float] = None

    def energy_model(self, base: Optional[EnergyModel] = None) -> Optional[EnergyModel]:
        """The cell's energy model, or ``None`` for the engine default."""
        if self.flash_ram_ratio is None:
            return None
        return scaled_energy_model(self.flash_ram_ratio, base)

    @property
    def key(self) -> str:
        """Stable content-addressed identity of this cell (see :func:`cell_key`)."""
        return cell_key(self)


def cell_key(cell: SweepCell) -> str:
    """A stable, content-addressed key for one sweep cell.

    The key is the SHA-256 (truncated to 64 bits of hex) of a canonical JSON
    encoding of :data:`CELL_KEY_FIELDS`.  Floats serialize via ``repr`` —
    exact and platform-independent — so the same knobs hash identically on
    any machine, and the key never depends on where in a sweep's enumeration
    the cell appeared.  Keys address records in keyed
    :class:`~repro.engine.ResultStore` files and assign cells to shards.
    """
    spec = cell.spec
    payload = {
        "benchmark": spec.benchmark,
        "opt_level": spec.opt_level,
        "optimize": spec.optimize,
        "x_limit": spec.x_limit,
        "r_spare": spec.r_spare,
        "flash_ram_ratio": cell.flash_ram_ratio,
        "solver": spec.solver,
        "frequency_mode": spec.frequency_mode,
    }
    timing_model = getattr(spec, "timing_model", "flat")
    if timing_model != "flat":
        payload["timing_model"] = timing_model
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


# --------------------------------------------------------------------------- #
# Sharding
# --------------------------------------------------------------------------- #
def shard_index(key: str, shard_count: int) -> int:
    """The shard a cell key belongs to: its integer value mod *shard_count*."""
    return int(key, 16) % shard_count


def shard_cells(cells: Sequence[SweepCell], index: int,
                count: int) -> List[SweepCell]:
    """The subset of *cells* owned by shard *index* of *count*.

    Partitioning is by key hash, so any shard assignment covers each cell in
    exactly one shard regardless of how the sweep was enumerated.
    """
    if count < 1:
        raise ValueError("shard count must be >= 1")
    if not 0 <= index < count:
        raise ValueError(f"shard index {index} outside 0..{count - 1}")
    return [cell for cell in cells if shard_index(cell.key, count) == index]


def parse_shard(text: str) -> Tuple[int, int]:
    """Parse an ``i/N`` shard assignment (e.g. ``0/3``) into ``(i, N)``."""
    try:
        index_text, count_text = text.split("/")
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise ValueError(f"shard must look like i/N (e.g. 0/3), got {text!r}")
    if count < 1 or not 0 <= index < count:
        raise ValueError(f"shard {text!r}: index must be in 0..N-1, N >= 1")
    return index, count


@dataclass(frozen=True)
class SweepSpec:
    """Cross product of placement knobs (Section 6's exploration axes).

    ``timing_models`` is the newest axis: each value is a timing-model
    string (``"flat"``, ``"pipelined"``, ``"pipelined+icache[:LxB]"``),
    validated and canonicalized through
    :meth:`~repro.sim.pipeline.TimingSpec.parse` at construction time.  The
    default ``("flat",)`` keeps specs, cell keys, store meta and stored
    bytes identical to sweeps that predate the axis.
    """

    benchmarks: Tuple[str, ...] = tuple(BENCHMARK_NAMES)
    opt_levels: Tuple[str, ...] = ("O2",)
    x_limits: Tuple[float, ...] = (1.1, 1.5, 2.0)
    r_spares: Tuple[Optional[int], ...] = (None,)
    flash_ram_ratios: Tuple[Optional[float], ...] = (None,)
    solvers: Tuple[str, ...] = ("ilp",)
    frequency_modes: Tuple[str, ...] = ("static",)
    timing_models: Tuple[str, ...] = ("flat",)

    def __post_init__(self):
        # Accept any sequence; store tuples so the spec stays hashable.
        for name in self.AXES:
            value = getattr(self, name)
            if not isinstance(value, tuple):
                object.__setattr__(self, name, tuple(value))
            if not getattr(self, name):
                raise ValueError(f"sweep axis {name!r} must not be empty")
        # Validate + canonicalize timing models up front (fail fast, and
        # make "pipelined+icache" and its explicit default geometry the
        # same cell identity).
        object.__setattr__(self, "timing_models", tuple(
            TimingSpec.parse(model).name for model in self.timing_models))

    @property
    def size(self) -> int:
        return (len(self.benchmarks) * len(self.opt_levels) * len(self.x_limits)
                * len(self.r_spares) * len(self.flash_ram_ratios)
                * len(self.solvers) * len(self.frequency_modes)
                * len(self.timing_models))

    #: The axes serialized by :meth:`meta` / consumed by :meth:`from_meta`.
    AXES: ClassVar[Tuple[str, ...]] = (
        "benchmarks", "opt_levels", "x_limits", "r_spares",
        "flash_ram_ratios", "solvers", "frequency_modes", "timing_models",
    )

    def meta(self) -> Dict:
        """JSON-safe record of the axes — shared by every shard's store, so
        :meth:`~repro.engine.ResultStore.merge` can check that partial stores
        came from the same sweep.

        The ``timing_models`` axis is omitted while it has its default
        ``["flat"]`` value, so flat sweeps write byte-identical stores to
        the ones produced before the axis existed (and merge/resume against
        them).
        """
        meta = {}
        for name in self.AXES:
            value = list(getattr(self, name))
            if name == "timing_models" and value == ["flat"]:
                continue
            meta[name] = value
        return meta

    @classmethod
    def from_meta(cls, meta: Dict) -> "SweepSpec":
        """Rebuild a spec from :meth:`meta` output (a JSON round trip).

        Floats survive JSON exactly (``repr`` serialization), so the rebuilt
        spec enumerates cells with the very same :func:`cell_key`\\ s — this
        is how a distributed worker reconstitutes the sweep from the
        coordinator's ``welcome`` message.  Per-run keys (``cells``,
        ``shard``) are ignored; missing axes are an error — except
        ``timing_models``, whose absence means the pre-axis default
        ``("flat",)``.
        """
        try:
            values = {}
            for name in cls.AXES:
                if name == "timing_models":
                    values[name] = tuple(meta.get(name, ("flat",)))
                else:
                    values[name] = tuple(meta[name])
            return cls(**values)
        except KeyError as error:
            raise ValueError(f"sweep meta is missing axis {error}") from error

    def cells(self) -> List[SweepCell]:
        """The sweep's cells in deterministic nesting order.

        Benchmark and level vary slowest so that contiguous chunks of the
        cell list share a compiled program — the same adjacency the engine's
        chunked process fan-out exploits.
        """
        cells: List[SweepCell] = []
        for benchmark in self.benchmarks:
            for level in self.opt_levels:
                for mode in self.frequency_modes:
                    for timing_model in self.timing_models:
                        for solver in self.solvers:
                            for ratio in self.flash_ram_ratios:
                                for r_spare in self.r_spares:
                                    for x_limit in self.x_limits:
                                        cells.append(SweepCell(
                                            spec=ExperimentSpec(
                                                benchmark=benchmark,
                                                opt_level=level,
                                                x_limit=x_limit,
                                                r_spare=r_spare,
                                                frequency_mode=mode,
                                                solver=solver,
                                                timing_model=timing_model,
                                            ),
                                            flash_ram_ratio=ratio,
                                        ))
        return cells


def cell_record(cell: SweepCell, run: BenchmarkRun) -> Dict:
    """Flat JSON-safe record of one sweep cell (knobs + measurements).

    The ``timing_model`` field appears only on non-flat cells, keeping flat
    records (and therefore whole flat stores) byte-identical to pre-axis
    runs; report code normalizes the absence back to ``"flat"``.
    """
    estimate = run.solution.estimate if run.solution else None
    record = {
        "cell_key": cell.key,
        "benchmark": cell.spec.benchmark,
        "opt_level": cell.spec.opt_level,
        "frequency_mode": cell.spec.frequency_mode,
        "solver": cell.spec.solver,
        "x_limit": cell.spec.x_limit,
        "r_spare_requested": cell.spec.r_spare,
        "flash_ram_ratio": cell.flash_ram_ratio,
        "baseline_energy_j": run.baseline.energy_j,
        "baseline_cycles": run.baseline.cycles,
        "energy_j": (run.optimized.energy_j if run.optimized is not None
                     else run.baseline.energy_j),
        "cycles": (run.optimized.cycles if run.optimized is not None
                   else run.baseline.cycles),
        "energy_change": run.energy_change,
        "time_change": run.time_change,
        "time_ratio": 1.0 + run.time_change,
        "power_change": run.power_change,
        "ram_bytes": estimate.ram_bytes if estimate else 0,
        "blocks_moved": len(run.solution.ram_blocks) if run.solution else 0,
        "model_energy_j": estimate.energy_j if estimate else None,
        "model_time_ratio": estimate.time_ratio if estimate else None,
        "solver_status": run.solution.solver_status if run.solution else "",
        "r_spare_derived": run.solution.r_spare if run.solution else None,
        "ram_blocks": sorted(run.solution.ram_blocks) if run.solution else [],
    }
    timing_model = getattr(cell.spec, "timing_model", "flat")
    if timing_model != "flat":
        record["timing_model"] = timing_model
    if run.fb_report is not None:
        # Static-vs-profiled F_b fidelity of this cell's frequency mode
        # (fb_mean_abs_log_ratio etc.); flows through shards/merges/distrib
        # like every other field and feeds the report's fidelity section.
        record.update(run.fb_report)
    return record


@dataclass
class SweepResult:
    """All cells of one executed sweep, in cell order."""

    sweep: SweepSpec
    cells: List[SweepCell]
    runs: List[BenchmarkRun]
    records: List[Dict] = field(default_factory=list)

    def __post_init__(self):
        if not self.records:
            self.records = [cell_record(cell, run)
                            for cell, run in zip(self.cells, self.runs)]

    def meta(self) -> Dict:
        meta = self.sweep.meta()
        meta["cells"] = len(self.records)
        return meta


def run_sweep(sweep: SweepSpec,
              engine: Optional[ExperimentEngine] = None,
              max_workers: Optional[int] = None) -> SweepResult:
    """Execute every cell of *sweep* through the engine, in cell order."""
    engine = engine if engine is not None else default_engine()
    cells = sweep.cells()
    runs = run_sweep_cells(cells, engine, max_workers)
    return SweepResult(sweep=sweep, cells=cells, runs=runs)


def run_sweep_cells(cells: Sequence[SweepCell], engine: ExperimentEngine,
                    max_workers: Optional[int] = None,
                    progress: Optional[Callable[[int, int], None]] = None
                    ) -> List[BenchmarkRun]:
    """Run sweep cells through the engine's fan-out, in cell order.

    This is the execution primitive shared by :func:`execute_sweep` and the
    distributed workers (`repro.distrib.worker`): it resolves each cell's
    energy model against the engine default and hands the pairs to
    :meth:`~repro.engine.ExperimentEngine.run_cells` — so every execution
    path computes the exact same floats.
    """
    base_model = engine.energy_model
    payload: List[Tuple[ExperimentSpec, Optional[EnergyModel]]] = [
        (cell.spec, cell.energy_model(base_model)) for cell in cells
    ]
    return engine.run_cells(payload, max_workers=max_workers,
                            progress=progress)


class SweepRecheckError(ValueError):
    """A resumed store's record no longer reproduces bitwise."""


def load_resumable_records(store: ResultStore, name: str, sweep: SweepSpec,
                           by_key: Dict[str, SweepCell]) -> Dict[str, Dict]:
    """The stored records of *sweep* a resume may skip: store + journal.

    Shared by the in-process resume path and the distributed coordinator so
    their semantics cannot diverge.  Everything is validated against the
    requested sweep's axes **before** anything is folded or loaded: a store
    or leftover checkpoint journal from a *different* sweep is refused
    outright — compacting first would merge foreign records and overwrite
    the very meta the axes check inspects.  An effectively-empty journal
    (first append interrupted) is cleared; a valid one is compacted into
    the canonical store so its cells count as done.
    """
    axes = sweep.meta()

    def check_axes(meta: Dict, path) -> None:
        stripped = {key: value for key, value in meta.items()
                    if key not in PER_RUN_META_KEYS}
        if stripped != axes:
            raise ValueError(
                f"{path}: stored sweep axes differ from the requested "
                f"sweep; resuming would mix records from different sweeps "
                f"(run without --resume, or into a fresh store)")

    if store.path_for(name).exists():
        check_axes(store.load_meta(name), store.path_for(name))
    if store.journal_path(name).exists():
        header, _records = store.load_journal(name)
        if header is not None:
            check_axes(header.get("meta") or {}, store.journal_path(name))
        # Fold leftover checkpoints in (or clear the torn wreckage of an
        # interrupted first append) so those cells are not re-executed.
        store.compact_journal(name, merge_store=True)
    if not store.path_for(name).exists():
        return {}
    return {key: record
            for key, record in store.load_keyed(name).items()
            if key in by_key}


def execute_sweep(sweep: SweepSpec,
                  store: Optional[ResultStore] = None,
                  name: str = "sweep",
                  shard: Optional[Tuple[int, int]] = None,
                  resume: bool = False,
                  recheck: int = 0,
                  engine: Optional[ExperimentEngine] = None,
                  max_workers: Optional[int] = None,
                  workers: Optional[int] = None,
                  progress: bool = False,
                  checkpoint_every: Optional[int] = None,
                  batch_size: Optional[int] = None,
                  lease_timeout: Optional[float] = None,
                  cache_dir: Optional[str] = None,
                  adaptive: bool = True) -> Dict:
    """Run *sweep* — optionally one shard of it — with store-backed resume.

    * ``shard=(i, N)`` restricts execution to the cells whose key hashes to
      shard *i* of *N* (each cell lands in exactly one shard);
    * ``resume=True`` skips any cell whose key is already in the store and
      appends only the missing ones, so an interrupted sweep re-simulates
      only what it never finished (a leftover checkpoint journal is folded
      in first);
    * ``recheck=K`` additionally recomputes a deterministic sample of up to
      *K* stored cells and raises :class:`SweepRecheckError` unless they
      reproduce bitwise — a cheap staleness probe for resumed stores;
    * ``workers=N`` executes through the distributed subsystem instead — a
      local coordinator leasing dynamic batches to *N* spawned worker
      processes (`repro.distrib`); the resulting store is byte-identical
      to the in-process run;
    * ``progress=True`` prints a live cells/s + ETA line to stderr (stdout
      stays machine-readable);
    * ``checkpoint_every=K`` (with a store) journals completed records every
      *K* cells in O(batch) — an interrupted run can then ``resume`` from
      its last checkpoint instead of from the last full store write.
      ``0`` disables checkpointing on every path; ``None`` (the default)
      means off in-process and the coordinator default when distributed;
    * ``batch_size`` / ``lease_timeout`` tune the distributed lease
      granularity and failure detection; they require ``workers``;
      ``adaptive=False`` additionally pins every lease to the fixed
      ``batch_size`` cut instead of the service's shrinking-tail policy;
    * ``cache_dir`` enables the persistent on-disk program cache: the
      in-process engine (and, distributed, every spawned worker) loads
      compiled programs from that directory instead of recompiling, so a
      fleet compiles each (benchmark, opt level) once per machine.  It
      cannot be combined with an explicit ``engine`` — configure that
      engine's cache instead.

    Returns a summary dict: the run's records in key order, the store meta,
    cell/computed/skipped/rechecked counts, the engine's program-cache
    counters (``cache``), and the store path (or ``None`` when running
    storeless).
    """
    if workers is not None:
        if recheck:
            raise ValueError("recheck is not supported on the distributed "
                             "path; run it in-process first")
        if engine is not None:
            raise ValueError("a distributed run spawns its own worker "
                             "engines; the engine argument does not apply")
        from repro.distrib import execute_sweep_distributed
        kwargs = {}
        if checkpoint_every is not None:
            kwargs["checkpoint_every"] = checkpoint_every
        if batch_size is not None:
            kwargs["batch_size"] = batch_size
        if lease_timeout is not None:
            kwargs["lease_timeout"] = lease_timeout
        return execute_sweep_distributed(
            sweep, store=store, name=name, workers=workers, shard=shard,
            resume=resume, progress=progress, cache_dir=cache_dir,
            adaptive=adaptive, **kwargs)
    if engine is not None and cache_dir is not None:
        raise ValueError("cache_dir configures a fresh engine; give the "
                         "explicit engine a disk cache instead "
                         "(ExperimentEngine(cache_dir=...))")
    if batch_size is not None or lease_timeout is not None or not adaptive:
        raise ValueError("batch_size/lease_timeout/adaptive configure the "
                         "distributed lease protocol; they require workers=N")

    cells = sweep.cells()
    if shard is not None:
        cells = shard_cells(cells, shard[0], shard[1])
    by_key = {cell.key: cell for cell in cells}
    if len(by_key) != len(cells):
        raise ValueError("cell_key collision within one sweep "
                         "(two distinct cells hashed identically)")

    if resume and store is None:
        raise ValueError("resume requires a result store")
    stored: Dict[str, Dict] = {}
    if store is not None and not resume and store.journal_path(name).exists():
        # A fresh run overwrites the store; a stale journal from some
        # earlier crashed run must not leak into it at compaction time.
        store.journal_path(name).unlink()
    if resume:
        stored = load_resumable_records(store, name, sweep, by_key)

    if engine is None:
        engine = (ExperimentEngine(cache_dir=cache_dir)
                  if cache_dir is not None else default_engine())

    rechecked = 0
    if recheck and stored:
        sample_keys = sorted(stored)[:recheck]
        runs = run_sweep_cells([by_key[key] for key in sample_keys], engine,
                               max_workers)
        for key, run in zip(sample_keys, runs):
            fresh = cell_record(by_key[key], run)
            if fresh != stored[key]:
                raise SweepRecheckError(
                    f"stored cell {key} no longer reproduces bitwise; the "
                    f"store is stale (code or model changed) or corrupt — "
                    f"rerun the sweep without --resume")
        rechecked = len(sample_keys)

    meta = sweep.meta()
    if shard is not None:
        meta["shard"] = [shard[0], shard[1]]

    missing = [cell for cell in cells if cell.key not in stored]
    reporter = None
    if progress:
        from repro.distrib.progress import ProgressReporter
        reporter = ProgressReporter(len(missing), label=f"sweep:{name}")

    new_records: List[Dict] = []
    journaled = False
    checkpoint_every = checkpoint_every or 0
    if store is not None and checkpoint_every > 0 and missing:
        # Chunked execution: each chunk lands in the journal before the next
        # starts, so an interruption loses at most one chunk of work.
        for start in range(0, len(missing), checkpoint_every):
            chunk = missing[start:start + checkpoint_every]

            def chunk_progress(done, _total, base=start):
                if reporter is not None:
                    reporter.update(base + done)

            runs = run_sweep_cells(chunk, engine, max_workers,
                                   progress=chunk_progress)
            batch = [cell_record(cell, run)
                     for cell, run in zip(chunk, runs)]
            with get_telemetry().span("store.checkpoint", kind="journal",
                                      records=len(batch)):
                store.append_journal(name, batch, meta=meta)
            journaled = True
            new_records.extend(batch)
    else:
        def cell_progress(done, _total):
            if reporter is not None:
                reporter.update(done)

        runs = run_sweep_cells(missing, engine, max_workers,
                               progress=cell_progress)
        new_records = [cell_record(cell, run)
                       for cell, run in zip(missing, runs)]
    cache_stats = engine.merged_cache_stats()
    if reporter is not None:
        reporter.finish(extra=(f"cache {cache_stats['compiles']} compiles, "
                               f"{cache_stats['hits']} hits, "
                               f"{cache_stats['disk_hits']} disk hits"))

    combined = dict(stored)
    combined.update((record["cell_key"], record) for record in new_records)
    records = [combined[key] for key in sorted(combined)]
    meta["cells"] = len(records)

    # Program-cache counters for the whole run: this process's engine plus
    # the per-process caches of its pool workers, whose snapshots come back
    # through the pool and are merged by ``merged_cache_stats``.
    summary = {"records": records, "meta": meta, "cells": len(cells),
               "computed": len(missing), "skipped": len(stored),
               "rechecked": rechecked, "cache": cache_stats, "path": None}
    if store is not None:
        with get_telemetry().span("store.checkpoint", kind="store",
                                  records=len(records)):
            if journaled:
                path = store.compact_journal(name, merge_store=resume)
            elif resume:
                path = store.append_keyed(name, new_records, meta=meta)
            else:
                path = store.save_keyed(name, records, meta=meta)
        summary["path"] = str(path)
    return summary
