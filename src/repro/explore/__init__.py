"""Design-space exploration: parameter sweeps, Pareto fronts, profile fixpoints.

The paper's central artifact is a sweep — energy/time trade-offs as
``X_limit``, spare RAM and the flash/RAM energy ratio vary over the BEEBS
kernels (Figures 5-6, Section 6).  This subsystem runs those sweeps through
the :class:`~repro.engine.ExperimentEngine`:

* :class:`SweepSpec` / :func:`run_sweep` — a declarative cross product of
  placement knobs, fanned out deterministically over the engine's process
  pool with one compile per (benchmark, level) (`repro.explore.sweep`);
* :func:`pareto_front` / :func:`pareto_records` — non-dominated filtering of
  the energy / time-ratio / RAM-bytes trade-off space
  (`repro.explore.pareto`);
* :func:`profile_guided_placement` — the paper's profiled frequency mode run
  to a fixpoint: simulate, feed the block counts back to the solver, repeat
  until the selected RAM set stops changing (`repro.explore.profile_guided`).
"""

from repro.explore.pareto import (
    dominates,
    mark_pareto,
    pareto_front,
    pareto_records,
)
from repro.explore.profile_guided import (
    ProfileGuidedIteration,
    ProfileGuidedResult,
    profile_guided_placement,
)
from repro.explore.sweep import (
    SweepCell,
    SweepResult,
    SweepSpec,
    run_sweep,
    scaled_energy_model,
)

__all__ = [
    "SweepCell",
    "SweepResult",
    "SweepSpec",
    "run_sweep",
    "scaled_energy_model",
    "dominates",
    "mark_pareto",
    "pareto_front",
    "pareto_records",
    "ProfileGuidedIteration",
    "ProfileGuidedResult",
    "profile_guided_placement",
]
