"""Design-space exploration: parameter sweeps, Pareto fronts, profile fixpoints.

The paper's central artifact is a sweep — energy/time trade-offs as
``X_limit``, spare RAM and the flash/RAM energy ratio vary over the BEEBS
kernels (Figures 5-6, Section 6).  This subsystem runs those sweeps through
the :class:`~repro.engine.ExperimentEngine`:

* :class:`SweepSpec` / :func:`run_sweep` — a declarative cross product of
  placement knobs (including the ``timing_models`` axis selecting flat vs
  pipelined/icache cycle accounting, `repro.sim.pipeline`), fanned out
  deterministically over the engine's process pool with one compile per
  (benchmark, level) (`repro.explore.sweep`);
* :func:`pareto_front` / :func:`pareto_records` — non-dominated filtering of
  the energy / time-ratio / RAM-bytes trade-off space
  (`repro.explore.pareto`);
* :func:`profile_guided_placement` — the paper's profiled frequency mode run
  to a fixpoint: simulate, feed the block counts back to the solver, repeat
  until the selected RAM set stops changing (`repro.explore.profile_guided`);
* :func:`execute_sweep` / :func:`shard_cells` — resumable, shardable sweep
  execution against a keyed :class:`~repro.engine.ResultStore`: every cell
  has a content-addressed :func:`cell_key`, shards partition the cell set by
  key hash, and resume skips cells already stored (`repro.explore.sweep`);
* :func:`sweep_report` / :func:`report_from_store` — the Figure 5/6
  artifacts (Pareto fronts, energy/time-vs-X_limit envelopes, frontier
  sizes) rebuilt purely from stored records, with gnuplot driver scripts
  emitted next to the CSV tables (`repro.explore.report`).

``execute_sweep(..., workers=N)`` hands execution to the `repro.distrib`
coordinator/worker subsystem — dynamic batch leasing across processes or
machines, byte-identical to the in-process run.
"""

from repro.explore.pareto import (
    dominates,
    mark_pareto,
    pareto_front,
    pareto_records,
)
from repro.explore.profile_guided import (
    ProfileGuidedIteration,
    ProfileGuidedResult,
    profile_guided_placement,
)
from repro.explore.report import (
    report_from_store,
    report_scripts,
    report_tables,
    sweep_report,
    write_report,
)
from repro.explore.sweep import (
    SweepCell,
    SweepRecheckError,
    SweepResult,
    SweepSpec,
    cell_key,
    cell_record,
    execute_sweep,
    parse_shard,
    run_sweep,
    run_sweep_cells,
    scaled_energy_model,
    shard_cells,
    shard_index,
)

__all__ = [
    "SweepCell",
    "SweepRecheckError",
    "SweepResult",
    "SweepSpec",
    "cell_key",
    "cell_record",
    "execute_sweep",
    "parse_shard",
    "run_sweep",
    "run_sweep_cells",
    "scaled_energy_model",
    "shard_cells",
    "shard_index",
    "dominates",
    "mark_pareto",
    "pareto_front",
    "pareto_records",
    "report_from_store",
    "report_scripts",
    "report_tables",
    "sweep_report",
    "write_report",
    "ProfileGuidedIteration",
    "ProfileGuidedResult",
    "profile_guided_placement",
]
