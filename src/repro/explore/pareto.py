"""Pareto-frontier extraction for the placement trade-off space.

The sweep's natural objectives are all minimised: measured energy, execution
time ratio against the all-in-flash baseline, and RAM bytes consumed by
relocated code.  A point is on the frontier when no other point is at least
as good on every objective and strictly better on one — the boundary the
clouds of Figure 6 trace out.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

#: The default (minimised) objectives of a placement sweep record.
DEFAULT_OBJECTIVES: Tuple[str, ...] = ("energy_j", "time_ratio", "ram_bytes")


def dominates(first: Sequence[float], second: Sequence[float]) -> bool:
    """True when *first* is <= *second* everywhere and < somewhere."""
    strictly_better = False
    for a, b in zip(first, second):
        if a > b:
            return False
        if a < b:
            strictly_better = True
    return strictly_better


def pareto_front(points: Sequence,
                 key: Callable[[object], Sequence[float]]) -> List:
    """The non-dominated subset of *points*, in input order.

    ``key`` maps a point to its (minimised) objective vector.  Duplicated
    objective vectors are all kept (none dominates the other), so the result
    is deterministic for any input order.
    """
    vectors = [tuple(key(point)) for point in points]
    front = []
    for i, point in enumerate(points):
        if any(dominates(vectors[j], vectors[i])
               for j in range(len(points)) if j != i):
            continue
        front.append(point)
    return front


def pareto_records(records: Sequence[Dict],
                   objectives: Sequence[str] = DEFAULT_OBJECTIVES) -> List[Dict]:
    """Non-dominated sweep records under the named (minimised) objectives."""
    return pareto_front(list(records),
                        key=lambda record: [record[name] for name in objectives])


#: Default frontier grouping: each benchmark is its own trade-off space, and
#: so is each flash/RAM energy ratio (absolute energies are only comparable
#: within one energy model) and each timing model (flat and pipelined cycle
#: accounting are different machines).  Flat records predate the
#: ``timing_model`` field and simply read as ``None`` — one shared group,
#: exactly as before the axis existed.
DEFAULT_GROUP_FIELDS: Tuple[str, ...] = ("benchmark", "flash_ram_ratio",
                                         "timing_model")


def mark_pareto(records: Sequence[Dict],
                objectives: Sequence[str] = DEFAULT_OBJECTIVES,
                flag: str = "pareto",
                group_fields: Sequence[str] = DEFAULT_GROUP_FIELDS) -> List[Dict]:
    """Return *records* with a boolean *flag* field marking frontier members.

    The frontier is computed per group (by default per benchmark and per
    flash/RAM energy ratio); fields missing from a record read as ``None``,
    so ungrouped records simply share one space.
    """
    groups: Dict[object, List[int]] = {}
    for index, record in enumerate(records):
        group_key = tuple(record.get(name) for name in group_fields)
        groups.setdefault(group_key, []).append(index)

    marked = [dict(record) for record in records]
    for indices in groups.values():
        group = [records[i] for i in indices]
        front = pareto_records(group, objectives)
        front_ids = {id(record) for record in front}
        for i, record in zip(indices, group):
            marked[i][flag] = id(record) in front_ids
    return marked
