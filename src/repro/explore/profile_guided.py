"""Profile-guided placement iterated to a fixpoint.

The paper's profiled frequency mode replaces the static loop-depth estimate
of ``F_b`` with measured block counts from a simulation.  This module closes
the loop: simulate, feed the profile to the solver, apply the placement,
simulate again, and repeat until the selected RAM set stops changing.  With
today's transformation the counts are layout-invariant (relocation never
changes control flow), so the fixpoint lands after one re-solve; the loop is
the right shape for any future transform whose profile does shift, and
``max_iterations`` bounds it unconditionally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.engine import ExperimentEngine, default_engine
from repro.placement import FlashRAMOptimizer, PlacementConfig
from repro.sim import SimulationResult, Simulator


@dataclass
class ProfileGuidedIteration:
    """One solve → apply → simulate round."""

    index: int
    ram_blocks: Set[str]
    model_energy_j: float
    model_time_ratio: float
    ram_bytes: int
    measured_energy_j: float
    measured_cycles: int


@dataclass
class ProfileGuidedResult:
    """Outcome of the iterated profile-guided placement."""

    benchmark: str
    opt_level: str
    baseline: SimulationResult
    iterations: List[ProfileGuidedIteration] = field(default_factory=list)
    converged: bool = False
    final: Optional[SimulationResult] = None

    @property
    def ram_blocks(self) -> Set[str]:
        return self.iterations[-1].ram_blocks if self.iterations else set()

    @property
    def energy_change(self) -> float:
        if self.final is None or not self.baseline.energy_j:
            return 0.0
        return self.final.energy_j / self.baseline.energy_j - 1.0

    def record(self) -> dict:
        """Flat JSON-safe record for result stores."""
        return {
            "benchmark": self.benchmark,
            "opt_level": self.opt_level,
            "converged": self.converged,
            "iterations": len(self.iterations),
            "ram_blocks": sorted(self.ram_blocks),
            "baseline_energy_j": self.baseline.energy_j,
            "energy_j": (self.final.energy_j if self.final is not None
                         else self.baseline.energy_j),
            "energy_change": self.energy_change,
        }


def profile_guided_placement(benchmark: str, opt_level: str = "O2",
                             x_limit: float = 1.5,
                             r_spare: Optional[int] = None,
                             solver: str = "ilp",
                             max_iterations: int = 8,
                             engine: Optional[ExperimentEngine] = None) -> ProfileGuidedResult:
    """Iterate profile → solve → apply → simulate until the RAM set repeats.

    Each round starts from a fresh mutable copy of the cached program (the
    placement transformation is not incremental across layouts), selects
    blocks with ``frequency_mode="profile"`` using the previous round's
    block counts, applies the placement, and simulates.  Convergence is the
    first round whose selected RAM set equals the previous round's; the
    bound ``max_iterations`` guarantees termination regardless.
    """
    if max_iterations < 1:
        raise ValueError("max_iterations must be at least 1")
    engine = engine if engine is not None else default_engine()
    baseline = engine.run_baseline(benchmark, opt_level).baseline
    result = ProfileGuidedResult(benchmark=benchmark, opt_level=opt_level,
                                 baseline=baseline)

    profile = baseline.profile
    previous: Optional[Set[str]] = None
    for index in range(max_iterations):
        program = engine.compile_benchmark_mutable(benchmark, opt_level)
        config = PlacementConfig(x_limit=x_limit, r_spare=r_spare,
                                 frequency_mode="profile", solver=solver)
        optimizer = FlashRAMOptimizer(program, energy_model=engine.energy_model,
                                      config=config)
        solution = optimizer.select_blocks(profile=profile)
        if previous is not None and solution.ram_blocks == previous:
            result.converged = True
            break
        optimizer.apply(solution)
        simulated = Simulator(program, energy_model=engine.energy_model).run()
        if simulated.return_value != baseline.return_value:
            raise AssertionError(
                f"{benchmark}/{opt_level}: profile-guided placement changed "
                f"the result ({baseline.return_value} -> {simulated.return_value})")
        result.iterations.append(ProfileGuidedIteration(
            index=index,
            ram_blocks=set(solution.ram_blocks),
            model_energy_j=solution.estimate.energy_j,
            model_time_ratio=solution.estimate.time_ratio,
            ram_bytes=solution.estimate.ram_bytes,
            measured_energy_j=simulated.energy_j,
            measured_cycles=simulated.cycles,
        ))
        result.final = simulated
        previous = solution.ram_blocks
        profile = simulated.profile
    return result
