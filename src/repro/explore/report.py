"""Figure 5/6-style artifacts rebuilt from stored sweep records.

The sweep subsystem persists raw cell records into keyed
:class:`~repro.engine.ResultStore` files (one record per design-space cell,
content-addressed by ``cell_key``).  This module turns a merged store back
into the paper's headline artifacts **without re-running a single
simulation**:

* per-benchmark (and per flash/RAM energy-ratio) Pareto fronts of the
  minimised (energy, time ratio, RAM bytes) space — the Figure 6 boundary;
* an energy/time-vs-``X_limit`` envelope table: for every group and
  ``X_limit`` the lowest-energy cell, i.e. the curve Figure 5 samples at one
  point;
* a frontier-size summary per group;
* a static-vs-profiled frequency-fidelity table: per (benchmark,
  ``frequency_mode``) the mean F_b error (mean absolute natural-log ratio of
  estimated vs profiled block frequencies, recorded by the engine at
  optimization time) and the placement-set agreement against the
  ``"profile"`` cells that share every other knob (exact-match fraction and
  mean Jaccard of the chosen RAM block sets).

The report is emitted as one JSON document plus CSV tables that gnuplot
(``set datafile separator ","``) or a spreadsheet can consume directly,
plus ready-to-run gnuplot driver scripts (``*.gp``) next to the CSVs —
``gnuplot energy_vs_x_limit.gp`` renders the Figure 5-style envelope PNG
and ``gnuplot pareto_fronts.gp`` the Figure 6-style frontier scatter, one
series per (benchmark, flash/RAM ratio, timing model) group, with no other
tooling.  Records without a ``timing_model`` field (all stores predating
the timing-model axis) are normalized to ``"flat"`` on load, so old and
new stores render identically.
Everything is deterministic in the store contents alone: fronts are sorted
by objective vector then cell key, so shard→merge→report reproduces the
monolithic run's artifacts byte for byte.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.engine.results import ResultStore, atomic_write_json, atomic_write_text
from repro.explore.pareto import (
    DEFAULT_GROUP_FIELDS,
    DEFAULT_OBJECTIVES,
    mark_pareto,
)

#: Version stamp of the report document layout.
REPORT_SCHEMA = 1

#: Scalar columns of the Pareto-front CSV (stored records also carry lists —
#: the selected RAM blocks — which stay JSON-only).
FRONT_COLUMNS: Tuple[str, ...] = (
    "benchmark", "flash_ram_ratio", "timing_model", "opt_level", "solver",
    "frequency_mode", "x_limit", "r_spare_requested", "energy_j",
    "time_ratio", "ram_bytes", "energy_change", "time_change", "cell_key",
)

#: Columns of the energy/time-vs-X_limit envelope CSV.
ENVELOPE_COLUMNS: Tuple[str, ...] = (
    "benchmark", "flash_ram_ratio", "timing_model", "x_limit", "energy_j",
    "energy_change", "time_ratio", "ram_bytes", "blocks_moved", "pareto",
    "cell_key",
)

#: Columns of the frequency-fidelity CSV (one row per benchmark × mode).
FIDELITY_COLUMNS: Tuple[str, ...] = (
    "benchmark", "frequency_mode", "cells", "fb_mean_abs_log_ratio",
    "fb_blocks_compared", "fb_predicted_dead", "fb_missed_hot",
    "placements_compared", "placement_exact_match", "placement_jaccard",
)

#: Cell-key knobs that must coincide for two records to be *the same
#: experiment under a different frequency mode* — everything in
#: :data:`~repro.explore.sweep.CELL_KEY_FIELDS` except ``frequency_mode``.
FIDELITY_PAIR_FIELDS: Tuple[str, ...] = (
    "benchmark", "opt_level", "solver", "x_limit", "r_spare_requested",
    "flash_ram_ratio", "timing_model",
)


def _group_label(fields: Sequence[str], record: Dict) -> str:
    # ``timing_model=flat`` is omitted so reports over flat-only stores keep
    # the exact labels they had before the timing axis existed; non-flat
    # groups name their model explicitly.
    return ",".join(f"{name}={record.get(name)}" for name in fields
                    if not (name == "timing_model"
                            and record.get(name) in (None, "flat")))


def _fidelity_pair_key(record: Dict) -> Tuple[str, ...]:
    return tuple(repr(record.get(name)) for name in FIDELITY_PAIR_FIELDS)


def frequency_fidelity_rows(records: Sequence[Dict]) -> List[Dict]:
    """Per (benchmark, frequency_mode) F_b fidelity and placement agreement.

    Built from stored records alone — the per-cell ``fb_*`` fields were
    recorded by the engine when the placement model was built, so no
    simulation happens here.  Placement agreement compares each cell's
    ``ram_blocks`` against the ``"profile"``-mode cell with identical
    remaining knobs (:data:`FIDELITY_PAIR_FIELDS`): ``placement_exact_match``
    is the fraction of pairs choosing bitwise-identical block sets and
    ``placement_jaccard`` the mean Jaccard index (two empty selections count
    as perfect agreement).  Rows and all accumulations iterate in sorted
    (benchmark, mode, cell_key) order, so the output is deterministic in the
    record contents.
    """
    by_group: Dict[Tuple[str, str], List[Dict]] = {}
    profile_reference: Dict[Tuple[str, ...], Dict] = {}
    for record in records:
        benchmark = record.get("benchmark")
        mode = record.get("frequency_mode")
        if benchmark is None or mode is None:
            continue
        by_group.setdefault((str(benchmark), str(mode)), []).append(record)
        if mode == "profile":
            profile_reference[_fidelity_pair_key(record)] = record

    rows: List[Dict] = []
    for benchmark, mode in sorted(by_group):
        group = sorted(by_group[(benchmark, mode)],
                       key=lambda r: r.get("cell_key", ""))
        fb_cells = [r for r in group
                    if r.get("fb_mean_abs_log_ratio") is not None]
        row: Dict = {
            "benchmark": benchmark,
            "frequency_mode": mode,
            "cells": len(group),
            "fb_mean_abs_log_ratio": (
                sum(r["fb_mean_abs_log_ratio"] for r in fb_cells)
                / len(fb_cells) if fb_cells else None),
            "fb_blocks_compared": (
                max(r.get("fb_blocks_compared", 0) or 0 for r in fb_cells)
                if fb_cells else None),
            "fb_predicted_dead": (
                max(r.get("fb_predicted_dead", 0) or 0 for r in fb_cells)
                if fb_cells else None),
            "fb_missed_hot": (
                max(r.get("fb_missed_hot", 0) or 0 for r in fb_cells)
                if fb_cells else None),
        }

        compared = exact = 0
        jaccard_sum = 0.0
        if mode != "profile":
            for record in group:
                reference = profile_reference.get(_fidelity_pair_key(record))
                if reference is None:
                    continue
                chosen = set(record.get("ram_blocks") or ())
                wanted = set(reference.get("ram_blocks") or ())
                compared += 1
                exact += int(chosen == wanted)
                union = chosen | wanted
                jaccard_sum += (len(chosen & wanted) / len(union)
                                if union else 1.0)
        row["placements_compared"] = compared
        row["placement_exact_match"] = (exact / compared if compared
                                        else None)
        row["placement_jaccard"] = (jaccard_sum / compared if compared
                                    else None)
        rows.append(row)
    return rows


def sweep_report(records: Sequence[Dict],
                 objectives: Sequence[str] = DEFAULT_OBJECTIVES,
                 group_fields: Sequence[str] = DEFAULT_GROUP_FIELDS) -> Dict:
    """Build the full report document from raw sweep records.

    Records need no particular order; the output depends only on their
    contents (fronts sort by objective vector, then cell key).  Records
    without a ``timing_model`` field (every flat cell, including all stores
    that predate the axis) are normalized to ``timing_model="flat"`` so the
    report's group labels, tables and plots name the model explicitly.
    """
    normalized = []
    for record in records:
        if "timing_model" not in record:
            record = dict(record)
            record["timing_model"] = "flat"
        normalized.append(record)
    marked = mark_pareto(normalized, objectives=objectives,
                         group_fields=group_fields)

    groups: Dict[str, List[Dict]] = {}
    for record in marked:
        groups.setdefault(_group_label(group_fields, record), []).append(record)

    def front_sort_key(record: Dict):
        return (tuple(record[name] for name in objectives),
                record.get("cell_key", ""))

    fronts: Dict[str, List[Dict]] = {}
    envelope: List[Dict] = []
    for label in sorted(groups):
        group = groups[label]
        fronts[label] = sorted((r for r in group if r["pareto"]),
                               key=front_sort_key)
        by_x_limit: Dict[float, List[Dict]] = {}
        for record in group:
            if "x_limit" in record:
                by_x_limit.setdefault(record["x_limit"], []).append(record)
        for x_limit in sorted(by_x_limit):
            best = min(by_x_limit[x_limit],
                       key=lambda r: (r["energy_j"], r.get("cell_key", "")))
            envelope.append({name: best.get(name)
                             for name in ENVELOPE_COLUMNS})

    summary = {
        "cells": len(marked),
        "benchmarks": sorted({r["benchmark"] for r in marked
                              if r.get("benchmark") is not None}),
        "pareto_points": sum(1 for r in marked if r["pareto"]),
        "group_sizes": {label: len(group)
                        for label, group in sorted(groups.items())},
        "frontier_sizes": {label: len(front)
                           for label, front in fronts.items()},
    }
    return {
        "schema": REPORT_SCHEMA,
        "objectives": list(objectives),
        "group_fields": list(group_fields),
        "summary": summary,
        "fronts": fronts,
        "energy_vs_x_limit": envelope,
        "frequency_fidelity": frequency_fidelity_rows(marked),
    }


def report_from_store(store: ResultStore, name: str = "sweep",
                      objectives: Sequence[str] = DEFAULT_OBJECTIVES,
                      group_fields: Sequence[str] = DEFAULT_GROUP_FIELDS) -> Dict:
    """Load a keyed sweep store and build its report — no simulation."""
    records = list(store.load_keyed(name).values())
    report = sweep_report(records, objectives=objectives,
                          group_fields=group_fields)
    report["store_meta"] = store.load_meta(name)
    return report


# --------------------------------------------------------------------------- #
# CSV emission
# --------------------------------------------------------------------------- #
def _csv_cell(value) -> str:
    if value is None:
        return ""
    return str(value)  # str(float) is repr — exact round-trip


def _csv(rows: Sequence[Dict], columns: Sequence[str]) -> str:
    lines = [",".join(columns)]
    lines.extend(",".join(_csv_cell(row.get(name)) for name in columns)
                 for row in rows)
    return "\n".join(lines) + "\n"


def report_tables(report: Dict) -> Dict[str, str]:
    """The report's CSV tables as ``{filename: text}``."""
    front_rows = [record for label in sorted(report["fronts"])
                  for record in report["fronts"][label]]
    return {
        "pareto_fronts.csv": _csv(front_rows, FRONT_COLUMNS),
        "energy_vs_x_limit.csv": _csv(report["energy_vs_x_limit"],
                                      ENVELOPE_COLUMNS),
        "frequency_fidelity.csv": _csv(report.get("frequency_fidelity", []),
                                       FIDELITY_COLUMNS),
    }


# --------------------------------------------------------------------------- #
# Gnuplot driver scripts
# --------------------------------------------------------------------------- #
def _series_groups(rows: Sequence[Dict]
                   ) -> List[Tuple[str, Optional[float], str]]:
    """The (benchmark, flash/RAM ratio, timing model) series of *rows*,
    in stable order."""
    seen = {}
    for row in rows:
        seen[(row.get("benchmark"), row.get("flash_ram_ratio"),
              row.get("timing_model") or "flat")] = True
    return sorted(seen, key=lambda group: (str(group[0]),
                                           group[1] is not None,
                                           group[1] if group[1] is not None
                                           else 0.0,
                                           group[2]))


def _series_title(benchmark: str, ratio: Optional[float],
                  timing_model: str) -> str:
    title = (f"{benchmark} (calibrated)" if ratio is None
             else f"{benchmark} (ratio {ratio})")
    if timing_model != "flat":
        title += f" [{timing_model}]"
    return title


def _series_filter(benchmark: str, ratio: Optional[float], timing_model: str,
                   x_column: int) -> str:
    """A gnuplot ``using`` x-expression selecting one series of the CSV.

    Rows of other series map their x to NaN, which gnuplot skips — the
    standard trick for plotting a keyed CSV without external filtering.
    ``flash_ram_ratio`` serializes to the empty cell for the calibrated
    tables (see :func:`_csv_cell`); the timing model lives in column 3 of
    both CSVs (:data:`FRONT_COLUMNS` / :data:`ENVELOPE_COLUMNS`).
    """
    ratio_text = "" if ratio is None else str(ratio)
    return (f'(strcol(1) eq "{benchmark}" && strcol(2) eq "{ratio_text}" '
            f'&& strcol(3) eq "{timing_model}" '
            f'? column({x_column}) : NaN)')


def _gnuplot_script(stem: str, xlabel: str, ylabel: str,
                    series: Sequence[Tuple[str, Optional[float], str]],
                    x_column: int, y_column: int, style: str,
                    comment: str) -> str:
    lines = [
        f"# {stem}.gp — generated by repro.explore.report; do not edit.",
        f"# {comment}",
        f"#     gnuplot {stem}.gp     (writes {stem}.png)",
        'set datafile separator ","',
        "set terminal pngcairo size 960,640",
        f'set output "{stem}.png"',
        "set key outside right",
        f'set xlabel "{xlabel}"',
        f'set ylabel "{ylabel}"',
    ]
    plots = [
        f'    "{stem}.csv" every ::1 using '
        f"{_series_filter(benchmark, ratio, timing_model, x_column)}:{y_column} "
        f'with {style} title "{_series_title(benchmark, ratio, timing_model)}"'
        for benchmark, ratio, timing_model in series
    ]
    if plots:
        lines.append("plot \\")
        lines.append(", \\\n".join(plots))
    else:
        lines.append("# (no records to plot)")
    return "\n".join(lines) + "\n"


def report_scripts(report: Dict) -> Dict[str, str]:
    """Gnuplot driver scripts for the report's CSV tables.

    ``gnuplot energy_vs_x_limit.gp`` / ``gnuplot pareto_fronts.gp`` in the
    report directory reproduce the Figure 5/6-style plots from the stored
    records alone.  Column indices follow :data:`ENVELOPE_COLUMNS` /
    :data:`FRONT_COLUMNS`; output is deterministic in the report contents.
    """
    envelope = report["energy_vs_x_limit"]
    front_rows = [record for label in sorted(report["fronts"])
                  for record in report["fronts"][label]]
    return {
        "energy_vs_x_limit.gp": _gnuplot_script(
            "energy_vs_x_limit",
            "X_limit (allowed slowdown)", "best energy (J)",
            _series_groups(envelope),
            x_column=ENVELOPE_COLUMNS.index("x_limit") + 1,
            y_column=ENVELOPE_COLUMNS.index("energy_j") + 1,
            style="linespoints",
            comment="Figure 5-style envelope: lowest-energy cell per "
                    "(benchmark, ratio, X_limit)."),
        "pareto_fronts.gp": _gnuplot_script(
            "pareto_fronts",
            "time ratio (vs baseline)", "energy (J)",
            _series_groups(front_rows),
            x_column=FRONT_COLUMNS.index("time_ratio") + 1,
            y_column=FRONT_COLUMNS.index("energy_j") + 1,
            style="points pointtype 7",
            comment="Figure 6-style Pareto frontier of the "
                    "(energy, time, RAM) space."),
    }


def write_report(report: Dict, out_dir: Union[str, Path]) -> Dict[str, Path]:
    """Write ``report.json``, the CSV tables, and the gnuplot scripts
    (all atomically)."""
    out_dir = Path(out_dir)
    paths = {"report.json": atomic_write_json(out_dir / "report.json", report)}
    for filename, text in {**report_tables(report),
                           **report_scripts(report)}.items():
        paths[filename] = atomic_write_text(out_dir / filename, text)
    return paths
