"""Figure 5/6-style artifacts rebuilt from stored sweep records.

The sweep subsystem persists raw cell records into keyed
:class:`~repro.engine.ResultStore` files (one record per design-space cell,
content-addressed by ``cell_key``).  This module turns a merged store back
into the paper's headline artifacts **without re-running a single
simulation**:

* per-benchmark (and per flash/RAM energy-ratio) Pareto fronts of the
  minimised (energy, time ratio, RAM bytes) space — the Figure 6 boundary;
* an energy/time-vs-``X_limit`` envelope table: for every group and
  ``X_limit`` the lowest-energy cell, i.e. the curve Figure 5 samples at one
  point;
* a frontier-size summary per group.

The report is emitted as one JSON document plus CSV tables that gnuplot
(``set datafile separator ","``) or a spreadsheet can consume directly.
Everything is deterministic in the store contents alone: fronts are sorted
by objective vector then cell key, so shard→merge→report reproduces the
monolithic run's artifacts byte for byte.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.engine.results import ResultStore, atomic_write_json, atomic_write_text
from repro.explore.pareto import (
    DEFAULT_GROUP_FIELDS,
    DEFAULT_OBJECTIVES,
    mark_pareto,
)

#: Version stamp of the report document layout.
REPORT_SCHEMA = 1

#: Scalar columns of the Pareto-front CSV (stored records also carry lists —
#: the selected RAM blocks — which stay JSON-only).
FRONT_COLUMNS: Tuple[str, ...] = (
    "benchmark", "flash_ram_ratio", "opt_level", "solver", "frequency_mode",
    "x_limit", "r_spare_requested", "energy_j", "time_ratio", "ram_bytes",
    "energy_change", "time_change", "cell_key",
)

#: Columns of the energy/time-vs-X_limit envelope CSV.
ENVELOPE_COLUMNS: Tuple[str, ...] = (
    "benchmark", "flash_ram_ratio", "x_limit", "energy_j", "energy_change",
    "time_ratio", "ram_bytes", "blocks_moved", "pareto", "cell_key",
)


def _group_label(fields: Sequence[str], record: Dict) -> str:
    return ",".join(f"{name}={record.get(name)}" for name in fields)


def sweep_report(records: Sequence[Dict],
                 objectives: Sequence[str] = DEFAULT_OBJECTIVES,
                 group_fields: Sequence[str] = DEFAULT_GROUP_FIELDS) -> Dict:
    """Build the full report document from raw sweep records.

    Records need no particular order; the output depends only on their
    contents (fronts sort by objective vector, then cell key).
    """
    marked = mark_pareto(list(records), objectives=objectives,
                         group_fields=group_fields)

    groups: Dict[str, List[Dict]] = {}
    for record in marked:
        groups.setdefault(_group_label(group_fields, record), []).append(record)

    def front_sort_key(record: Dict):
        return (tuple(record[name] for name in objectives),
                record.get("cell_key", ""))

    fronts: Dict[str, List[Dict]] = {}
    envelope: List[Dict] = []
    for label in sorted(groups):
        group = groups[label]
        fronts[label] = sorted((r for r in group if r["pareto"]),
                               key=front_sort_key)
        by_x_limit: Dict[float, List[Dict]] = {}
        for record in group:
            if "x_limit" in record:
                by_x_limit.setdefault(record["x_limit"], []).append(record)
        for x_limit in sorted(by_x_limit):
            best = min(by_x_limit[x_limit],
                       key=lambda r: (r["energy_j"], r.get("cell_key", "")))
            envelope.append({name: best.get(name)
                             for name in ENVELOPE_COLUMNS})

    summary = {
        "cells": len(marked),
        "benchmarks": sorted({r["benchmark"] for r in marked
                              if r.get("benchmark") is not None}),
        "pareto_points": sum(1 for r in marked if r["pareto"]),
        "group_sizes": {label: len(group)
                        for label, group in sorted(groups.items())},
        "frontier_sizes": {label: len(front)
                           for label, front in fronts.items()},
    }
    return {
        "schema": REPORT_SCHEMA,
        "objectives": list(objectives),
        "group_fields": list(group_fields),
        "summary": summary,
        "fronts": fronts,
        "energy_vs_x_limit": envelope,
    }


def report_from_store(store: ResultStore, name: str = "sweep",
                      objectives: Sequence[str] = DEFAULT_OBJECTIVES,
                      group_fields: Sequence[str] = DEFAULT_GROUP_FIELDS) -> Dict:
    """Load a keyed sweep store and build its report — no simulation."""
    records = list(store.load_keyed(name).values())
    report = sweep_report(records, objectives=objectives,
                          group_fields=group_fields)
    report["store_meta"] = store.load_meta(name)
    return report


# --------------------------------------------------------------------------- #
# CSV emission
# --------------------------------------------------------------------------- #
def _csv_cell(value) -> str:
    if value is None:
        return ""
    return str(value)  # str(float) is repr — exact round-trip


def _csv(rows: Sequence[Dict], columns: Sequence[str]) -> str:
    lines = [",".join(columns)]
    lines.extend(",".join(_csv_cell(row.get(name)) for name in columns)
                 for row in rows)
    return "\n".join(lines) + "\n"


def report_tables(report: Dict) -> Dict[str, str]:
    """The report's CSV tables as ``{filename: text}``."""
    front_rows = [record for label in sorted(report["fronts"])
                  for record in report["fronts"][label]]
    return {
        "pareto_fronts.csv": _csv(front_rows, FRONT_COLUMNS),
        "energy_vs_x_limit.csv": _csv(report["energy_vs_x_limit"],
                                      ENVELOPE_COLUMNS),
    }


def write_report(report: Dict, out_dir: Union[str, Path]) -> Dict[str, Path]:
    """Write ``report.json`` plus the CSV tables (all atomically)."""
    out_dir = Path(out_dir)
    paths = {"report.json": atomic_write_json(out_dir / "report.json", report)}
    for filename, text in report_tables(report).items():
        paths[filename] = atomic_write_text(out_dir / filename, text)
    return paths
