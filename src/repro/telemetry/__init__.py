"""Out-of-band observability: spans, counters/gauges, and trace reduction.

The subsystem has three parts, none of which may perturb the science:

* :mod:`repro.telemetry.hub` — the process-local :class:`Telemetry` hub.
  It times nested phases (*spans*) on the monotonic clock, keeps a typed
  counter/gauge registry, and appends JSON-lines events to one
  pid/role-stamped file per process under a sink directory.  Unless a sink
  is configured (``--telemetry DIR`` or the ``REPRO_TELEMETRY_DIR``
  environment variable, which is how spawned pool/fleet processes inherit
  it), the hub is a **no-op singleton**: every span and counter call
  returns immediately and no file is ever touched.
* :mod:`repro.telemetry.metrics` — the :class:`Ewma`/:class:`RateEwma`
  estimators shared by the progress reporter and the coordinator's
  per-worker throughput gauges, plus the Prometheus-text rendering behind
  ``repro-eval metrics``.
* :mod:`repro.telemetry.stats` — the offline reducer behind
  ``repro-eval stats TRACEDIR``: it merges the per-process event files
  (tolerating the torn trailing line of a SIGKILLed process) into a
  per-phase wall-clock breakdown and a per-cell critical-path table.

Telemetry is strictly out-of-band: stores, cell records, journals and
report outputs are byte-identical with telemetry on or off (asserted by
``tests/test_telemetry.py`` and the CI ``distrib-smoke`` job).
"""

from repro.telemetry.hub import (
    Telemetry,
    configure_telemetry,
    get_telemetry,
    reset_telemetry,
)
from repro.telemetry.metrics import Ewma, RateEwma, render_prometheus
from repro.telemetry.stats import load_events, render_trace_stats, trace_stats

__all__ = [
    "Telemetry",
    "configure_telemetry",
    "get_telemetry",
    "reset_telemetry",
    "Ewma",
    "RateEwma",
    "render_prometheus",
    "load_events",
    "render_trace_stats",
    "trace_stats",
]
