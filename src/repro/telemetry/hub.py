"""The process-local telemetry hub: nested spans and a counter registry.

One :class:`Telemetry` instance per process (:func:`get_telemetry`).  It is
a **no-op unless a sink directory is configured**: span context managers
yield immediately, counter updates return without taking the lock, and no
file is ever opened — so instrumented hot paths cost one attribute check
when telemetry is off.

With a sink configured the hub appends JSON-lines events to
``<sink>/<role>-<pid>.events.jsonl``:

* one ``meta`` line when the file opens (pid, role, wall/monotonic clocks);
* one ``span`` line per completed span — name, per-process ``id`` and
  ``parent`` id, monotonic ``start``/``end``/``dur``, nesting ``depth``,
  and optional ``attrs`` (the engine stamps cell knobs here);
* ``counters`` lines on :meth:`Telemetry.flush` (also registered via
  ``atexit``) carrying the cumulative counter/gauge registry.

Appends are atomic per line: the file is opened in append mode with line
buffering, so each event is one ``write`` to an ``O_APPEND`` descriptor and
concurrent processes (which write distinct files anyway) can never tear each
other's lines.  A process killed mid-write leaves at most one torn trailing
line, which the reducer (:mod:`repro.telemetry.stats`) skips.

Process model: the sink propagates to children through the
``REPRO_TELEMETRY_DIR`` environment variable (set by :meth:`configure`), so
both spawn-based fleet workers and fork-based pool workers inherit it.  A
forked child additionally inherits the parent's open file object; the hub
re-checks ``os.getpid()`` before every write and transparently reopens its
own pid-stamped file, so two processes never share a descriptor.
"""

from __future__ import annotations

import atexit
import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

#: Environment variables through which a configured sink (and the role of
#: child processes) propagate to spawned/forked workers.
TELEMETRY_DIR_ENV = "REPRO_TELEMETRY_DIR"
TELEMETRY_ROLE_ENV = "REPRO_TELEMETRY_ROLE"


class Telemetry:
    """Spans, counters and gauges for one process; no-op without a sink.

    Use the process singleton from :func:`get_telemetry` in library code;
    construct private instances only in tests and docs.  All methods are
    thread-safe; span nesting is tracked per thread.
    """

    def __init__(self) -> None:
        self.enabled = False
        self.sink_dir: Optional[str] = None
        self.role = "main"
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self._lock = threading.Lock()
        self._local = threading.local()
        self._file = None
        self._file_pid: Optional[int] = None
        self._next_span_id = 0
        self._atexit_registered = False

    # ------------------------------------------------------------------ #
    # Configuration
    # ------------------------------------------------------------------ #
    def configure(self, sink_dir: str, role: Optional[str] = None,
                  propagate: bool = True) -> "Telemetry":
        """Enable the hub, writing events under *sink_dir*; returns self.

        ``role`` stamps this process's event file name (``main``,
        ``coordinator``, ``worker``, …).  ``propagate=True`` (default)
        exports the sink through :data:`TELEMETRY_DIR_ENV` so child
        processes — the engine's pool workers and spawned fleet workers —
        pick it up automatically (their role defaults to ``worker``).
        """
        sink_dir = os.fspath(sink_dir)
        os.makedirs(sink_dir, exist_ok=True)
        with self._lock:
            self._close_file_locked()
            self.sink_dir = sink_dir
            if role is not None:
                self.role = role
            self.enabled = True
            if not self._atexit_registered:
                atexit.register(self.flush)
                self._atexit_registered = True
        if propagate:
            os.environ[TELEMETRY_DIR_ENV] = sink_dir
        return self

    def reset(self, clear_env: bool = False) -> None:
        """Disable the hub and drop all state (tests and fresh runs)."""
        with self._lock:
            self.flush_locked()
            self._close_file_locked()
            self.enabled = False
            self.sink_dir = None
            self.counters = {}
            self.gauges = {}
            self._next_span_id = 0
        if clear_env:
            os.environ.pop(TELEMETRY_DIR_ENV, None)
            os.environ.pop(TELEMETRY_ROLE_ENV, None)

    # ------------------------------------------------------------------ #
    # Event sink
    # ------------------------------------------------------------------ #
    def _close_file_locked(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
            self._file_pid = None

    def _ensure_file_locked(self):
        pid = os.getpid()
        if self._file is None or self._file_pid != pid:
            # First write in this process — or the first write after a fork
            # handed us the parent's descriptor: open our own file.
            self._file = None
            path = os.path.join(self.sink_dir,
                                f"{self.role}-{pid}.events.jsonl")
            self._file = open(path, "a", buffering=1, encoding="utf-8")
            self._file_pid = pid
            self._file.write(_encode({
                "event": "meta", "pid": pid, "role": self.role,
                "wall_time": time.time(), "monotonic": time.monotonic(),
            }))
        return self._file

    def _emit(self, payload: Dict) -> None:
        with self._lock:
            try:
                self._ensure_file_locked().write(_encode(payload))
            except OSError:
                # A full or revoked sink degrades telemetry, never the run.
                self._close_file_locked()

    # ------------------------------------------------------------------ #
    # Spans
    # ------------------------------------------------------------------ #
    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[Optional[int]]:
        """Context manager timing one nested phase on the monotonic clock.

        Yields the span's per-process id (``None`` when disabled).  The
        event is emitted when the span *ends*; nesting (``parent``,
        ``depth``) is tracked per thread, so concurrent coordinator threads
        cannot corrupt each other's stacks.
        """
        if not self.enabled:
            yield None
            return
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        with self._lock:
            span_id = self._next_span_id
            self._next_span_id += 1
        parent = stack[-1] if stack else None
        stack.append(span_id)
        start = time.monotonic()
        try:
            yield span_id
        finally:
            end = time.monotonic()
            stack.pop()
            event = {
                "event": "span", "name": name, "id": span_id,
                "parent": parent, "depth": len(stack),
                "start": start, "end": end, "dur": end - start,
                "pid": os.getpid(), "role": self.role,
            }
            if attrs:
                event["attrs"] = attrs
            self._emit(event)

    # ------------------------------------------------------------------ #
    # Counters and gauges
    # ------------------------------------------------------------------ #
    def add(self, name: str, value: int = 1) -> None:
        """Increment cumulative counter *name* (no-op when disabled)."""
        if not self.enabled:
            return
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        """Set point-in-time gauge *name* (no-op when disabled)."""
        if not self.enabled:
            return
        with self._lock:
            self.gauges[name] = value

    def snapshot(self) -> Dict[str, Dict]:
        """A copy of the current counter/gauge registry."""
        with self._lock:
            return {"counters": dict(self.counters),
                    "gauges": dict(self.gauges)}

    def flush_locked(self) -> None:
        if not self.enabled or (not self.counters and not self.gauges):
            return
        try:
            self._ensure_file_locked().write(_encode({
                "event": "counters", "pid": os.getpid(), "role": self.role,
                "monotonic": time.monotonic(),
                "counters": dict(self.counters),
                "gauges": dict(self.gauges),
            }))
        except OSError:
            self._close_file_locked()

    def flush(self) -> None:
        """Emit the cumulative counter registry as a ``counters`` event.

        Registered via ``atexit`` at configure time; long-running callers
        (sweeps, workers) also flush at natural milestones so a later
        SIGKILL loses at most the tail.
        """
        with self._lock:
            self.flush_locked()


def _encode(payload: Dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"


# --------------------------------------------------------------------------- #
# Process singleton
# --------------------------------------------------------------------------- #
_HUB: Optional[Telemetry] = None
_HUB_LOCK = threading.Lock()


def get_telemetry() -> Telemetry:
    """The process-wide hub; auto-configures from the environment.

    The first call in a process checks :data:`TELEMETRY_DIR_ENV` — that is
    how spawned pool/fleet worker processes inherit the parent's
    ``--telemetry`` sink without any argument plumbing.  Without the
    variable the hub stays a no-op.
    """
    global _HUB
    if _HUB is None:
        with _HUB_LOCK:
            if _HUB is None:
                hub = Telemetry()
                sink = os.environ.get(TELEMETRY_DIR_ENV)
                if sink:
                    hub.configure(
                        sink, role=os.environ.get(TELEMETRY_ROLE_ENV,
                                                  "worker"),
                        propagate=False)
                _HUB = hub
    return _HUB


def configure_telemetry(sink_dir: str, role: str = "main") -> Telemetry:
    """Configure the process singleton (the ``--telemetry DIR`` entry path)."""
    return get_telemetry().configure(sink_dir, role=role)


def reset_telemetry(clear_env: bool = True) -> None:
    """Disable and clear the process singleton (primarily for tests)."""
    global _HUB
    with _HUB_LOCK:
        if _HUB is not None:
            _HUB.reset(clear_env=clear_env)
        elif clear_env:
            os.environ.pop(TELEMETRY_DIR_ENV, None)
            os.environ.pop(TELEMETRY_ROLE_ENV, None)
