"""Offline reduction of telemetry event files: where did the time go?

``repro-eval stats TRACEDIR`` lands here.  The reducer merges the
per-process ``*.events.jsonl`` files a sweep left behind into

* a **per-phase wall-clock breakdown** — for every span name, the total
  *exclusive* time (span duration minus its direct children's durations),
  so nested spans never double-count and the phase totals telescope up to
  exactly the time covered by root spans;
* a **per-cell critical-path table** — each root ``cell`` span with its
  knob attributes and the per-phase time underneath it, sorted by
  duration, so the most expensive cells and their dominant phase are
  visible at a glance;
* **coverage** — the ratio of phase-accounted time to the measured
  wall-clock (first event start to last event end, summed per process).
  An instrumentation gap shows up as coverage well below 1.0.

Robustness: a SIGKILLed process leaves at most one torn trailing line in
its event file (the hub writes line-buffered ``O_APPEND`` lines); the
loader parses line by line, counts undecodable lines, and never fails on
them.  Span ids are scoped per ``(pid)``, so files from many processes —
including forked pool workers — reduce together safely.
"""

from __future__ import annotations

import glob
import json
import os
from typing import Dict, List, Tuple


def load_events(trace_dir: str) -> Tuple[List[Dict], int]:
    """All decodable events under *trace_dir*, plus the skipped-line count.

    Reads every ``*.events.jsonl`` in sorted order; undecodable lines
    (typically the torn tail of a killed process) are counted, not fatal.
    """
    events: List[Dict] = []
    skipped = 0
    pattern = os.path.join(os.fspath(trace_dir), "*.events.jsonl")
    for path in sorted(glob.glob(pattern)):
        with open(path, encoding="utf-8", errors="replace") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError:
                    skipped += 1
                    continue
                if isinstance(event, dict):
                    events.append(event)
                else:
                    skipped += 1
    return events, skipped


def _span_events(events: List[Dict]) -> List[Dict]:
    return [event for event in events
            if event.get("event") == "span"
            and isinstance(event.get("dur"), (int, float))]


def trace_stats(trace_dir: str) -> Dict:
    """Reduce a trace directory into the stats payload (JSON-safe).

    Returns ``phases`` (per span name: count, total inclusive seconds,
    total exclusive seconds), ``cells`` (the critical-path rows),
    ``wall_clock_s`` (per-process event window, summed), ``coverage``
    (exclusive phase time / wall-clock), ``processes``, ``events`` and
    ``skipped_lines``.
    """
    events, skipped = load_events(trace_dir)
    spans = _span_events(events)

    # Exclusive time: subtract each span's duration from its parent's.
    exclusive: Dict[Tuple[int, int], float] = {}
    by_id: Dict[Tuple[int, int], Dict] = {}
    for span in spans:
        key = (span.get("pid"), span.get("id"))
        exclusive[key] = span["dur"]
        by_id[key] = span
    for span in spans:
        parent = span.get("parent")
        if parent is None:
            continue
        parent_key = (span.get("pid"), parent)
        if parent_key in exclusive:
            exclusive[parent_key] -= span["dur"]

    phases: Dict[str, Dict[str, float]] = {}
    for key, span in by_id.items():
        entry = phases.setdefault(span["name"],
                                  {"count": 0, "total_s": 0.0,
                                   "exclusive_s": 0.0})
        entry["count"] += 1
        entry["total_s"] += span["dur"]
        entry["exclusive_s"] += max(exclusive[key], 0.0)

    # Wall clock: the observed event window of each process, summed.  Uses
    # all events (meta/counters included) so a process that emitted spans
    # early and counters late is credited with its whole active window.
    window: Dict[int, Tuple[float, float]] = {}
    for event in events:
        pid = event.get("pid")
        start = event.get("start", event.get("monotonic"))
        end = event.get("end", event.get("monotonic"))
        if pid is None or start is None or end is None:
            continue
        low, high = window.get(pid, (start, end))
        window[pid] = (min(low, start), max(high, end))
    wall_clock = sum(high - low for low, high in window.values())
    accounted = sum(entry["exclusive_s"] for entry in phases.values())

    # Per-cell critical path: every root "cell" span plus the per-phase
    # time of its descendants (children link to parents per process).
    children: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
    for key, span in by_id.items():
        parent = span.get("parent")
        if parent is not None:
            children.setdefault((span.get("pid"), parent), []).append(key)

    def descend(key: Tuple[int, int], breakdown: Dict[str, float]) -> None:
        for child_key in children.get(key, ()):  # direct + recursive
            child = by_id[child_key]
            breakdown[child["name"]] = (breakdown.get(child["name"], 0.0)
                                        + max(exclusive[child_key], 0.0))
            descend(child_key, breakdown)

    cells: List[Dict] = []
    for key, span in by_id.items():
        if span["name"] != "cell" or span.get("parent") is not None:
            continue
        breakdown: Dict[str, float] = {}
        descend(key, breakdown)
        cells.append({
            "attrs": span.get("attrs") or {},
            "pid": span.get("pid"),
            "total_s": span["dur"],
            "phases": breakdown,
        })
    cells.sort(key=lambda row: -row["total_s"])

    # Counters are cumulative per process: the last event per pid wins,
    # then processes sum.
    counters: Dict[str, int] = {}
    latest: Dict[int, Dict] = {}
    for event in events:
        if event.get("event") == "counters" and event.get("pid") is not None:
            latest[event["pid"]] = event.get("counters") or {}
    for per_process in latest.values():
        for name, value in per_process.items():
            if isinstance(value, (int, float)):
                counters[name] = counters.get(name, 0) + value

    return {
        "phases": phases,
        "cells": cells,
        "counters": counters,
        "wall_clock_s": wall_clock,
        "accounted_s": accounted,
        "coverage": (accounted / wall_clock) if wall_clock > 0 else 0.0,
        "processes": len(window),
        "events": len(events),
        "skipped_lines": skipped,
    }


def _cell_label(attrs: Dict) -> str:
    parts = [str(attrs[field]) for field in
             ("benchmark", "opt_level", "x_limit") if field in attrs]
    extras = [f"{field}={attrs[field]}" for field in
              ("solver", "frequency_mode", "timing_model", "flash_ram_ratio")
              if attrs.get(field) not in (None, "ilp", "static", "flat")]
    label = "/".join(parts) if parts else "cell"
    return label + (f" [{', '.join(extras)}]" if extras else "")


def render_trace_stats(trace_dir: str, top_cells: int = 10) -> str:
    """Human-readable report for ``repro-eval stats TRACEDIR``."""
    stats = trace_stats(trace_dir)
    lines: List[str] = []
    lines.append(f"telemetry trace {os.fspath(trace_dir)}: "
                 f"{stats['events']} events from {stats['processes']} "
                 f"processes ({stats['skipped_lines']} torn/undecodable "
                 f"lines skipped)")
    lines.append(f"wall-clock {stats['wall_clock_s']:.3f} s, phase-accounted "
                 f"{stats['accounted_s']:.3f} s "
                 f"(coverage {100.0 * stats['coverage']:.1f}%)")
    lines.append("")
    lines.append(f"{'phase':<20} {'count':>8} {'total s':>10} "
                 f"{'exclusive s':>12} {'share':>7}")
    wall = stats["wall_clock_s"] or 1.0
    for name in sorted(stats["phases"],
                       key=lambda n: -stats["phases"][n]["exclusive_s"]):
        entry = stats["phases"][name]
        lines.append(f"{name:<20} {entry['count']:>8} "
                     f"{entry['total_s']:>10.3f} "
                     f"{entry['exclusive_s']:>12.3f} "
                     f"{100.0 * entry['exclusive_s'] / wall:>6.1f}%")
    if stats["counters"]:
        lines.append("")
        lines.append("counters (summed across processes):")
        for name in sorted(stats["counters"]):
            lines.append(f"  {name} = {stats['counters'][name]}")
    if stats["cells"]:
        lines.append("")
        lines.append(f"slowest cells (top {top_cells}):")
        for row in stats["cells"][:top_cells]:
            phases = ", ".join(
                f"{name} {row['phases'][name]:.3f}s"
                for name in sorted(row["phases"],
                                   key=lambda n: -row["phases"][n]))
            lines.append(f"  {row['total_s']:8.3f}s  "
                         f"{_cell_label(row['attrs'])}"
                         + (f"  ({phases})" if phases else ""))
    return "\n".join(lines)
