"""Throughput estimators and the Prometheus-text metrics rendering.

:class:`Ewma` is a half-life-parameterized exponentially weighted moving
average over *irregularly spaced* samples: each update decays the previous
estimate by ``0.5 ** (dt / halflife)`` so a sample's influence depends on
how long ago it arrived, not on how many samples happened since.
:class:`RateEwma` layers event counting on top — feed it ``(count, now)``
observations and it maintains a smoothed events/second rate.  Both the
progress reporter's ETA (``repro.distrib.progress``) and the coordinator's
per-worker throughput gauges use the same estimator, replacing the naive
overall-average rate that was wildly wrong after a compile-heavy warm-up.

:func:`render_prometheus` turns the coordinator's ``metrics`` protocol
snapshot into the Prometheus text exposition format (``# TYPE`` headers,
one ``name{labels} value`` sample per line) for ``repro-eval metrics`` —
the poll surface an external autoscaler needs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


class Ewma:
    """Half-life EWMA over irregularly spaced samples.

    ``halflife`` is in the same units as the ``dt`` passed to
    :meth:`update`: after one half-life without newer data an old sample
    contributes half its original weight.  The first sample initializes the
    estimate directly.
    """

    def __init__(self, halflife: float = 15.0):
        if halflife <= 0:
            raise ValueError("halflife must be positive")
        self.halflife = halflife
        self._value: Optional[float] = None

    @property
    def value(self) -> Optional[float]:
        """The current estimate, or ``None`` before any sample."""
        return self._value

    def update(self, sample: float, dt: float) -> float:
        """Fold in *sample* observed *dt* units after the previous one."""
        if self._value is None or dt >= float("inf"):
            self._value = float(sample)
        else:
            decay = 0.5 ** (max(dt, 0.0) / self.halflife)
            self._value = decay * self._value + (1.0 - decay) * float(sample)
        return self._value


class RateEwma:
    """Smoothed events/second from ``observe(count, now)`` samples.

    The first observation only sets the time origin; each later one turns
    the increment into an instantaneous rate (``count / dt``) and folds it
    into an :class:`Ewma`.  ``now`` comes from the caller's clock (tests
    inject fake clocks; production uses ``time.monotonic()``).
    """

    def __init__(self, halflife: float = 15.0,
                 start: Optional[float] = None):
        self._ewma = Ewma(halflife=halflife)
        self._last: Optional[float] = start

    @property
    def rate(self) -> Optional[float]:
        """Smoothed events/second, or ``None`` before two observations."""
        return self._ewma.value

    def observe(self, count: float, now: float) -> Optional[float]:
        """Record *count* events completed by time *now*."""
        if self._last is None:
            self._last = now
            if count:
                # Events before the first observation have no measurable
                # interval; ignore them rather than invent a rate.
                pass
            return self._ewma.value
        dt = now - self._last
        if dt <= 0:
            return self._ewma.value
        self._last = now
        return self._ewma.update(count / dt, dt)


def percentile(samples: Sequence[float], fraction: float) -> Optional[float]:
    """Nearest-rank percentile of *samples* (``None`` when empty)."""
    if not samples:
        return None
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, int(fraction * len(ordered))))
    return ordered[rank]


def _sample(lines: List[str], name: str, value, labels: str = "",
            kind: str = "gauge", typed: Optional[set] = None) -> None:
    if value is None:
        return
    if typed is not None and name not in typed:
        typed.add(name)
        lines.append(f"# TYPE {name} {kind}")
    if isinstance(value, bool):
        value = int(value)
    lines.append(f"{name}{labels} {value}")


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def render_prometheus(snapshot: Dict, prefix: str = "repro") -> str:
    """Prometheus text exposition of a service ``metrics`` snapshot.

    The snapshot is the JSON payload the sweep service returns for a
    ``metrics`` protocol request (:meth:`SweepService.metrics_snapshot`):
    queue depth, lease/worker counts, per-worker throughput EWMAs, lease
    latency quantiles, heartbeat ages and the ETA — aggregated over every
    hosted sweep at the top level, and repeated per tenant under the
    snapshot's ``sweeps`` object, which renders as ``<prefix>_sweep_*``
    samples carrying a ``sweep`` label (plus a ``priority`` gauge and a
    ``status`` info-style gauge), so one scrape graphs each tenant's
    queue depth, throughput and ETA separately.  Unknown or ``None``
    fields are simply omitted, so old coordinators and new CLIs coexist.
    """
    lines: List[str] = []
    typed: set = set()

    def emit(name, value, labels="", kind="gauge"):
        _sample(lines, f"{prefix}_{name}", value, labels, kind, typed)

    emit("cells_total", snapshot.get("total"))
    emit("cells_done", snapshot.get("done"), kind="counter")
    emit("queue_depth", snapshot.get("pending"))
    emit("cells_leased", snapshot.get("leased"))
    emit("outstanding_leases", snapshot.get("leases"))
    emit("workers_connected", snapshot.get("workers"))
    emit("workers_seen", snapshot.get("workers_seen"), kind="counter")
    emit("requeued_batches", snapshot.get("requeued_batches"),
         kind="counter")
    emit("lease_expiry_reaps", snapshot.get("reaped_leases"), kind="counter")
    emit("duplicate_records", snapshot.get("duplicate_records"),
         kind="counter")
    emit("throughput_cells_per_second", snapshot.get("throughput"))
    emit("eta_seconds", snapshot.get("eta_seconds"))
    for worker in sorted(snapshot.get("worker_throughput") or {}):
        rate = snapshot["worker_throughput"][worker]
        emit("worker_throughput_cells_per_second", rate,
             labels=f'{{worker="{_escape_label(worker)}"}}')
    for worker in sorted(snapshot.get("worker_cells") or {}):
        emit("worker_cells_completed", snapshot["worker_cells"][worker],
             labels=f'{{worker="{_escape_label(worker)}"}}', kind="counter")
    for worker in sorted(snapshot.get("heartbeat_age_seconds") or {}):
        emit("heartbeat_age_seconds",
             snapshot["heartbeat_age_seconds"][worker],
             labels=f'{{worker="{_escape_label(worker)}"}}')
    latency = snapshot.get("lease_latency_seconds") or {}
    for quantile in sorted(latency):
        emit("lease_latency_seconds", latency[quantile],
             labels=f'{{quantile="{_escape_label(quantile)}"}}')
    for sweep in sorted(snapshot.get("sweeps") or {}):
        per = snapshot["sweeps"][sweep]
        label = f'{{sweep="{_escape_label(sweep)}"}}'
        emit("sweep_cells_total", per.get("total"), labels=label)
        emit("sweep_cells_done", per.get("done"), labels=label,
             kind="counter")
        emit("sweep_queue_depth", per.get("pending"), labels=label)
        emit("sweep_cells_leased", per.get("leased"), labels=label)
        emit("sweep_priority", per.get("priority"), labels=label)
        emit("sweep_requeued_batches", per.get("requeued_batches"),
             labels=label, kind="counter")
        emit("sweep_duplicate_records", per.get("duplicate_records"),
             labels=label, kind="counter")
        emit("sweep_throughput_cells_per_second", per.get("throughput"),
             labels=label)
        emit("sweep_eta_seconds", per.get("eta_seconds"), labels=label)
        status = per.get("status")
        if status is not None:
            # Info-style: one sample per (sweep, status), value 1 for the
            # current state — the standard way to expose an enum.
            emit("sweep_status", 1,
                 labels=f'{{sweep="{_escape_label(sweep)}",'
                        f'status="{_escape_label(status)}"}}')
    return "\n".join(lines) + "\n" if lines else ""
