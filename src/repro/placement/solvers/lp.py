"""Dense two-phase simplex LP solver (NumPy tableau implementation).

Solves ``min c.x  s.t.  A x <= b, x >= 0`` with arbitrary-sign right-hand
sides.  This is the LP-relaxation engine used by the branch-and-bound ILP
solver; GLPK (used by the paper) is replaced by this self-contained
implementation.  Variable fixing (needed for branching) is handled by column
substitution before the tableau is built.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional

import numpy as np

_EPS = 1e-9
_MAX_ITERATIONS = 20_000


class LPStatus(Enum):
    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ITERATION_LIMIT = "iteration_limit"


@dataclass
class LPResult:
    status: LPStatus
    objective: float = float("inf")
    values: Optional[np.ndarray] = None


def _simplex(tableau: np.ndarray, basis: np.ndarray, num_cols: int) -> LPStatus:
    """Run the primal simplex on an in-place tableau; last row is -objective."""
    rows = tableau.shape[0] - 1
    for _ in range(_MAX_ITERATIONS):
        objective_row = tableau[-1, :num_cols]
        pivot_col = int(np.argmin(objective_row))
        if objective_row[pivot_col] >= -_EPS:
            return LPStatus.OPTIMAL
        column = tableau[:rows, pivot_col]
        positive = column > _EPS
        if not np.any(positive):
            return LPStatus.UNBOUNDED
        ratios = np.full(rows, np.inf)
        ratios[positive] = tableau[:rows, -1][positive] / column[positive]
        pivot_row = int(np.argmin(ratios))
        _pivot(tableau, basis, pivot_row, pivot_col)
    return LPStatus.ITERATION_LIMIT


def _pivot(tableau: np.ndarray, basis: np.ndarray, row: int, col: int) -> None:
    tableau[row, :] /= tableau[row, col]
    factors = tableau[:, col].copy()
    factors[row] = 0.0
    tableau -= np.outer(factors, tableau[row, :])
    basis[row] = col


def solve_lp(c: np.ndarray, a_ub: np.ndarray, b_ub: np.ndarray,
             fixed: Optional[Dict[int, float]] = None) -> LPResult:
    """Solve ``min c.x`` subject to ``a_ub x <= b_ub`` and ``x >= 0``.

    ``fixed`` maps variable indices to forced values (used by branch and
    bound); fixed columns are substituted out before solving and re-inserted
    in the returned assignment.
    """
    c = np.asarray(c, dtype=float)
    a_ub = np.asarray(a_ub, dtype=float)
    b_ub = np.asarray(b_ub, dtype=float)
    num_vars = c.shape[0]
    fixed = fixed or {}

    free_vars = [j for j in range(num_vars) if j not in fixed]
    fixed_vector = np.zeros(num_vars)
    for index, value in fixed.items():
        fixed_vector[index] = value

    reduced_c = c[free_vars]
    constant = float(c @ fixed_vector)
    if a_ub.size:
        reduced_a = a_ub[:, free_vars]
        reduced_b = b_ub - a_ub @ fixed_vector
    else:
        reduced_a = np.zeros((0, len(free_vars)))
        reduced_b = np.zeros(0)

    num_rows = reduced_a.shape[0]
    num_free = len(free_vars)

    # Normalise rows so every RHS is non-negative (flip the row sign turns a
    # <= constraint into a >= constraint, which then needs a surplus variable
    # and an artificial variable).
    surplus_rows = []
    for row in range(num_rows):
        if reduced_b[row] < -_EPS:
            reduced_a[row, :] *= -1.0
            reduced_b[row] *= -1.0
            surplus_rows.append(row)

    num_slack = num_rows
    num_artificial = len(surplus_rows)
    total_cols = num_free + num_slack + num_artificial

    tableau = np.zeros((num_rows + 1, total_cols + 1))
    tableau[:num_rows, :num_free] = reduced_a
    tableau[:num_rows, -1] = reduced_b
    basis = np.zeros(num_rows, dtype=int)

    artificial_index = 0
    artificial_cols = []
    for row in range(num_rows):
        slack_col = num_free + row
        sign = -1.0 if row in surplus_rows else 1.0
        tableau[row, slack_col] = sign
        if row in surplus_rows:
            art_col = num_free + num_slack + artificial_index
            tableau[row, art_col] = 1.0
            basis[row] = art_col
            artificial_cols.append(art_col)
            artificial_index += 1
        else:
            basis[row] = slack_col

    # ---------------- Phase 1 ---------------- #
    # Maximisation-tableau convention: to minimise the sum of artificials we
    # maximise its negation, so the bottom row starts at +1 on the artificial
    # columns and is then priced out against the artificial basis rows.
    if num_artificial:
        phase1 = np.zeros(total_cols + 1)
        for col in artificial_cols:
            phase1[col] = 1.0
        tableau = np.vstack([tableau, phase1])
        # Price out the artificial basis columns.
        for row in range(num_rows):
            if basis[row] in artificial_cols:
                tableau[-1, :] -= tableau[row, :]
        status = _simplex(tableau, basis, total_cols)
        if status is not LPStatus.OPTIMAL or tableau[-1, -1] < -1e-6:
            return LPResult(LPStatus.INFEASIBLE)
        # Drive any artificial variable out of the basis if possible.
        tableau = tableau[:-1, :]
        for row in range(num_rows):
            if basis[row] in artificial_cols:
                candidates = np.where(np.abs(tableau[row, :num_free + num_slack]) > _EPS)[0]
                if candidates.size:
                    _pivot(tableau, basis, row, int(candidates[0]))
        # Remove artificial columns.
        keep = [col for col in range(total_cols) if col not in artificial_cols] + [total_cols]
        remap = {old: new for new, old in enumerate(keep[:-1])}
        tableau = tableau[:, keep]
        basis = np.array([remap.get(b, 0) for b in basis], dtype=int)
        total_cols = num_free + num_slack
        tableau_rows = tableau
    else:
        tableau_rows = tableau

    # ---------------- Phase 2 ---------------- #
    # Minimising reduced_c.x is maximising (-reduced_c).x, whose tableau
    # bottom row starts as +reduced_c.
    objective_row = np.zeros(total_cols + 1)
    objective_row[:num_free] = reduced_c
    tableau = np.vstack([tableau_rows[:num_rows, :], objective_row])
    # Price out basic variables that appear in the objective.
    for row in range(num_rows):
        coefficient = tableau[-1, basis[row]]
        if abs(coefficient) > _EPS:
            tableau[-1, :] -= coefficient * tableau[row, :]
    status = _simplex(tableau, basis, total_cols)
    if status is LPStatus.UNBOUNDED:
        return LPResult(LPStatus.UNBOUNDED)
    if status is LPStatus.ITERATION_LIMIT:
        return LPResult(LPStatus.ITERATION_LIMIT)

    values_reduced = np.zeros(total_cols)
    for row in range(num_rows):
        values_reduced[basis[row]] = tableau[row, -1]
    values = np.array(fixed_vector, dtype=float)
    for position, var_index in enumerate(free_vars):
        values[var_index] = values_reduced[position]
    objective = float(c @ values)
    return LPResult(LPStatus.OPTIMAL, objective=objective, values=values)
