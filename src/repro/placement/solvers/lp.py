"""LP engines for the placement relaxations.

Two engines share the :class:`LPResult` interface:

* :func:`solve_bounded_lp` — a bounded-variable **revised simplex** (primal
  and dual) that handles ``l <= x <= u`` natively, exposes its final basis,
  and can be warm-started from a caller-supplied basis.  This is the
  branch-and-bound hot path: fixing a binary variable is a *bound change*,
  which leaves the parent's optimal basis dual-feasible, so the dual simplex
  re-optimises a child node in a handful of pivots instead of a full
  two-phase solve.
* :func:`solve_lp_dense` — the original dense two-phase tableau
  (``min c.x  s.t.  A x <= b, x >= 0``), kept as the slow-but-simple oracle
  for equivalence tests.  Bounds must be materialised as explicit rows
  (see :meth:`repro.placement.ilp.ILPProblem.dense_rows`).

:func:`solve_lp` is the public convenience entry point: it accepts optional
bounds and a ``fixed`` map (branching by variable fixing) and dispatches to
the bounded engine.  GLPK (used by the paper) is replaced by these
self-contained implementations.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Optional

import numpy as np

_EPS = 1e-9
_PIVOT_TOL = 1e-7         # minimum acceptable pivot magnitude
_FEAS_TOL = 1e-7          # relative primal-feasibility tolerance
_MAX_ITERATIONS = 20_000
_BLAND_STREAK = 40        # degenerate pivots before switching to Bland's rule
_REFACTOR_EVERY = 100     # pivots between basis-inverse refactorisations


class LPStatus(Enum):
    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ITERATION_LIMIT = "iteration_limit"


@dataclass
class LPResult:
    status: LPStatus
    objective: float = float("inf")
    values: Optional[np.ndarray] = None
    #: Basic column per row over the full (structural + slack) column space.
    #: This is the warm-start token for :func:`solve_bounded_lp`; the dense
    #: oracle leaves it ``None``.
    basis: Optional[np.ndarray] = None
    #: Nonbasic-at-upper-bound flags over the full column space (the other
    #: half of the warm-start token).
    at_upper: Optional[np.ndarray] = None
    #: Simplex pivots spent producing this result.
    iterations: int = 0


# =========================================================================== #
# Bounded-variable revised simplex
# =========================================================================== #
class _BoundedSimplex:
    """Revised simplex over ``min c.x  s.t.  A x + s = b, l <= x <= u, s >= 0``.

    Columns ``0..n-1`` are the structural variables, ``n..n+m-1`` the row
    slacks.  Nonbasic variables sit at one of their (finite) bounds; the
    ``at_upper`` flag records which.  The basis inverse is maintained by
    product-form updates and refactorised every :data:`_REFACTOR_EVERY`
    pivots.
    """

    def __init__(self, c: np.ndarray, a_ub: np.ndarray, b_ub: np.ndarray,
                 lower: np.ndarray, upper: np.ndarray):
        m, n = a_ub.shape
        self.m, self.n = m, n
        self.total = n + m
        # Row equilibration: divide every row (and its RHS) by its inf-norm
        # so mixed-scale constraint systems (byte-sized McCormick rows next
        # to cycle-count execution-time rows) pivot stably.  Structural
        # variable values are unaffected; only slack values are rescaled,
        # and those are never reported.
        if m:
            norms = np.maximum(np.abs(a_ub).max(axis=1), _EPS)
            a_scaled = a_ub / norms[:, None]
            self.b = b_ub / norms
            self.W = np.hstack([a_scaled, np.eye(m)])
        else:
            self.b = b_ub.astype(float)
            self.W = np.zeros((0, n))
        self.c = np.concatenate([c, np.zeros(m)])
        self.lower = np.concatenate([lower, np.zeros(m)])
        self.upper = np.concatenate([upper, np.full(m, np.inf)])
        self.basis = np.arange(n, self.total, dtype=int)
        self.in_basis = np.zeros(self.total, dtype=bool)
        self.in_basis[self.basis] = True
        self.at_upper = np.zeros(self.total, dtype=bool)
        self.Binv = np.eye(m)
        self.iterations = 0

    # ------------------------------------------------------------------ #
    # Basis management
    # ------------------------------------------------------------------ #
    def slack_basis(self) -> None:
        """All-slack basis; nonbasic columns at the bound their cost prefers.

        Putting every negative-cost column at its (finite) upper bound makes
        the starting point dual-feasible whenever such bounds exist, so the
        dual simplex alone completes the cold solve.
        """
        self.basis = np.arange(self.n, self.total, dtype=int)
        self.in_basis[:] = False
        self.in_basis[self.basis] = True
        self.at_upper = (self.c < 0.0) & np.isfinite(self.upper)
        self.at_upper[self.in_basis] = False
        self.Binv = np.eye(self.m)

    def load_basis(self, basis: np.ndarray, at_upper: np.ndarray) -> None:
        """Adopt a caller-supplied basis (raises ``LinAlgError`` if singular)."""
        basis = np.asarray(basis, dtype=int)
        if basis.shape != (self.m,):
            raise ValueError("warm-start basis has the wrong number of rows")
        self.Binv = np.linalg.inv(self.W[:, basis])
        self.basis = basis.copy()
        self.in_basis = np.zeros(self.total, dtype=bool)
        self.in_basis[self.basis] = True
        self.at_upper = np.asarray(at_upper, dtype=bool).copy()
        # A flag can become stale when bounds were edited since it was saved
        # (e.g. an upper bound relaxed to infinity): snap it back to "lower".
        self.at_upper &= np.isfinite(self.upper)
        self.at_upper[self.in_basis] = False

    def _refactor(self) -> None:
        self.Binv = np.linalg.inv(self.W[:, self.basis])

    def _update_basis(self, row: int, col: int, alpha: np.ndarray) -> int:
        """Pivot ``col`` into the basis at ``row``; returns the leaving column."""
        leaving = int(self.basis[row])
        self.in_basis[leaving] = False
        self.basis[row] = col
        self.in_basis[col] = True
        self.at_upper[col] = False
        self.Binv[row] /= alpha[row]
        others = np.arange(self.m) != row
        self.Binv[others] -= np.outer(alpha[others], self.Binv[row])
        self.iterations += 1
        if self.iterations % _REFACTOR_EVERY == 0:
            self._refactor()
        return leaving

    # ------------------------------------------------------------------ #
    # State
    # ------------------------------------------------------------------ #
    def _nonbasic_values(self) -> np.ndarray:
        values = np.where(self.at_upper, self.upper, self.lower)
        values[self.basis] = 0.0
        return values

    def _basic_values(self, nonbasic: np.ndarray) -> np.ndarray:
        if self.m == 0:
            return np.zeros(0)
        return self.Binv @ (self.b - self.W @ nonbasic)

    def solution(self) -> np.ndarray:
        x = self._nonbasic_values()
        x[self.basis] = self._basic_values(x)
        return x

    def _reduced_costs(self, costs: np.ndarray) -> np.ndarray:
        if self.m == 0:
            return costs.copy()
        y = costs[self.basis] @ self.Binv
        d = costs - y @ self.W
        d[self.basis] = 0.0
        return d

    def _movable(self) -> np.ndarray:
        """Nonbasic columns that are not fixed (``l < u``)."""
        return ~self.in_basis & (self.upper - self.lower > _EPS)

    # ------------------------------------------------------------------ #
    # Primal simplex (needs a primal-feasible basis)
    # ------------------------------------------------------------------ #
    def primal(self, costs: np.ndarray, max_iterations: int) -> LPStatus:
        streak, bland = 0, False
        for _ in range(max_iterations):
            d = self._reduced_costs(costs)
            movable = self._movable()
            improvement = np.zeros(self.total)
            at_low = movable & ~self.at_upper
            at_up = movable & self.at_upper
            improvement[at_low] = -d[at_low]
            improvement[at_up] = d[at_up]
            candidates = np.where(improvement > _EPS)[0]
            if candidates.size == 0:
                return LPStatus.OPTIMAL
            if bland:
                entering = int(candidates[0])
            else:
                entering = int(candidates[np.argmax(improvement[candidates])])

            alpha = self.Binv @ self.W[:, entering] if self.m else np.zeros(0)
            direction = -1.0 if self.at_upper[entering] else 1.0
            delta = -direction * alpha          # change of x_B per unit step
            nonbasic = self._nonbasic_values()
            basic = self._basic_values(nonbasic)
            lower_b = self.lower[self.basis]
            upper_b = self.upper[self.basis]
            steps = np.full(self.m, np.inf)
            shrink = delta < -_PIVOT_TOL
            steps[shrink] = (basic[shrink] - lower_b[shrink]) / (-delta[shrink])
            grow = delta > _PIVOT_TOL
            steps[grow] = (upper_b[grow] - basic[grow]) / delta[grow]
            steps = np.maximum(steps, 0.0)
            basic_step = float(steps.min()) if self.m else float("inf")
            flip_step = self.upper[entering] - self.lower[entering]

            if flip_step <= basic_step:
                if not np.isfinite(flip_step):
                    return LPStatus.UNBOUNDED
                # Bound flip: the entering column runs to its other bound
                # before any basic variable blocks it.
                self.at_upper[entering] = ~self.at_upper[entering]
                self.iterations += 1
                streak, bland = 0, False
                continue

            near = np.where(steps <= basic_step + _EPS * (1.0 + basic_step))[0]
            if bland:
                row = int(min(near, key=lambda i: self.basis[i]))
            else:
                row = int(near[np.argmax(np.abs(delta[near]))])
            hit_upper = delta[row] > 0
            leaving = self._update_basis(row, entering, alpha)
            self.at_upper[leaving] = bool(hit_upper)
            if basic_step <= _EPS:
                streak += 1
                if streak >= _BLAND_STREAK:
                    bland = True
            else:
                streak, bland = 0, False
        return LPStatus.ITERATION_LIMIT

    # ------------------------------------------------------------------ #
    # Dual simplex (needs a dual-feasible basis)
    # ------------------------------------------------------------------ #
    def dual(self, costs: np.ndarray, max_iterations: int) -> LPStatus:
        streak, bland = 0, False
        for _ in range(max_iterations):
            if self.m == 0:
                return LPStatus.OPTIMAL
            nonbasic = self._nonbasic_values()
            basic = self._basic_values(nonbasic)
            lower_b = self.lower[self.basis]
            upper_b = self.upper[self.basis]
            tolerance = _FEAS_TOL * np.maximum(1.0, np.abs(basic))
            below = lower_b - basic
            above = basic - upper_b
            infeasibility = np.maximum(below, above)
            violated = np.where(infeasibility > tolerance)[0]
            if violated.size == 0:
                return LPStatus.OPTIMAL
            if bland:
                row = int(min(violated, key=lambda i: self.basis[i]))
            else:
                row = int(violated[np.argmax(infeasibility[violated])])

            arow = self.Binv[row] @ self.W
            if below[row] > above[row]:
                effective = -arow               # basic value must increase
                leaving_at_upper = False
            else:
                effective = arow                # basic value must decrease
                leaving_at_upper = True
            d = self._reduced_costs(costs)
            movable = self._movable()
            eligible = movable & (
                (~self.at_upper & (effective > _PIVOT_TOL))
                | (self.at_upper & (effective < -_PIVOT_TOL)))
            candidates = np.where(eligible)[0]
            if candidates.size == 0:
                # The violated row cannot be repaired: dual unbounded, i.e.
                # the primal problem is infeasible.
                return LPStatus.INFEASIBLE
            ratios = np.maximum(d[candidates] / effective[candidates], 0.0)
            best = float(ratios.min())
            near = candidates[ratios <= best + _EPS * (1.0 + best)]
            if bland:
                entering = int(near.min())
            else:
                entering = int(near[np.argmax(np.abs(effective[near]))])

            alpha = self.Binv @ self.W[:, entering]
            leaving = self._update_basis(row, entering, alpha)
            self.at_upper[leaving] = leaving_at_upper
            if best <= _EPS:
                streak += 1
                if streak >= _BLAND_STREAK:
                    bland = True
            else:
                streak, bland = 0, False
        return LPStatus.ITERATION_LIMIT


def solve_bounded_lp(c: np.ndarray, a_ub: np.ndarray, b_ub: np.ndarray,
                     lower: Optional[np.ndarray] = None,
                     upper: Optional[np.ndarray] = None,
                     basis: Optional[np.ndarray] = None,
                     at_upper: Optional[np.ndarray] = None,
                     max_iterations: int = _MAX_ITERATIONS) -> LPResult:
    """Solve ``min c.x`` s.t. ``a_ub x <= b_ub`` and ``lower <= x <= upper``.

    With ``basis``/``at_upper`` from a previous :class:`LPResult` the solve is
    warm-started with the dual simplex — sound whenever only *bounds* changed
    since that basis was optimal, because reduced costs (and hence dual
    feasibility) depend only on ``c`` and ``A``.  Cold solves start from the
    all-slack basis: dual simplex directly when every negative-cost column
    has a finite upper bound, otherwise a feasibility-only dual phase
    followed by the primal simplex.
    """
    c = np.asarray(c, dtype=float)
    n = c.shape[0]
    a_ub = np.asarray(a_ub, dtype=float)
    if a_ub.size == 0:
        a_ub = np.zeros((0, n))
    b_ub = np.asarray(b_ub, dtype=float).reshape(-1)
    lower = np.zeros(n) if lower is None else np.asarray(lower, dtype=float).copy()
    upper = (np.full(n, np.inf) if upper is None
             else np.asarray(upper, dtype=float).copy())
    if not np.all(np.isfinite(lower)):
        raise ValueError("lower bounds must be finite")
    if np.any(lower > upper + _EPS):
        return LPResult(LPStatus.INFEASIBLE)
    upper = np.maximum(upper, lower)

    # Normalise the objective so reduced-cost tolerances are scale-free (the
    # placement objective lives at the ~1e-9 J scale).
    cost_scale = float(np.max(np.abs(c))) if c.size else 0.0
    scaled_c = c / cost_scale if cost_scale > 0 else c

    engine = _BoundedSimplex(scaled_c, a_ub, b_ub, lower, upper)
    costs = engine.c

    if basis is not None:
        try:
            engine.load_basis(basis, at_upper if at_upper is not None
                              else np.zeros(engine.total, dtype=bool))
        except np.linalg.LinAlgError:
            basis = None
    if basis is not None:
        status = engine.dual(costs, max_iterations)
    else:
        engine.slack_basis()
        if np.any((costs < -_EPS) & ~np.isfinite(engine.upper)):
            # No dual-feasible starting point exists with these bounds: run a
            # feasibility-only dual pass (zero costs keep every basis
            # dual-feasible), then optimise with the primal simplex.
            status = engine.dual(np.zeros_like(costs), max_iterations)
            if status is LPStatus.OPTIMAL:
                remaining = max(max_iterations - engine.iterations, 1)
                status = engine.primal(costs, remaining)
        else:
            status = engine.dual(costs, max_iterations)

    if status is not LPStatus.OPTIMAL:
        return LPResult(status, iterations=engine.iterations)
    x = engine.solution()
    values = np.clip(x[:n], lower, upper)
    return LPResult(LPStatus.OPTIMAL, objective=float(c @ values), values=values,
                    basis=engine.basis.copy(), at_upper=engine.at_upper.copy(),
                    iterations=engine.iterations)


def solve_lp(c: np.ndarray, a_ub: np.ndarray, b_ub: np.ndarray,
             fixed: Optional[Dict[int, float]] = None,
             lower: Optional[np.ndarray] = None,
             upper: Optional[np.ndarray] = None) -> LPResult:
    """Solve ``min c.x`` s.t. ``a_ub x <= b_ub``, ``x >= 0`` (default bounds).

    ``fixed`` maps variable indices to forced values (used by branch and
    bound); fixing is implemented as the bound pair ``l_j = u_j = value``,
    so fixed columns stay in the matrix and basis indices remain stable.
    """
    c = np.asarray(c, dtype=float)
    n = c.shape[0]
    lower = np.zeros(n) if lower is None else np.asarray(lower, dtype=float).copy()
    upper = (np.full(n, np.inf) if upper is None
             else np.asarray(upper, dtype=float).copy())
    for index, value in (fixed or {}).items():
        lower[index] = value
        upper[index] = value
    return solve_bounded_lp(c, a_ub, b_ub, lower=lower, upper=upper)


# =========================================================================== #
# Dense two-phase tableau (oracle)
# =========================================================================== #
def _simplex(tableau: np.ndarray, basis: np.ndarray, num_cols: int) -> tuple:
    """Run the primal simplex on an in-place tableau; last row is -objective.

    Uses Dantzig pricing until a streak of degenerate pivots, then falls back
    to Bland's least-index rule (entering column and, among tied ratios,
    leaving row with the smallest basic index), which cannot cycle.  Returns
    ``(status, pivots)``.
    """
    rows = tableau.shape[0] - 1
    streak, bland = 0, False
    for iteration in range(_MAX_ITERATIONS):
        objective_row = tableau[-1, :num_cols]
        if bland:
            negative = np.where(objective_row < -_EPS)[0]
            if negative.size == 0:
                return LPStatus.OPTIMAL, iteration
            pivot_col = int(negative[0])
        else:
            pivot_col = int(np.argmin(objective_row))
            if objective_row[pivot_col] >= -_EPS:
                return LPStatus.OPTIMAL, iteration
        column = tableau[:rows, pivot_col]
        positive = column > _EPS
        if not np.any(positive):
            return LPStatus.UNBOUNDED, iteration
        ratios = np.full(rows, np.inf)
        ratios[positive] = tableau[:rows, -1][positive] / column[positive]
        if bland:
            best = float(ratios.min())
            tied = np.where(ratios <= best + _EPS)[0]
            pivot_row = int(min(tied, key=lambda i: basis[i]))
        else:
            pivot_row = int(np.argmin(ratios))
        degenerate = ratios[pivot_row] <= _EPS
        _pivot(tableau, basis, pivot_row, pivot_col)
        if degenerate:
            streak += 1
            if streak >= _BLAND_STREAK:
                bland = True
        else:
            streak, bland = 0, False
    return LPStatus.ITERATION_LIMIT, _MAX_ITERATIONS


def _pivot(tableau: np.ndarray, basis: np.ndarray, row: int, col: int) -> None:
    tableau[row, :] /= tableau[row, col]
    factors = tableau[:, col].copy()
    factors[row] = 0.0
    tableau -= np.outer(factors, tableau[row, :])
    basis[row] = col


def _remove_artificials(tableau: np.ndarray, basis: np.ndarray,
                        num_free: int, num_slack: int, artificial_cols) -> tuple:
    """Eliminate phase-1 artificial columns from a feasible tableau.

    ``tableau`` holds the constraint rows only (no objective row).  Every
    artificial still in the basis is first driven out by pivoting on any
    nonzero real (structural or slack) coefficient of its row.  A row where
    no such coefficient exists is **redundant**: its real part is all zeros
    and phase 1 proved its RHS is zero, so the row is dropped.  (The
    historical behaviour — remapping the stranded artificial basis entry onto
    column 0 — silently corrupted the recovered solution values for that
    row.)  Returns the reduced ``(tableau, basis, num_rows)``.
    """
    num_rows = tableau.shape[0]
    total_cols = tableau.shape[1] - 1
    artificial_set = set(int(col) for col in artificial_cols)
    for row in range(num_rows):
        if int(basis[row]) in artificial_set:
            candidates = np.where(
                np.abs(tableau[row, :num_free + num_slack]) > _EPS)[0]
            if candidates.size:
                _pivot(tableau, basis, row, int(candidates[0]))
    stuck = [row for row in range(num_rows) if int(basis[row]) in artificial_set]
    if stuck:
        keep_rows = [row for row in range(num_rows) if row not in stuck]
        tableau = tableau[keep_rows, :]
        basis = basis[keep_rows]
        num_rows = len(keep_rows)
    keep = [col for col in range(total_cols) if col not in artificial_set]
    remap = {old: new for new, old in enumerate(keep)}
    tableau = tableau[:, keep + [total_cols]]
    basis = np.array([remap[int(b)] for b in basis], dtype=int)
    return tableau, basis, num_rows


def solve_lp_dense(c: np.ndarray, a_ub: np.ndarray, b_ub: np.ndarray,
                   fixed: Optional[Dict[int, float]] = None) -> LPResult:
    """Solve ``min c.x`` s.t. ``a_ub x <= b_ub``, ``x >= 0`` (dense two-phase).

    ``fixed`` maps variable indices to forced values; fixed columns are
    substituted out before solving and re-inserted in the returned
    assignment.  Variable upper bounds must be supplied as explicit rows.
    This is the reference oracle for :func:`solve_bounded_lp`.
    """
    c = np.asarray(c, dtype=float)
    a_ub = np.asarray(a_ub, dtype=float)
    b_ub = np.asarray(b_ub, dtype=float)
    num_vars = c.shape[0]
    fixed = fixed or {}

    free_vars = [j for j in range(num_vars) if j not in fixed]
    fixed_vector = np.zeros(num_vars)
    for index, value in fixed.items():
        fixed_vector[index] = value

    # Normalise the objective so the reduced-cost stopping tolerance is
    # scale-free: the placement objective lives at the ~1e-9 J scale, where
    # an absolute epsilon would declare optimality several pivots early and
    # hand branch-and-bound an unsound bound.  The recovered vertex is
    # unaffected; the reported objective is recomputed with the original c.
    cost_scale = float(np.max(np.abs(c))) if c.size else 0.0
    reduced_c = (c[free_vars] / cost_scale) if cost_scale > 0 else c[free_vars]
    if a_ub.size:
        reduced_a = a_ub[:, free_vars]
        reduced_b = b_ub - a_ub @ fixed_vector
    else:
        reduced_a = np.zeros((0, len(free_vars)))
        reduced_b = np.zeros(0)

    num_rows = reduced_a.shape[0]
    num_free = len(free_vars)
    iterations = 0

    # Normalise rows so every RHS is non-negative (flip the row sign turns a
    # <= constraint into a >= constraint, which then needs a surplus variable
    # and an artificial variable).
    surplus_rows = []
    for row in range(num_rows):
        if reduced_b[row] < -_EPS:
            reduced_a[row, :] *= -1.0
            reduced_b[row] *= -1.0
            surplus_rows.append(row)

    num_slack = num_rows
    num_artificial = len(surplus_rows)
    total_cols = num_free + num_slack + num_artificial

    tableau = np.zeros((num_rows + 1, total_cols + 1))
    tableau[:num_rows, :num_free] = reduced_a
    tableau[:num_rows, -1] = reduced_b
    basis = np.zeros(num_rows, dtype=int)

    artificial_index = 0
    artificial_cols = []
    for row in range(num_rows):
        slack_col = num_free + row
        sign = -1.0 if row in surplus_rows else 1.0
        tableau[row, slack_col] = sign
        if row in surplus_rows:
            art_col = num_free + num_slack + artificial_index
            tableau[row, art_col] = 1.0
            basis[row] = art_col
            artificial_cols.append(art_col)
            artificial_index += 1
        else:
            basis[row] = slack_col

    # ---------------- Phase 1 ---------------- #
    # Maximisation-tableau convention: to minimise the sum of artificials we
    # maximise its negation, so the bottom row starts at +1 on the artificial
    # columns and is then priced out against the artificial basis rows.
    if num_artificial:
        phase1 = np.zeros(total_cols + 1)
        for col in artificial_cols:
            phase1[col] = 1.0
        tableau = np.vstack([tableau, phase1])
        # Price out the artificial basis columns.
        for row in range(num_rows):
            if basis[row] in artificial_cols:
                tableau[-1, :] -= tableau[row, :]
        status, pivots = _simplex(tableau, basis, total_cols)
        iterations += pivots
        if status is not LPStatus.OPTIMAL or tableau[-1, -1] < -1e-6:
            return LPResult(LPStatus.INFEASIBLE, iterations=iterations)
        tableau, basis, num_rows = _remove_artificials(
            tableau[:num_rows, :], basis, num_free, num_slack, artificial_cols)
        total_cols = num_free + num_slack
        tableau_rows = tableau
    else:
        tableau_rows = tableau

    # ---------------- Phase 2 ---------------- #
    # Minimising reduced_c.x is maximising (-reduced_c).x, whose tableau
    # bottom row starts as +reduced_c.
    objective_row = np.zeros(total_cols + 1)
    objective_row[:num_free] = reduced_c
    tableau = np.vstack([tableau_rows[:num_rows, :], objective_row])
    # Price out basic variables that appear in the objective.
    for row in range(num_rows):
        coefficient = tableau[-1, basis[row]]
        if abs(coefficient) > _EPS:
            tableau[-1, :] -= coefficient * tableau[row, :]
    status, pivots = _simplex(tableau, basis, total_cols)
    iterations += pivots
    if status is LPStatus.UNBOUNDED:
        return LPResult(LPStatus.UNBOUNDED, iterations=iterations)
    if status is LPStatus.ITERATION_LIMIT:
        return LPResult(LPStatus.ITERATION_LIMIT, iterations=iterations)

    values_reduced = np.zeros(total_cols)
    for row in range(num_rows):
        values_reduced[basis[row]] = tableau[row, -1]
    values = np.array(fixed_vector, dtype=float)
    for position, var_index in enumerate(free_vars):
        values[var_index] = values_reduced[position]
    objective = float(c @ values)
    return LPResult(LPStatus.OPTIMAL, objective=objective, values=values,
                    iterations=iterations)
