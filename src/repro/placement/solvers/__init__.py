"""Solvers for the placement problem: LP/ILP from scratch, greedy, exhaustive."""

from repro.placement.solvers.lp import (
    solve_lp,
    solve_bounded_lp,
    solve_lp_dense,
    LPResult,
    LPStatus,
)
from repro.placement.solvers.branch_and_bound import solve_ilp, ILPResult
from repro.placement.solvers.greedy import greedy_placement
from repro.placement.solvers.exhaustive import (
    enumerate_placements,
    exhaustive_best_placement,
)

__all__ = [
    "solve_lp",
    "solve_bounded_lp",
    "solve_lp_dense",
    "LPResult",
    "LPStatus",
    "solve_ilp",
    "ILPResult",
    "greedy_placement",
    "enumerate_placements",
    "exhaustive_best_placement",
]
