"""0/1 branch-and-bound ILP solver built on the simplex LP relaxation.

Branching is restricted to the ``r`` (block-in-RAM) variables: as argued in
:mod:`repro.placement.ilp`, once every ``r`` is integral the auxiliary ``i``
and ``z`` variables are forced to integral values by their constraints and
objective signs.  Best-first search with LP lower bounds keeps the tree small
(the relaxation of this knapsack-like problem is mostly integral already).

Two LP back ends drive the node relaxations:

* ``warm_start=True`` (default) — branching *tightens a bound* (``r_b`` is
  fixed by setting ``l = u``), which leaves the constraint matrix and
  objective untouched.  Reduced costs depend only on those, so the parent's
  optimal basis stays **dual-feasible** in both children and the bounded
  revised simplex re-optimises with the dual method in a handful of pivots
  (see DESIGN.md, "Warm-started placement ILP").
* ``warm_start=False`` — every node is solved from scratch by the dense
  two-phase tableau with bounds materialised as rows.  This is the slow
  oracle used by the equivalence tests and benchmarks.

Children inherit ``max(child LP, parent bound)``: fixing one more variable
can only shrink the feasible region, so a child's true bound is at least the
parent's.  This keeps bounds monotone along every branch (LP round-off
cannot lower them), which both tightens pruning and makes the final
optimality check sound.  A child whose LP gives up (iteration limit or
numerical trouble) is kept as an *unresolved* open node at its parent's
bound: its subtree may hold the true optimum, so unless the incumbent prunes
that bound the solver reports ``"feasible"`` rather than claiming a proof.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.placement.ilp import ILPProblem
from repro.placement.solvers.lp import (
    LPResult,
    LPStatus,
    solve_bounded_lp,
    solve_lp_dense,
)

_INTEGRALITY_TOL = 1e-6


@dataclass
class ILPResult:
    """Result of a branch-and-bound run."""

    status: str
    objective: float = float("inf")
    values: Optional[np.ndarray] = None
    nodes_explored: int = 0
    optimal: bool = False
    #: Total simplex pivots across every LP relaxation solved.
    lp_pivots: int = 0
    #: LP relaxations re-solved with the dual simplex from a parent basis.
    warm_solves: int = 0
    #: LP relaxations solved from scratch (the root, and every node when
    #: ``warm_start=False``).
    cold_solves: int = 0
    #: Children whose LP gave up; each forfeits the optimality proof unless
    #: the incumbent prunes its (parent) bound.
    unresolved_nodes: int = 0


def _fractional_branch_var(problem: ILPProblem, values: np.ndarray) -> Optional[int]:
    """Most fractional branch variable, or None if all are integral."""
    best_var = None
    best_distance = _INTEGRALITY_TOL
    for var in problem.branch_vars:
        fraction = abs(values[var] - round(values[var]))
        if fraction > best_distance:
            best_distance = fraction
            best_var = var
    return best_var


class _NodeSolver:
    """Solves node relaxations, warm-starting from the parent when allowed."""

    def __init__(self, problem: ILPProblem, warm_start: bool):
        self.problem = problem
        self.warm_start = warm_start
        self.lower, self.upper = problem.bounds()
        if not warm_start:
            self.dense_a, self.dense_b = problem.dense_rows()
        self.lp_pivots = 0
        self.warm_solves = 0
        self.cold_solves = 0

    def solve(self, fixed: Dict[int, float],
              parent: Optional[LPResult]) -> LPResult:
        if not self.warm_start:
            self.cold_solves += 1
            result = solve_lp_dense(self.problem.objective, self.dense_a,
                                    self.dense_b, fixed=fixed)
            self.lp_pivots += result.iterations
            return result
        lower = self.lower.copy()
        upper = self.upper.copy()
        for var, value in fixed.items():
            lower[var] = value
            upper[var] = value
        if parent is not None and parent.basis is not None:
            self.warm_solves += 1
            result = solve_bounded_lp(self.problem.objective, self.problem.a_ub,
                                      self.problem.b_ub, lower=lower,
                                      upper=upper, basis=parent.basis,
                                      at_upper=parent.at_upper)
        else:
            self.cold_solves += 1
            result = solve_bounded_lp(self.problem.objective, self.problem.a_ub,
                                      self.problem.b_ub, lower=lower,
                                      upper=upper)
        self.lp_pivots += result.iterations
        return result


def solve_ilp(problem: ILPProblem, max_nodes: int = 400,
              gap_tolerance: float = 1e-9,
              warm_start: bool = True) -> ILPResult:
    """Solve the placement ILP with best-first branch and bound."""
    counter = itertools.count()
    solver = _NodeSolver(problem, warm_start)
    root = solver.solve({}, None)
    result = ILPResult(status="infeasible")
    if root.status is not LPStatus.OPTIMAL:
        result.status = root.status.value
        result.lp_pivots = solver.lp_pivots
        result.cold_solves = solver.cold_solves
        return result

    best_objective = float("inf")
    best_values: Optional[np.ndarray] = None
    heap = [(root.objective, next(counter), {}, root)]
    unresolved_bounds: List[float] = []
    nodes = 0

    while heap and nodes < max_nodes:
        bound, _, fixed, relaxation = heapq.heappop(heap)
        if bound >= best_objective - gap_tolerance:
            continue
        nodes += 1
        branch_var = _fractional_branch_var(problem, relaxation.values)
        if branch_var is None:
            # Snap the integral relaxation onto the exact 0/1 lattice before
            # keeping it: raw LP values carry ±epsilon noise that would
            # otherwise leak through ``solution_to_ram_set`` and into
            # downstream integrality checks.
            rounded = np.clip(np.round(relaxation.values), 0.0, 1.0)
            if relaxation.objective < best_objective:
                best_objective = relaxation.objective
                best_values = rounded
            continue
        for value in (1.0, 0.0):
            child_fixed: Dict[int, float] = dict(fixed)
            child_fixed[branch_var] = value
            child = solver.solve(child_fixed, relaxation)
            if child.status is LPStatus.INFEASIBLE:
                continue
            if child.status is not LPStatus.OPTIMAL:
                # The LP gave up (iteration limit / numerical trouble).  The
                # subtree may still hold the true optimum, so it must not be
                # discarded like an infeasible child: remember it as an open
                # node at the parent's bound and let the final check decide
                # whether the incumbent's optimality proof survives.
                unresolved_bounds.append(bound)
                continue
            # Warm-start the child's bound from the parent: the child's
            # feasible region is a subset of the parent's, so its true bound
            # can never be below the parent's even when the LP says so.
            child_bound = max(child.objective, bound)
            if child_bound >= best_objective - gap_tolerance:
                continue
            heapq.heappush(heap, (child_bound, next(counter), child_fixed, child))

    result.lp_pivots = solver.lp_pivots
    result.warm_solves = solver.warm_solves
    result.cold_solves = solver.cold_solves
    result.unresolved_nodes = len(unresolved_bounds)

    if best_values is None:
        # Fall back to a rounded root solution if the node budget ran out
        # before any integral point was found.
        if root.values is not None:
            rounded = {var: float(round(root.values[var]))
                       for var in problem.branch_vars}
            repaired = solver.solve(rounded, root)
            result.lp_pivots = solver.lp_pivots
            result.warm_solves = solver.warm_solves
            result.cold_solves = solver.cold_solves
            if repaired.status is LPStatus.OPTIMAL:
                result.status = "feasible"
                result.objective = repaired.objective
                result.values = repaired.values
                result.nodes_explored = nodes
                return result
        # With unresolved subtrees the problem may still be feasible — only
        # claim infeasibility when every branch was genuinely closed.
        result.status = "unresolved" if unresolved_bounds else "infeasible"
        result.nodes_explored = nodes
        return result

    # The incumbent is proven optimal when no open node could still beat it:
    # the heap is bound-ordered, so checking its minimum covers every node,
    # and every unresolved child must be prunable by its parent's bound.
    # (Running out of the node budget alone does not forfeit the proof.)
    proven = not heap or heap[0][0] >= best_objective - gap_tolerance
    proven = proven and all(open_bound >= best_objective - gap_tolerance
                            for open_bound in unresolved_bounds)
    result.status = "optimal" if proven else "feasible"
    result.optimal = result.status == "optimal"
    result.objective = best_objective
    result.values = best_values
    result.nodes_explored = nodes
    return result
