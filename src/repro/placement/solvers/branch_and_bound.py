"""0/1 branch-and-bound ILP solver built on the simplex LP relaxation.

Branching is restricted to the ``r`` (block-in-RAM) variables: as argued in
:mod:`repro.placement.ilp`, once every ``r`` is integral the auxiliary ``i``
and ``z`` variables are forced to integral values by their constraints and
objective signs.  Best-first search with LP lower bounds keeps the tree small
(the relaxation of this knapsack-like problem is mostly integral already).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.placement.ilp import ILPProblem
from repro.placement.solvers.lp import LPStatus, solve_lp

_INTEGRALITY_TOL = 1e-6


@dataclass
class ILPResult:
    """Result of a branch-and-bound run."""

    status: str
    objective: float = float("inf")
    values: Optional[np.ndarray] = None
    nodes_explored: int = 0
    optimal: bool = False


def _fractional_branch_var(problem: ILPProblem, values: np.ndarray) -> Optional[int]:
    """Most fractional branch variable, or None if all are integral."""
    best_var = None
    best_distance = _INTEGRALITY_TOL
    for var in problem.branch_vars:
        fraction = abs(values[var] - round(values[var]))
        if fraction > best_distance:
            best_distance = fraction
            best_var = var
    return best_var


def solve_ilp(problem: ILPProblem, max_nodes: int = 400,
              gap_tolerance: float = 1e-9) -> ILPResult:
    """Solve the placement ILP with best-first branch and bound."""
    counter = itertools.count()
    root = solve_lp(problem.objective, problem.a_ub, problem.b_ub, fixed={})
    result = ILPResult(status="infeasible")
    if root.status is not LPStatus.OPTIMAL:
        result.status = root.status.value
        return result

    best_objective = float("inf")
    best_values: Optional[np.ndarray] = None
    heap = [(root.objective, next(counter), {}, root)]
    nodes = 0

    while heap and nodes < max_nodes:
        bound, _, fixed, relaxation = heapq.heappop(heap)
        if bound >= best_objective - gap_tolerance:
            continue
        nodes += 1
        branch_var = _fractional_branch_var(problem, relaxation.values)
        if branch_var is None:
            rounded = np.clip(np.round(relaxation.values), 0.0, None)
            if relaxation.objective < best_objective:
                best_objective = relaxation.objective
                best_values = relaxation.values
            continue
        for value in (1.0, 0.0):
            child_fixed: Dict[int, float] = dict(fixed)
            child_fixed[branch_var] = value
            child = solve_lp(problem.objective, problem.a_ub, problem.b_ub,
                             fixed=child_fixed)
            if child.status is not LPStatus.OPTIMAL:
                continue
            if child.objective >= best_objective - gap_tolerance:
                continue
            heapq.heappush(heap, (child.objective, next(counter), child_fixed, child))

    if best_values is None:
        # Fall back to a rounded root solution if the node budget ran out
        # before any integral point was found.
        if root.values is not None:
            rounded = {var: float(round(root.values[var]))
                       for var in problem.branch_vars}
            repaired = solve_lp(problem.objective, problem.a_ub, problem.b_ub,
                                fixed=rounded)
            if repaired.status is LPStatus.OPTIMAL:
                result.status = "feasible"
                result.objective = repaired.objective
                result.values = repaired.values
                result.nodes_explored = nodes
                return result
        result.status = "infeasible"
        result.nodes_explored = nodes
        return result

    result.status = "optimal" if not heap or nodes < max_nodes else "feasible"
    result.optimal = result.status == "optimal"
    result.objective = best_objective
    result.values = best_values
    result.nodes_explored = nodes
    return result
