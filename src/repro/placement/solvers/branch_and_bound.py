"""0/1 branch-and-bound ILP solver built on the simplex LP relaxation.

Branching is restricted to the ``r`` (block-in-RAM) variables: as argued in
:mod:`repro.placement.ilp`, once every ``r`` is integral the auxiliary ``i``
and ``z`` variables are forced to integral values by their constraints and
objective signs.  Best-first search with LP lower bounds keeps the tree small
(the relaxation of this knapsack-like problem is mostly integral already).

Children are warm-started from their parent's bound: fixing one more
variable can only shrink the feasible region, so a child's true bound is at
least the parent's, and the child inherits ``max(child LP, parent bound)``.
This keeps bounds monotone along every branch (LP round-off cannot lower
them), which both tightens pruning and makes the final optimality check
sound: when every remaining open node's bound is at least the incumbent, the
incumbent is provably optimal even if the node budget ran out.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.placement.ilp import ILPProblem
from repro.placement.solvers.lp import LPStatus, solve_lp

_INTEGRALITY_TOL = 1e-6


@dataclass
class ILPResult:
    """Result of a branch-and-bound run."""

    status: str
    objective: float = float("inf")
    values: Optional[np.ndarray] = None
    nodes_explored: int = 0
    optimal: bool = False


def _fractional_branch_var(problem: ILPProblem, values: np.ndarray) -> Optional[int]:
    """Most fractional branch variable, or None if all are integral."""
    best_var = None
    best_distance = _INTEGRALITY_TOL
    for var in problem.branch_vars:
        fraction = abs(values[var] - round(values[var]))
        if fraction > best_distance:
            best_distance = fraction
            best_var = var
    return best_var


def solve_ilp(problem: ILPProblem, max_nodes: int = 400,
              gap_tolerance: float = 1e-9) -> ILPResult:
    """Solve the placement ILP with best-first branch and bound."""
    counter = itertools.count()
    root = solve_lp(problem.objective, problem.a_ub, problem.b_ub, fixed={})
    result = ILPResult(status="infeasible")
    if root.status is not LPStatus.OPTIMAL:
        result.status = root.status.value
        return result

    best_objective = float("inf")
    best_values: Optional[np.ndarray] = None
    heap = [(root.objective, next(counter), {}, root)]
    nodes = 0

    while heap and nodes < max_nodes:
        bound, _, fixed, relaxation = heapq.heappop(heap)
        if bound >= best_objective - gap_tolerance:
            continue
        nodes += 1
        branch_var = _fractional_branch_var(problem, relaxation.values)
        if branch_var is None:
            # Snap the integral relaxation onto the exact 0/1 lattice before
            # keeping it: raw LP values carry ±epsilon noise that would
            # otherwise leak through ``solution_to_ram_set`` and into
            # downstream integrality checks.
            rounded = np.clip(np.round(relaxation.values), 0.0, 1.0)
            if relaxation.objective < best_objective:
                best_objective = relaxation.objective
                best_values = rounded
            continue
        for value in (1.0, 0.0):
            child_fixed: Dict[int, float] = dict(fixed)
            child_fixed[branch_var] = value
            child = solve_lp(problem.objective, problem.a_ub, problem.b_ub,
                             fixed=child_fixed)
            if child.status is not LPStatus.OPTIMAL:
                continue
            # Warm-start the child's bound from the parent: the child's
            # feasible region is a subset of the parent's, so its true bound
            # can never be below the parent's even when the LP says so.
            child_bound = max(child.objective, bound)
            if child_bound >= best_objective - gap_tolerance:
                continue
            heapq.heappush(heap, (child_bound, next(counter), child_fixed, child))

    if best_values is None:
        # Fall back to a rounded root solution if the node budget ran out
        # before any integral point was found.
        if root.values is not None:
            rounded = {var: float(round(root.values[var]))
                       for var in problem.branch_vars}
            repaired = solve_lp(problem.objective, problem.a_ub, problem.b_ub,
                                fixed=rounded)
            if repaired.status is LPStatus.OPTIMAL:
                result.status = "feasible"
                result.objective = repaired.objective
                result.values = repaired.values
                result.nodes_explored = nodes
                return result
        result.status = "infeasible"
        result.nodes_explored = nodes
        return result

    # The incumbent is proven optimal when no open node could still beat it:
    # the heap is bound-ordered, so checking its minimum covers every node.
    # (Running out of the node budget alone does not forfeit the proof.)
    proven = not heap or heap[0][0] >= best_objective - gap_tolerance
    result.status = "optimal" if proven else "feasible"
    result.optimal = result.status == "optimal"
    result.objective = best_objective
    result.values = best_values
    result.nodes_explored = nodes
    return result
