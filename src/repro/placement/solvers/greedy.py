"""Greedy knapsack-style baseline placement heuristic.

Used as the comparison baseline for the solver-quality ablation: blocks are
ranked by modelled energy saving per byte of RAM and added while the RAM and
execution-time constraints (Equations 7 and 9) stay satisfied.  Unlike the
ILP, the greedy pass cannot discover the "cluster small joining blocks to
avoid instrumentation" behaviour the paper highlights.
"""

from __future__ import annotations

from typing import List, Set

from repro.placement.cost_model import PlacementCostModel


def greedy_placement(model: PlacementCostModel, r_spare: float,
                     x_limit: float) -> Set[str]:
    """Select a feasible block set by greedy energy-per-byte ranking."""
    ram: Set[str] = set()
    current_energy = model.baseline_energy()

    candidates: List[str] = []
    for key in model.eligible_keys():
        params = model.parameters[key]
        if params.frequency <= 0 or params.size == 0:
            continue
        saving = (model.block_energy(params, False, False)
                  - model.block_energy(params, True, True))
        if saving > 0:
            candidates.append(key)
    candidates.sort(
        key=lambda k: ((model.block_energy(model.parameters[k], False, False)
                        - model.block_energy(model.parameters[k], True, True))
                       / max(model.parameters[k].size, 1)),
        reverse=True)

    for key in candidates:
        trial = ram | {key}
        estimate = model.evaluate(trial)
        if estimate.ram_bytes > r_spare or estimate.time_ratio > x_limit:
            continue
        if estimate.energy_j < current_energy:
            ram = trial
            current_energy = estimate.energy_j
    return ram
