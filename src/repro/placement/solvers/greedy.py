"""Greedy knapsack-style baseline placement heuristic.

Used as the comparison baseline for the solver-quality ablation: blocks are
ranked by modelled energy saving per byte of RAM and added while the RAM and
execution-time constraints (Equations 7 and 9) stay satisfied.  Unlike the
ILP, the greedy pass cannot discover the "cluster small joining blocks to
avoid instrumentation" behaviour the paper highlights.

Candidate evaluation uses :class:`~repro.placement.cost_model.IncrementalPlacement`
by default, so each trial costs O(deg(block)) instead of a full O(n) model
evaluation; ``incremental=False`` keeps the original full-evaluation path
(the before/after subject of ``benchmarks/bench_explore.py``).
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.placement.cost_model import IncrementalPlacement, PlacementCostModel


def _ranked_candidates(model: PlacementCostModel) -> List[str]:
    """Eligible blocks with positive modelled saving, best saving/byte first.

    The saving of each block is computed exactly once and reused as the sort
    key; ties keep the model's parameter order (the sort is stable).
    """
    scored: List[Tuple[str, float]] = []
    for key in model.eligible_keys():
        params = model.parameters[key]
        if params.frequency <= 0 or params.size == 0:
            continue
        saving = (model.block_energy(params, False, False)
                  - model.block_energy(params, True, True))
        if saving > 0:
            scored.append((key, saving / max(params.size, 1)))
    scored.sort(key=lambda entry: entry[1], reverse=True)
    return [key for key, _ in scored]


def greedy_placement(model: PlacementCostModel, r_spare: float,
                     x_limit: float, incremental: bool = True) -> Set[str]:
    """Select a feasible block set by greedy energy-per-byte ranking."""
    candidates = _ranked_candidates(model)

    if incremental:
        placement = IncrementalPlacement(model)
        current_energy = placement.energy_j
        for key in candidates:
            energy, time_ratio, ram_bytes = placement.preview_totals(key)
            if ram_bytes > r_spare or time_ratio > x_limit:
                continue
            if energy < current_energy:
                placement.add(key)
                current_energy = placement.energy_j
        return set(placement.ram)

    ram: Set[str] = set()
    current_energy = model.baseline_energy()
    for key in candidates:
        trial = ram | {key}
        estimate = model.evaluate(trial)
        if estimate.ram_bytes > r_spare or estimate.time_ratio > x_limit:
            continue
        if estimate.energy_j < current_energy:
            ram = trial
            current_energy = estimate.energy_j
    return ram
