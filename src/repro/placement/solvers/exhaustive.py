"""Exhaustive enumeration of placements (the clouds of Figure 6).

The paper enumerates all ``2^k`` combinations of basic blocks in RAM/flash to
show where the ILP solutions sit in the energy/time/RAM trade-off space.  Full
enumeration is only tractable for small ``k``; for larger programs the
``significant_blocks`` helper restricts the space to the blocks that matter
most (by modelled energy impact), which is also how the interesting clusters
of Figure 6 arise (the paper notes int_matmult's clusters come from its three
large, hot blocks).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Set, Tuple

from repro.placement.cost_model import PlacementCostModel, PlacementEstimate


@dataclass
class EnumeratedPoint:
    """One point of the design space: a placement and its model estimate."""

    ram_blocks: Tuple[str, ...]
    estimate: PlacementEstimate


def significant_blocks(model: PlacementCostModel, limit: int) -> List[str]:
    """The *limit* eligible blocks with the largest modelled energy impact."""
    scored = []
    for key in model.eligible_keys():
        params = model.parameters[key]
        impact = (model.block_energy(params, False, False)
                  - model.block_energy(params, True, False))
        scored.append((impact, key))
    scored.sort(reverse=True)
    return [key for _, key in scored[:limit]]


def enumerate_placements(model: PlacementCostModel,
                         blocks: Optional[Iterable[str]] = None,
                         max_blocks: int = 14) -> Iterator[EnumeratedPoint]:
    """Yield every subset of *blocks* with its cost-model evaluation.

    ``max_blocks`` caps the exponential blow-up; if *blocks* is None the most
    significant ``max_blocks`` blocks are enumerated (matching how the paper's
    Figure 6 clusters are dominated by a handful of large hot blocks).
    """
    block_list = list(blocks) if blocks is not None else \
        significant_blocks(model, max_blocks)
    if len(block_list) > max_blocks:
        block_list = block_list[:max_blocks]
    for size in range(len(block_list) + 1):
        for combination in itertools.combinations(block_list, size):
            yield EnumeratedPoint(combination, model.evaluate(combination))


def exhaustive_best_placement(model: PlacementCostModel, r_spare: float,
                              x_limit: float,
                              blocks: Optional[Iterable[str]] = None,
                              max_blocks: int = 14) -> Set[str]:
    """Best feasible placement by brute force (ground truth for small cases)."""
    best: Set[str] = set()
    best_energy = model.baseline_energy()
    for point in enumerate_placements(model, blocks, max_blocks):
        estimate = point.estimate
        if estimate.ram_bytes > r_spare or estimate.time_ratio > x_limit + 1e-9:
            continue
        if estimate.energy_j < best_energy - 1e-15:
            best_energy = estimate.energy_j
            best = set(point.ram_blocks)
    return best
