"""Exhaustive enumeration of placements (the clouds of Figure 6).

The paper enumerates all ``2^k`` combinations of basic blocks in RAM/flash to
show where the ILP solutions sit in the energy/time/RAM trade-off space.  Full
enumeration is only tractable for small ``k``; for larger programs the
``significant_blocks`` helper restricts the space to the blocks that matter
most (by modelled energy impact), which is also how the interesting clusters
of Figure 6 arise (the paper notes int_matmult's clusters come from its three
large, hot blocks).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Set, Tuple

from repro.placement.cost_model import (
    IncrementalPlacement,
    PlacementCostModel,
    PlacementEstimate,
)


@dataclass
class EnumeratedPoint:
    """One point of the design space: a placement and its model estimate."""

    ram_blocks: Tuple[str, ...]
    estimate: PlacementEstimate


def significant_blocks(model: PlacementCostModel, limit: int) -> List[str]:
    """The *limit* eligible blocks with the largest modelled energy impact."""
    scored = []
    for key in model.eligible_keys():
        params = model.parameters[key]
        impact = (model.block_energy(params, False, False)
                  - model.block_energy(params, True, False))
        scored.append((impact, key))
    scored.sort(reverse=True)
    return [key for _, key in scored[:limit]]


def _candidate_blocks(model: PlacementCostModel,
                      blocks: Optional[Iterable[str]],
                      max_blocks: int) -> List[str]:
    """The block list an enumeration walks: given, or the most significant."""
    block_list = list(blocks) if blocks is not None else \
        significant_blocks(model, max_blocks)
    if len(block_list) > max_blocks:
        block_list = block_list[:max_blocks]
    return block_list


def enumerate_placements(model: PlacementCostModel,
                         blocks: Optional[Iterable[str]] = None,
                         max_blocks: int = 14) -> Iterator[EnumeratedPoint]:
    """Yield every subset of *blocks* with its cost-model evaluation.

    ``max_blocks`` caps the exponential blow-up; if *blocks* is None the most
    significant ``max_blocks`` blocks are enumerated (matching how the paper's
    Figure 6 clusters are dominated by a handful of large hot blocks).
    """
    block_list = _candidate_blocks(model, blocks, max_blocks)
    for size in range(len(block_list) + 1):
        for combination in itertools.combinations(block_list, size):
            yield EnumeratedPoint(combination, model.evaluate(combination))


def exhaustive_best_placement(model: PlacementCostModel, r_spare: float,
                              x_limit: float,
                              blocks: Optional[Iterable[str]] = None,
                              max_blocks: int = 14) -> Set[str]:
    """Best feasible placement by brute force (ground truth for small cases).

    The ``2^k`` subsets are walked in binary-reflected Gray-code order, so
    each step toggles exactly one block and the cost model updates
    incrementally — O(1) neighbourhood work per subset instead of a full
    O(n) evaluation, which is what makes ``k`` around 14 tractable on the
    full-program models.
    """
    block_list = _candidate_blocks(model, blocks, max_blocks)

    placement = IncrementalPlacement(model)
    baseline_cycles = placement.baseline_cycles
    best: Set[str] = set()
    best_energy = placement.energy_j  # the all-in-flash baseline
    for index in range(1, 2 ** len(block_list)):
        bit = (index & -index).bit_length() - 1
        placement.toggle(block_list[bit])
        if placement.ram_bytes > r_spare:
            continue
        ratio = (placement.cycles / baseline_cycles if baseline_cycles else 1.0)
        if ratio > x_limit + 1e-9:
            continue
        if placement.energy_j < best_energy - 1e-15:
            best_energy = placement.energy_j
            best = set(placement.ram)
    return best
