"""The energy cost model of Section 4.3 (Equations 1-9).

Given the per-block parameters and the two memory energy coefficients
``E_flash`` and ``E_ram`` (Joules per cycle), the model predicts, for any
candidate set ``R`` of blocks placed in RAM:

* which blocks must be instrumented (``I``, Equation 5),
* the energy of every block (Equation 2) and the program total (Equation 1),
* the execution-time ratio against the all-in-flash baseline (Equation 9),
* the RAM bytes consumed (Equation 7).

The same model is used by the ILP formulation (linearised), by the greedy and
exhaustive solvers directly, and by the Figure 6 design-space sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Set

from repro.placement.parameters import BlockParameters


@dataclass
class PlacementEstimate:
    """Model predictions for one candidate placement."""

    energy_j: float
    cycles: float
    time_ratio: float
    ram_bytes: int
    instrumented: Set[str]

    @property
    def average_power_w(self) -> float:
        return self.energy_j / self.cycles if self.cycles else 0.0


class PlacementCostModel:
    """Evaluates Equations 1-9 for arbitrary placements."""

    def __init__(self, parameters: Dict[str, BlockParameters],
                 e_flash: float, e_ram: float):
        if e_flash <= 0 or e_ram <= 0:
            raise ValueError("energy coefficients must be positive")
        self.parameters = parameters
        self.e_flash = e_flash
        self.e_ram = e_ram

    # ------------------------------------------------------------------ #
    # Equation 5: the instrumented set I
    # ------------------------------------------------------------------ #
    def instrumented_set(self, ram_set: Set[str]) -> Set[str]:
        instrumented: Set[str] = set()
        for key, params in self.parameters.items():
            in_ram = key in ram_set
            for succ in params.successors:
                succ_in_ram = succ in ram_set
                if succ_in_ram != in_ram:
                    instrumented.add(key)
                    break
        return instrumented

    # ------------------------------------------------------------------ #
    # Equations 2-6: per-block energy
    # ------------------------------------------------------------------ #
    def memory_energy(self, in_ram: bool) -> float:
        """Equation 3: the per-cycle energy coefficient M(b)."""
        return self.e_ram if in_ram else self.e_flash

    def block_cycles(self, params: BlockParameters, in_ram: bool,
                     instrumented: bool) -> float:
        """``C_b + O_c(b) + O_r(b)`` for one execution of the block."""
        cycles = float(params.cycles)
        if instrumented:
            cycles += params.instrument_cycles
        if in_ram:
            cycles += params.ram_stall_cycles
        return cycles

    def block_energy(self, params: BlockParameters, in_ram: bool,
                     instrumented: bool) -> float:
        """Equation 2: ``E(b) = (C_b + O_c + O_r) * M(b) * F_b``."""
        cycles = self.block_cycles(params, in_ram, instrumented)
        return cycles * self.memory_energy(in_ram) * params.frequency

    # ------------------------------------------------------------------ #
    # Program-level sums
    # ------------------------------------------------------------------ #
    def baseline_cycles(self) -> float:
        """Weighted cycles with everything in flash (denominator of Eq. 9)."""
        return sum(p.cycles * p.frequency for p in self.parameters.values())

    def baseline_energy(self) -> float:
        """Equation 1 evaluated at R = {} (the all-in-flash base case)."""
        return sum(self.block_energy(p, False, False)
                   for p in self.parameters.values())

    def total_energy(self, ram_set: Set[str],
                     instrumented: Optional[Set[str]] = None) -> float:
        instrumented = (self.instrumented_set(ram_set)
                        if instrumented is None else instrumented)
        return sum(
            self.block_energy(p, key in ram_set, key in instrumented)
            for key, p in self.parameters.items())

    def total_cycles(self, ram_set: Set[str],
                     instrumented: Optional[Set[str]] = None) -> float:
        instrumented = (self.instrumented_set(ram_set)
                        if instrumented is None else instrumented)
        return sum(
            self.block_cycles(p, key in ram_set, key in instrumented) * p.frequency
            for key, p in self.parameters.items())

    def ram_usage(self, ram_set: Set[str],
                  instrumented: Optional[Set[str]] = None) -> int:
        """Equation 7's left-hand side: bytes of RAM consumed by the placement."""
        instrumented = (self.instrumented_set(ram_set)
                        if instrumented is None else instrumented)
        total = 0
        for key in ram_set:
            params = self.parameters[key]
            total += params.size
            if key in instrumented:
                total += params.instrument_bytes
        return total

    def evaluate(self, ram_set: Iterable[str]) -> PlacementEstimate:
        """Full model evaluation of one candidate placement."""
        ram = set(ram_set)
        instrumented = self.instrumented_set(ram)
        energy = self.total_energy(ram, instrumented)
        cycles = self.total_cycles(ram, instrumented)
        baseline = self.baseline_cycles()
        ratio = cycles / baseline if baseline else 1.0
        return PlacementEstimate(
            energy_j=energy,
            cycles=cycles,
            time_ratio=ratio,
            ram_bytes=self.ram_usage(ram, instrumented),
            instrumented=instrumented,
        )

    # ------------------------------------------------------------------ #
    def eligible_keys(self):
        """Blocks the solver may consider moving (non-library)."""
        return [key for key, params in self.parameters.items() if params.eligible]

    def is_feasible(self, ram_set: Set[str], r_spare: int, x_limit: float) -> bool:
        """Check Equations 7 and 9 for a candidate placement."""
        estimate = self.evaluate(ram_set)
        return estimate.ram_bytes <= r_spare and estimate.time_ratio <= x_limit + 1e-9
