"""The energy cost model of Section 4.3 (Equations 1-9).

Given the per-block parameters and the two memory energy coefficients
``E_flash`` and ``E_ram`` (Joules per cycle), the model predicts, for any
candidate set ``R`` of blocks placed in RAM:

* which blocks must be instrumented (``I``, Equation 5),
* the energy of every block (Equation 2) and the program total (Equation 1),
* the execution-time ratio against the all-in-flash baseline (Equation 9),
* the RAM bytes consumed (Equation 7).

The same model is used by the ILP formulation (linearised), by the greedy and
exhaustive solvers directly, and by the Figure 6 design-space sweeps.

:class:`IncrementalPlacement` maintains one placement under add/remove of a
single block with O(neighbourhood) work per update: toggling block ``b`` can
only change the (membership, instrumented) state — and therefore the energy,
cycle and RAM contributions — of ``b`` itself and of its CFG predecessors
(Equation 5 couples a block only to its successors).  The design-space
solvers lean on this to evaluate candidates without re-summing every block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.placement.parameters import BlockParameters


@dataclass
class PlacementEstimate:
    """Model predictions for one candidate placement."""

    energy_j: float
    cycles: float
    time_ratio: float
    ram_bytes: int
    instrumented: Set[str]

    @property
    def average_power_w(self) -> float:
        return self.energy_j / self.cycles if self.cycles else 0.0


class PlacementCostModel:
    """Evaluates Equations 1-9 for arbitrary placements."""

    def __init__(self, parameters: Dict[str, BlockParameters],
                 e_flash: float, e_ram: float):
        if e_flash <= 0 or e_ram <= 0:
            raise ValueError("energy coefficients must be positive")
        self.parameters = parameters
        self.e_flash = e_flash
        self.e_ram = e_ram
        self._successors: Optional[Dict[str, List[str]]] = None
        self._predecessors: Optional[Dict[str, List[str]]] = None

    # ------------------------------------------------------------------ #
    # CFG neighbourhoods (for incremental evaluation)
    # ------------------------------------------------------------------ #
    def successors_of(self) -> Dict[str, List[str]]:
        """Deduplicated successor lists, self-loops removed.

        A self-successor can never flip a block's instrumented status (its
        membership always equals its own), so dropping self-loops keeps the
        incremental update rule exact.
        """
        if self._successors is None:
            self._successors = {
                key: [s for s in dict.fromkeys(params.successors)
                      if s != key and s in self.parameters]
                for key, params in self.parameters.items()
            }
        return self._successors

    def predecessors_of(self) -> Dict[str, List[str]]:
        """Inverse of :meth:`successors_of`, in parameter order."""
        if self._predecessors is None:
            preds: Dict[str, List[str]] = {key: [] for key in self.parameters}
            for key, succs in self.successors_of().items():
                for succ in succs:
                    preds[succ].append(key)
            self._predecessors = preds
        return self._predecessors

    # ------------------------------------------------------------------ #
    # Equation 5: the instrumented set I
    # ------------------------------------------------------------------ #
    def instrumented_set(self, ram_set: Set[str]) -> Set[str]:
        instrumented: Set[str] = set()
        for key, params in self.parameters.items():
            in_ram = key in ram_set
            for succ in params.successors:
                succ_in_ram = succ in ram_set
                if succ_in_ram != in_ram:
                    instrumented.add(key)
                    break
        return instrumented

    # ------------------------------------------------------------------ #
    # Equations 2-6: per-block energy
    # ------------------------------------------------------------------ #
    def memory_energy(self, in_ram: bool) -> float:
        """Equation 3: the per-cycle energy coefficient M(b)."""
        return self.e_ram if in_ram else self.e_flash

    def block_cycles(self, params: BlockParameters, in_ram: bool,
                     instrumented: bool) -> float:
        """``C_b + O_c(b) + O_r(b)`` for one execution of the block.

        Under the pipelined timing model a block left in flash additionally
        pays its estimated fetch-stall cycles (``flash_stall_cycles``) —
        cycles a RAM placement removes.  The field is 0.0 under the flat
        model, leaving the flat arithmetic bit-for-bit unchanged.
        """
        cycles = float(params.cycles)
        if instrumented:
            cycles += params.instrument_cycles
        if in_ram:
            cycles += params.ram_stall_cycles
        elif params.flash_stall_cycles:
            cycles += params.flash_stall_cycles
        return cycles

    def block_energy(self, params: BlockParameters, in_ram: bool,
                     instrumented: bool) -> float:
        """Equation 2: ``E(b) = (C_b + O_c + O_r) * M(b) * F_b``."""
        cycles = self.block_cycles(params, in_ram, instrumented)
        return cycles * self.memory_energy(in_ram) * params.frequency

    # ------------------------------------------------------------------ #
    # Program-level sums
    # ------------------------------------------------------------------ #
    def baseline_cycles(self) -> float:
        """Weighted cycles with everything in flash (denominator of Eq. 9).

        Includes the pipelined model's flash fetch stalls (zero under the
        flat model) — the baseline runs entirely from flash and pays them.
        """
        return sum(
            ((p.cycles + p.flash_stall_cycles) if p.flash_stall_cycles
             else p.cycles) * p.frequency
            for p in self.parameters.values())

    def baseline_energy(self) -> float:
        """Equation 1 evaluated at R = {} (the all-in-flash base case)."""
        return sum(self.block_energy(p, False, False)
                   for p in self.parameters.values())

    def total_energy(self, ram_set: Set[str],
                     instrumented: Optional[Set[str]] = None) -> float:
        instrumented = (self.instrumented_set(ram_set)
                        if instrumented is None else instrumented)
        return sum(
            self.block_energy(p, key in ram_set, key in instrumented)
            for key, p in self.parameters.items())

    def total_cycles(self, ram_set: Set[str],
                     instrumented: Optional[Set[str]] = None) -> float:
        instrumented = (self.instrumented_set(ram_set)
                        if instrumented is None else instrumented)
        return sum(
            self.block_cycles(p, key in ram_set, key in instrumented) * p.frequency
            for key, p in self.parameters.items())

    def ram_usage(self, ram_set: Set[str],
                  instrumented: Optional[Set[str]] = None) -> int:
        """Equation 7's left-hand side: bytes of RAM consumed by the placement."""
        instrumented = (self.instrumented_set(ram_set)
                        if instrumented is None else instrumented)
        total = 0
        for key in ram_set:
            params = self.parameters[key]
            total += params.size
            if key in instrumented:
                total += params.instrument_bytes
        return total

    def evaluate(self, ram_set: Iterable[str]) -> PlacementEstimate:
        """Full model evaluation of one candidate placement."""
        ram = set(ram_set)
        instrumented = self.instrumented_set(ram)
        energy = self.total_energy(ram, instrumented)
        cycles = self.total_cycles(ram, instrumented)
        baseline = self.baseline_cycles()
        ratio = cycles / baseline if baseline else 1.0
        return PlacementEstimate(
            energy_j=energy,
            cycles=cycles,
            time_ratio=ratio,
            ram_bytes=self.ram_usage(ram, instrumented),
            instrumented=instrumented,
        )

    # ------------------------------------------------------------------ #
    def eligible_keys(self):
        """Blocks the solver may consider moving (non-library)."""
        return [key for key, params in self.parameters.items() if params.eligible]

    def is_feasible(self, ram_set: Set[str], r_spare: int, x_limit: float) -> bool:
        """Check Equations 7 and 9 for a candidate placement."""
        estimate = self.evaluate(ram_set)
        return estimate.ram_bytes <= r_spare and estimate.time_ratio <= x_limit + 1e-9


class IncrementalPlacement:
    """One placement maintained under single-block add/remove updates.

    Toggling the membership of block ``b`` changes the per-block
    (in-RAM, instrumented) state only for ``b`` and its CFG predecessors,
    so every update re-derives just that neighbourhood and adjusts the
    running energy / weighted-cycle / RAM totals by the difference.  For a
    model with ``n`` blocks this turns the O(n) full :meth:`~PlacementCostModel.evaluate`
    of one candidate into O(deg(b)) — the win that makes greedy selection and
    exhaustive enumeration linear instead of quadratic in ``n``.

    Totals are kept as running floats; they can drift from a fresh
    :meth:`~PlacementCostModel.evaluate` by a few ulps after many updates,
    which is far below every feasibility tolerance used by the solvers.
    Decisions that must be exact (RAM bytes) are integer arithmetic and do
    not drift.
    """

    def __init__(self, model: PlacementCostModel,
                 ram_set: Optional[Iterable[str]] = None):
        self.model = model
        self._succs = model.successors_of()
        self._preds = model.predecessors_of()
        self.ram: Set[str] = set(ram_set or ())
        self.instrumented: Set[str] = model.instrumented_set(self.ram)
        self.baseline_cycles = model.baseline_cycles()
        self.energy_j = 0.0
        self.cycles = 0.0
        self.ram_bytes = 0
        for key in model.parameters:
            energy, cycles, ram = self._contribution(
                key, key in self.ram, key in self.instrumented)
            self.energy_j += energy
            self.cycles += cycles
            self.ram_bytes += ram

    # ------------------------------------------------------------------ #
    def _contribution(self, key: str, in_ram: bool,
                      instrumented: bool) -> Tuple[float, float, int]:
        """(energy, weighted cycles, RAM bytes) of one block in one state."""
        params = self.model.parameters[key]
        energy = self.model.block_energy(params, in_ram, instrumented)
        cycles = self.model.block_cycles(params, in_ram, instrumented) * params.frequency
        ram = 0
        if in_ram:
            ram = params.size + (params.instrument_bytes if instrumented else 0)
        return energy, cycles, ram

    def _delta(self, key: str) -> Tuple[float, float, int, Dict[str, Tuple[bool, bool]]]:
        """Totals delta and per-block state changes from toggling *key*."""
        new_member = key not in self.ram
        d_energy = 0.0
        d_cycles = 0.0
        d_ram = 0
        changes: Dict[str, Tuple[bool, bool]] = {}
        for block in [key] + self._preds[key]:
            old_in = block in self.ram
            old_instr = block in self.instrumented
            new_in = new_member if block == key else old_in
            new_instr = False
            for succ in self._succs[block]:
                succ_in = new_member if succ == key else succ in self.ram
                if succ_in != new_in:
                    new_instr = True
                    break
            if new_in == old_in and new_instr == old_instr:
                continue
            old = self._contribution(block, old_in, old_instr)
            new = self._contribution(block, new_in, new_instr)
            d_energy += new[0] - old[0]
            d_cycles += new[1] - old[1]
            d_ram += new[2] - old[2]
            changes[block] = (new_in, new_instr)
        return d_energy, d_cycles, d_ram, changes

    # ------------------------------------------------------------------ #
    def preview_totals(self, key: str) -> Tuple[float, float, int]:
        """(energy, time ratio, RAM bytes) after toggling *key*.

        The cheap preview used in tight solver loops: no instrumented-set
        copy, just the totals the feasibility and acceptance checks need.
        """
        d_energy, d_cycles, d_ram, _ = self._delta(key)
        cycles = self.cycles + d_cycles
        ratio = cycles / self.baseline_cycles if self.baseline_cycles else 1.0
        return self.energy_j + d_energy, ratio, self.ram_bytes + d_ram

    def preview_toggle(self, key: str) -> "PlacementEstimate":
        """The estimate the placement would have after toggling *key*."""
        d_energy, d_cycles, d_ram, changes = self._delta(key)
        instrumented = self.instrumented.copy()
        for block, (_, instr) in changes.items():
            (instrumented.add if instr else instrumented.discard)(block)
        cycles = self.cycles + d_cycles
        ratio = cycles / self.baseline_cycles if self.baseline_cycles else 1.0
        return PlacementEstimate(
            energy_j=self.energy_j + d_energy,
            cycles=cycles,
            time_ratio=ratio,
            ram_bytes=self.ram_bytes + d_ram,
            instrumented=instrumented,
        )

    def toggle(self, key: str) -> None:
        """Flip *key*'s membership and update all totals in place."""
        d_energy, d_cycles, d_ram, changes = self._delta(key)
        (self.ram.discard if key in self.ram else self.ram.add)(key)
        for block, (_, instr) in changes.items():
            (self.instrumented.add if instr else self.instrumented.discard)(block)
        self.energy_j += d_energy
        self.cycles += d_cycles
        self.ram_bytes += d_ram

    def add(self, key: str) -> None:
        if key not in self.ram:
            self.toggle(key)

    def remove(self, key: str) -> None:
        if key in self.ram:
            self.toggle(key)

    def estimate(self) -> PlacementEstimate:
        """The current placement's estimate from the running totals."""
        ratio = (self.cycles / self.baseline_cycles
                 if self.baseline_cycles else 1.0)
        return PlacementEstimate(
            energy_j=self.energy_j,
            cycles=self.cycles,
            time_ratio=ratio,
            ram_bytes=self.ram_bytes,
            instrumented=set(self.instrumented),
        )
