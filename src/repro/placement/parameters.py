"""Extraction of the per-block model parameters of Section 4.1.

For every basic block ``b`` of the compiled program we compute

========  ====================================================================
``S_b``   size in bytes
``C_b``   estimated execution cycles
``F_b``   execution frequency (static loop-depth estimate or profiled counts)
``K_b``   extra bytes if the block must be instrumented (Figure 4)
``T_b``   extra cycles if the block must be instrumented (Figure 4)
``L_b``   stall cycles caused by RAM-bus contention when the block runs
          from RAM (one per data-memory access)
Succ(b)   successor blocks within the same function
========  ====================================================================

Under the pipelined timing model (:mod:`repro.sim.pipeline`) two extra terms
appear: load-use hazard cycles are memory-independent and folded straight
into ``C_b``, while the estimated flash fetch-stall cycles are recorded
separately (``flash_stall_cycles``) because a RAM placement *removes* them —
the mirror image of ``L_b``.  With ``timing=None`` (the flat default) both
terms are zero and extraction is bit-for-bit unchanged.

Library blocks (soft-float runtime) are extracted too — their energy counts in
the total — but are marked ``library`` so the solver never moves them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.sim.pipeline import TimingSpec

from repro.analysis.cfg import CFGView
from repro.analysis.frequency import DEFAULT_LOOP_WEIGHT, estimate_block_frequencies
from repro.analysis.wu_larus import wu_larus_frequencies
from repro.isa.instructions import Opcode
from repro.isa.timing import RAM_CONTENTION_STALL
from repro.machine.blocks import MachineFunction, TerminatorKind
from repro.machine.program import MachineProgram
from repro.sim.profiler import BlockProfile
from repro.transform.instrumentation import instrumentation_overhead

#: The supported ``F_b`` estimation modes, in the order they appear in
#: sweep axes and CLI choices.
FREQUENCY_MODES = ("static", "profile", "wu_larus")


@dataclass
class BlockParameters:
    """The cost-model parameters of one basic block."""

    key: str
    function: str
    name: str
    size: int
    cycles: int
    frequency: float
    instrument_bytes: int
    instrument_cycles: int
    ram_stall_cycles: int
    successors: List[str] = field(default_factory=list)
    library: bool = False
    terminator: TerminatorKind = TerminatorKind.FALLTHROUGH
    #: Estimated extra fetch cycles per execution while the block stays in
    #: flash (pipelined timing model only; 0.0 under the flat model).
    flash_stall_cycles: float = 0.0

    @property
    def eligible(self) -> bool:
        """Whether the block may be moved to RAM at all."""
        return not self.library


def _cfg_of_machine_function(function: MachineFunction) -> CFGView:
    successors = {block.name: block.successors() for block in function.iter_blocks()}
    return CFGView(entry=function.block_order[0], successors=successors)


def _call_site_weights(function: MachineFunction,
                       block_frequencies: Dict[str, float]) -> Dict[str, float]:
    """How often *function* calls each callee, per invocation of *function*."""
    weights: Dict[str, float] = {}
    for block in function.iter_blocks():
        freq = block_frequencies.get(block.name, 0.0)
        for instr in block.instructions:
            if instr.opcode is Opcode.BL and instr.operands:
                callee = getattr(instr.operands[0], "name", None)
                if callee is not None:
                    weights[callee] = weights.get(callee, 0.0) + freq
    return weights


def _static_function_frequencies(program: MachineProgram,
                                 per_function_block_freq: Dict[str, Dict[str, float]],
                                 entry: str) -> Dict[str, float]:
    """Estimate how many times each function is invoked, starting from *entry*.

    The call graph is traversed breadth-first from the entry; recursive cycles
    are simply not propagated further (a bounded, conservative treatment).
    """
    frequencies: Dict[str, float] = {name: 0.0 for name in program.functions}
    if entry not in program.functions:
        return frequencies
    frequencies[entry] = 1.0
    worklist = [entry]
    visited_edges = set()
    while worklist:
        caller = worklist.pop(0)
        function = program.functions[caller]
        weights = _call_site_weights(function, per_function_block_freq[caller])
        for callee, weight in weights.items():
            if callee not in frequencies or (caller, callee) in visited_edges:
                continue
            visited_edges.add((caller, callee))
            frequencies[callee] += frequencies[caller] * weight
            worklist.append(callee)
    return frequencies


def extract_parameters(program: MachineProgram,
                       frequency_mode: str = "static",
                       profile: Optional[BlockProfile] = None,
                       loop_weight: int = DEFAULT_LOOP_WEIGHT,
                       entry: Optional[str] = None,
                       timing: Optional["TimingSpec"] = None) -> Dict[str, BlockParameters]:
    """Extract :class:`BlockParameters` for every block of *program*.

    ``frequency_mode`` selects the ``F_b`` variant: ``"static"`` (the paper's
    loop-depth estimate ``weight**depth``, the default), ``"wu_larus"``
    (heuristic branch probabilities with proper loop-nest propagation, see
    :mod:`repro.analysis.wu_larus`) or ``"profile"`` (exact counts from a
    prior simulation, requires *profile*).

    ``timing`` (a :class:`~repro.sim.pipeline.TimingSpec`, or ``None`` for
    the flat model) adds the pipelined model's static hazard and flash-stall
    estimates to the extracted parameters; see the module docstring.
    """
    if frequency_mode not in FREQUENCY_MODES:
        raise ValueError(f"unknown frequency mode {frequency_mode!r}")
    if frequency_mode == "profile" and profile is None:
        raise ValueError("profile frequency mode requires a BlockProfile")

    entry = entry or program.entry

    per_function_block_freq: Dict[str, Dict[str, float]] = {}
    for function in program.iter_functions():
        cfg = _cfg_of_machine_function(function)
        if frequency_mode == "wu_larus":
            per_function_block_freq[function.name] = wu_larus_frequencies(cfg)
        else:
            per_function_block_freq[function.name] = {
                name: float(value)
                for name, value in estimate_block_frequencies(cfg, loop_weight).items()
            }

    function_frequencies = _static_function_frequencies(
        program, per_function_block_freq, entry)

    parameters: Dict[str, BlockParameters] = {}
    for function in program.iter_functions():
        for block in function.iter_blocks():
            key = program.block_key(block)
            if frequency_mode == "profile":
                frequency = float(profile.count(key))
            else:
                frequency = (per_function_block_freq[function.name][block.name]
                             * function_frequencies[function.name])
            kind = block.terminator_kind()
            overhead = instrumentation_overhead(kind)
            cycles = block.cycle_estimate()
            flash_stall = 0.0
            if timing is not None and not timing.is_flat:
                hazard, flash_stall = timing.static_block_costs(block)
                cycles += hazard
            parameters[key] = BlockParameters(
                key=key,
                function=function.name,
                name=block.name,
                size=block.size_bytes(),
                cycles=cycles,
                frequency=frequency,
                instrument_bytes=overhead.extra_bytes,
                instrument_cycles=overhead.extra_cycles,
                ram_stall_cycles=block.load_store_count() * RAM_CONTENTION_STALL,
                flash_stall_cycles=flash_stall,
                successors=[f"{function.name}:{s}" for s in block.successors()],
                library=function.is_library,
                terminator=kind,
            )
    return parameters
