"""Flash-RAM basic-block placement: the paper's primary contribution.

Pipeline: extract per-block parameters from the compiled program
(:mod:`parameters`), build the energy cost model of Section 4
(:mod:`cost_model`), formulate the linearized ILP (:mod:`ilp`), solve it with
the built-in branch-and-bound solver (or the greedy / exhaustive baselines in
:mod:`solvers`), and hand the chosen block set to
:func:`repro.transform.apply_placement`.

The public entry point is :class:`FlashRAMOptimizer` /
:func:`optimize_program`.
"""

from repro.placement.parameters import BlockParameters, extract_parameters
from repro.placement.cost_model import (
    IncrementalPlacement,
    PlacementCostModel,
    PlacementEstimate,
)
from repro.placement.ilp import ILPProblem, build_placement_ilp
from repro.placement.optimizer import (
    FlashRAMOptimizer,
    PlacementConfig,
    PlacementSolution,
    optimize_program,
)

__all__ = [
    "BlockParameters",
    "extract_parameters",
    "IncrementalPlacement",
    "PlacementCostModel",
    "PlacementEstimate",
    "ILPProblem",
    "build_placement_ilp",
    "FlashRAMOptimizer",
    "PlacementConfig",
    "PlacementSolution",
    "optimize_program",
]
