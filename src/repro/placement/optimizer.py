"""Public API of the flash-RAM placement optimization.

Typical use::

    program = compile_source(source, CompileOptions.for_level("O2"))
    optimizer = FlashRAMOptimizer(program)
    solution = optimizer.optimize()          # selects blocks and rewrites code
    result = Simulator(program).run()        # program now uses RAM for code

The optimizer derives ``R_spare`` from the memory map and a static stack-usage
analysis when it is not given explicitly (Section 4.1), supports the static
and profiled frequency modes of the evaluation, and exposes the greedy and
exhaustive solvers for the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.analysis.stack_usage import estimate_stack_usage, spare_ram_for_code
from repro.machine.program import MachineProgram
from repro.placement.cost_model import PlacementCostModel, PlacementEstimate
from repro.placement.ilp import build_placement_ilp, solution_to_ram_set
from repro.placement.parameters import BlockParameters, extract_parameters
from repro.placement.solvers.branch_and_bound import solve_ilp
from repro.placement.solvers.exhaustive import exhaustive_best_placement
from repro.placement.solvers.greedy import greedy_placement
from repro.sim.energy import EnergyModel
from repro.sim.pipeline import TimingSpec
from repro.sim.profiler import BlockProfile
from repro.telemetry import get_telemetry
from repro.transform.relocation import apply_placement


@dataclass
class PlacementConfig:
    """Developer-facing knobs (Section 4.1's X_limit and R_spare) and options.

    ``timing_model`` selects the cycle-accounting scheme the cost model (and
    the simulator the results are validated against) assumes — ``"flat"``
    (the paper's wait-state model, default) or the pipelined variants of
    :mod:`repro.sim.pipeline` (``"pipelined"``, ``"pipelined+icache[:LxB]"``).
    """

    x_limit: float = 1.5
    r_spare: Optional[int] = None
    frequency_mode: str = "static"
    loop_weight: int = 10
    solver: str = "ilp"          # "ilp" | "greedy" | "exhaustive"
    max_nodes: int = 400
    warm_start: bool = True      # dual-simplex warm starts in the ILP solver
    stack_reserve: int = 1024
    safety_margin: int = 64
    timing_model: str = "flat"


@dataclass
class PlacementSolution:
    """Chosen placement plus the model's predictions for it."""

    ram_blocks: Set[str] = field(default_factory=set)
    estimate: Optional[PlacementEstimate] = None
    baseline_energy_j: float = 0.0
    baseline_cycles: float = 0.0
    r_spare: int = 0
    x_limit: float = 1.0
    solver: str = "ilp"
    solver_status: str = ""
    #: ILP solver counters (nodes, LP pivots, warm/cold solves); empty for
    #: the greedy and exhaustive solvers.
    solver_stats: Dict[str, int] = field(default_factory=dict)
    instrumented: List[str] = field(default_factory=list)

    @property
    def predicted_energy_reduction(self) -> float:
        """Fraction of energy saved according to the model (0.1 == 10 %)."""
        if not self.baseline_energy_j or self.estimate is None:
            return 0.0
        return 1.0 - self.estimate.energy_j / self.baseline_energy_j

    @property
    def predicted_time_increase(self) -> float:
        if self.estimate is None:
            return 0.0
        return self.estimate.time_ratio - 1.0


class FlashRAMOptimizer:
    """Selects basic blocks to move to RAM and applies the transformation."""

    def __init__(self, program: MachineProgram,
                 energy_model: Optional[EnergyModel] = None,
                 config: Optional[PlacementConfig] = None):
        self.program = program
        self.energy_model = energy_model or EnergyModel()
        self.config = config or PlacementConfig()
        self._parameters: Optional[Dict[str, BlockParameters]] = None
        self._cost_model: Optional[PlacementCostModel] = None

    # ------------------------------------------------------------------ #
    # Model construction
    # ------------------------------------------------------------------ #
    def build_cost_model(self, profile: Optional[BlockProfile] = None) -> PlacementCostModel:
        """Extract block parameters and build the Section 4.3 cost model.

        Under a pipelined ``timing_model`` the extracted parameters carry
        static hazard/flash-stall estimates and, with an icache, the
        ``E_flash`` coefficient blends toward ``E_ram`` at the assumed hit
        rate (:meth:`~repro.sim.pipeline.TimingSpec.effective_e_flash`).
        With the flat default both are pass-throughs.
        """
        timing = TimingSpec.parse(self.config.timing_model)
        parameters = extract_parameters(
            self.program,
            frequency_mode=self.config.frequency_mode,
            profile=profile,
            loop_weight=self.config.loop_weight,
            timing=None if timing.is_flat else timing,
        )
        self._parameters = parameters
        self._cost_model = PlacementCostModel(
            parameters, timing.effective_e_flash(self.energy_model),
            self.energy_model.e_ram)
        return self._cost_model

    @property
    def cost_model(self) -> PlacementCostModel:
        if self._cost_model is None:
            self.build_cost_model()
        return self._cost_model

    @property
    def parameters(self) -> Dict[str, BlockParameters]:
        """The per-block Section 4.1 parameters the last model was built on."""
        if self._parameters is None:
            self.build_cost_model()
        return self._parameters

    def derive_r_spare(self) -> int:
        """Derive the spare RAM available for code (Section 4.1, R_spare).

        Every term is in **bytes**: per-function frames (frame bytes plus one
        4-byte word per saved register and for the link register), the
        worst-case call-chain depth from the static stack analysis, the
        configured ``stack_reserve`` head-room, and the safety margin.
        """
        if self.config.r_spare is not None:
            return self.config.r_spare
        frame_sizes = {}
        call_edges = {}
        for function in self.program.iter_functions():
            frame_sizes[function.name] = (function.frame_size
                                          + 4 * (len(function.saved_registers)
                                                 + (1 if function.makes_calls else 0)))
            call_edges[function.name] = set(function.callee_names())
        stack = estimate_stack_usage(frame_sizes, call_edges, self.program.entry)
        return spare_ram_for_code(
            self.program.ram.size,
            self.program.mutable_data_size(),
            max(stack.worst_case, 0) + self.config.stack_reserve,
            safety_margin=self.config.safety_margin,
        )

    # ------------------------------------------------------------------ #
    # Selection
    # ------------------------------------------------------------------ #
    def select_blocks(self, profile: Optional[BlockProfile] = None) -> PlacementSolution:
        """Run the solver and return the chosen placement (without applying it)."""
        model = self.build_cost_model(profile)
        r_spare = self.derive_r_spare()
        x_limit = self.config.x_limit

        solution = PlacementSolution(
            baseline_energy_j=model.baseline_energy(),
            baseline_cycles=model.baseline_cycles(),
            r_spare=r_spare,
            x_limit=x_limit,
            solver=self.config.solver,
        )

        if self.config.solver == "greedy":
            ram = greedy_placement(model, r_spare, x_limit)
            solution.solver_status = "heuristic"
        elif self.config.solver == "exhaustive":
            ram = exhaustive_best_placement(model, r_spare, x_limit)
            solution.solver_status = "exhaustive"
        elif self.config.solver == "ilp":
            problem = build_placement_ilp(model, r_spare, x_limit)
            result = solve_ilp(problem, max_nodes=self.config.max_nodes,
                               warm_start=self.config.warm_start)
            solution.solver_stats = {
                "nodes_explored": result.nodes_explored,
                "lp_pivots": result.lp_pivots,
                "warm_solves": result.warm_solves,
                "cold_solves": result.cold_solves,
                "unresolved_nodes": result.unresolved_nodes,
            }
            hub = get_telemetry()
            if hub.enabled:
                for stat_name, stat_value in solution.solver_stats.items():
                    hub.add(f"solver.{stat_name}", stat_value)
            if result.values is None:
                # The empty placement is always feasible, so falling back to
                # it must not masquerade as the solver's own verdict: tag the
                # status so sweep records distinguish "the solver gave up"
                # (or proved the *constrained* problem empty) from a placement
                # it actually chose.
                ram = set()
                solution.solver_status = f"fallback-empty:{result.status}"
            else:
                ram = set(solution_to_ram_set(problem, result.values))
                solution.solver_status = result.status
        else:
            raise ValueError(f"unknown solver {self.config.solver!r}")

        # Never accept a placement the model considers worse than baseline or
        # infeasible (can happen with the heuristic under tight constraints).
        if ram and not model.is_feasible(ram, r_spare, x_limit):
            ram = set()
        estimate = model.evaluate(ram)
        if estimate.energy_j > solution.baseline_energy_j:
            ram = set()
            estimate = model.evaluate(ram)
        solution.ram_blocks = ram
        solution.estimate = estimate
        return solution

    # ------------------------------------------------------------------ #
    # Application
    # ------------------------------------------------------------------ #
    def apply(self, solution: PlacementSolution) -> PlacementSolution:
        """Rewrite the program according to *solution* (Section 5)."""
        solution.instrumented = apply_placement(
            self.program, solution.ram_blocks,
            stack_reserve=self.config.stack_reserve)
        return solution

    def optimize(self, profile: Optional[BlockProfile] = None) -> PlacementSolution:
        """Select a placement and apply it to the program."""
        solution = self.select_blocks(profile)
        return self.apply(solution)


def optimize_program(program: MachineProgram,
                     energy_model: Optional[EnergyModel] = None,
                     **config_kwargs) -> PlacementSolution:
    """One-call convenience wrapper: optimize *program* in place."""
    config = PlacementConfig(**config_kwargs)
    optimizer = FlashRAMOptimizer(program, energy_model=energy_model, config=config)
    return optimizer.optimize()
