"""Linearised ILP formulation of the placement problem (Section 4.3).

Decision variables per eligible (non-library) block ``b``:

* ``r_b`` — 1 if the block is placed in RAM,
* ``i_b`` — 1 if the block must be instrumented,
* ``z_b`` — the linearisation of the product ``i_b * r_b`` (McCormick).

Objective (minimisation, constant term dropped from the matrix but recorded)::

    sum_b F_b [ C_b*Ef + C_b*(Er-Ef)*r_b + T_b*Ef*i_b + T_b*(Er-Ef)*z_b
                + L_b*Er*r_b ]

Constraints::

    i_b >= r_b - r_s,  i_b >= r_s - r_b      for every successor s   (Eq. 5)
    z_b >= i_b + r_b - 1,  z_b <= i_b,  z_b <= r_b
    sum_b S_b*r_b + K_b*z_b <= R_spare                               (Eq. 7)
    sum_b F_b*(T_b*i_b + L_b*r_b) <= (X_limit - 1) * sum_b F_b*C_b   (Eq. 9)
    0 <= r_b <= 1 integral; i_b, z_b in [0, 1]

Because ``i`` and ``z`` are forced to integral values once every ``r`` is
integral, the branch-and-bound solver only branches on the ``r`` variables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.placement.cost_model import PlacementCostModel


@dataclass
class ILPProblem:
    """A minimisation ILP in the form ``min c.x  s.t.  A x <= b, x >= 0``."""

    objective: np.ndarray
    constant: float
    a_ub: np.ndarray
    b_ub: np.ndarray
    var_names: List[str]
    branch_vars: List[int]
    r_index: Dict[str, int] = field(default_factory=dict)

    @property
    def num_vars(self) -> int:
        return len(self.var_names)


def build_placement_ilp(model: PlacementCostModel, r_spare: float,
                        x_limit: float) -> ILPProblem:
    """Build the linearised placement ILP from a cost model and the two knobs."""
    if x_limit < 1.0:
        raise ValueError("X_limit must be >= 1.0 (it is a slowdown bound)")
    if r_spare < 0:
        raise ValueError("R_spare must be non-negative")

    eligible = model.eligible_keys()
    index_of: Dict[str, int] = {}
    var_names: List[str] = []
    for key in eligible:
        index_of[key] = len(var_names)
        var_names.extend([f"r[{key}]", f"i[{key}]", f"z[{key}]"])

    num_vars = len(var_names)
    delta = model.e_ram - model.e_flash  # negative: RAM is cheaper

    objective = np.zeros(num_vars)
    constant = 0.0
    for key, params in model.parameters.items():
        constant += params.frequency * params.cycles * model.e_flash
        if key not in index_of:
            continue
        base = index_of[key]
        objective[base + 0] += params.frequency * (
            params.cycles * delta + params.ram_stall_cycles * model.e_ram)
        objective[base + 1] += params.frequency * params.instrument_cycles * model.e_flash
        objective[base + 2] += params.frequency * params.instrument_cycles * delta

    rows: List[np.ndarray] = []
    rhs: List[float] = []

    def add_row(coefficients: Dict[int, float], bound: float) -> None:
        row = np.zeros(num_vars)
        for column, value in coefficients.items():
            row[column] += value
        rows.append(row)
        rhs.append(bound)

    # Equation 5: instrumentation coupling with every successor.
    for key in eligible:
        base = index_of[key]
        params = model.parameters[key]
        for succ in params.successors:
            if succ == key:
                continue
            succ_base = index_of.get(succ)
            if succ_base is None:
                # Successor cannot move (library): i_b >= r_b.
                add_row({base + 0: 1.0, base + 1: -1.0}, 0.0)
                continue
            add_row({base + 0: 1.0, succ_base + 0: -1.0, base + 1: -1.0}, 0.0)
            add_row({succ_base + 0: 1.0, base + 0: -1.0, base + 1: -1.0}, 0.0)

    # McCormick envelope for z = i * r.
    for key in eligible:
        base = index_of[key]
        add_row({base + 1: 1.0, base + 0: 1.0, base + 2: -1.0}, 1.0)
        add_row({base + 2: 1.0, base + 1: -1.0}, 0.0)
        add_row({base + 2: 1.0, base + 0: -1.0}, 0.0)

    # Equation 7: RAM budget.
    ram_row: Dict[int, float] = {}
    for key in eligible:
        base = index_of[key]
        params = model.parameters[key]
        ram_row[base + 0] = float(params.size)
        ram_row[base + 2] = float(params.instrument_bytes)
    add_row(ram_row, float(r_spare))

    # Equation 9: execution-time bound.
    time_row: Dict[int, float] = {}
    for key in eligible:
        base = index_of[key]
        params = model.parameters[key]
        time_row[base + 1] = params.frequency * params.instrument_cycles
        time_row[base + 0] = params.frequency * params.ram_stall_cycles
    add_row(time_row, (x_limit - 1.0) * model.baseline_cycles())

    # Upper bounds for the r variables (i and z are bounded via the rows above
    # and their objective signs).
    for key in eligible:
        add_row({index_of[key] + 0: 1.0}, 1.0)
        add_row({index_of[key] + 1: 1.0}, 1.0)

    problem = ILPProblem(
        objective=objective,
        constant=constant,
        a_ub=np.vstack(rows) if rows else np.zeros((0, num_vars)),
        b_ub=np.array(rhs),
        var_names=var_names,
        branch_vars=[index_of[key] for key in eligible],
        r_index={key: index_of[key] for key in eligible},
    )
    return problem


def solution_to_ram_set(problem: ILPProblem, values: np.ndarray,
                        threshold: float = 0.5) -> List[str]:
    """Convert an assignment vector into the list of block keys placed in RAM."""
    return [key for key, index in problem.r_index.items()
            if values[index] > threshold]
