"""Linearised ILP formulation of the placement problem (Section 4.3).

Decision variables per eligible (non-library) block ``b``:

* ``r_b`` — 1 if the block is placed in RAM,
* ``i_b`` — 1 if the block must be instrumented,
* ``z_b`` — the linearisation of the product ``i_b * r_b`` (McCormick).

Objective (minimisation, constant term dropped from the matrix but recorded)::

    sum_b F_b [ C_b*Ef + C_b*(Er-Ef)*r_b + T_b*Ef*i_b + T_b*(Er-Ef)*z_b
                + L_b*Er*r_b ]

Constraints::

    i_b >= r_b - r_s,  i_b >= r_s - r_b      for every successor s   (Eq. 5)
    z_b >= i_b + r_b - 1,  z_b <= i_b,  z_b <= r_b
    sum_b S_b*r_b + K_b*z_b <= R_spare                               (Eq. 7)
    sum_b F_b*(T_b*i_b + L_b*r_b) <= (X_limit - 1) * sum_b F_b*C_b   (Eq. 9)
    0 <= r_b, i_b, z_b <= 1;  r_b integral

The ``[0, 1]`` boxes live in the problem's ``lower``/``upper`` vectors, not
in the constraint matrix: the bounded-variable simplex engine handles them
natively, which keeps the matrix smaller and — crucially for the
branch-and-bound warm start — lets branching tighten a bound without
changing the matrix at all.  Engines without native bounds (the dense
two-phase oracle) materialise them via :meth:`ILPProblem.dense_rows`.

Because ``i`` and ``z`` are forced to integral values once every ``r`` is
integral, the branch-and-bound solver only branches on the ``r`` variables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.placement.cost_model import PlacementCostModel


@dataclass
class ILPProblem:
    """A minimisation ILP: ``min c.x  s.t.  A x <= b, lower <= x <= upper``.

    ``lower``/``upper`` default to ``0``/``+inf`` when left ``None`` (the
    historical row-only form).
    """

    objective: np.ndarray
    constant: float
    a_ub: np.ndarray
    b_ub: np.ndarray
    var_names: List[str]
    branch_vars: List[int]
    r_index: Dict[str, int] = field(default_factory=dict)
    lower: Optional[np.ndarray] = None
    upper: Optional[np.ndarray] = None

    @property
    def num_vars(self) -> int:
        return len(self.var_names)

    def bounds(self) -> Tuple[np.ndarray, np.ndarray]:
        """The ``(lower, upper)`` box, materialising the defaults."""
        lower = (np.zeros(self.num_vars) if self.lower is None
                 else np.asarray(self.lower, dtype=float))
        upper = (np.full(self.num_vars, np.inf) if self.upper is None
                 else np.asarray(self.upper, dtype=float))
        return lower, upper

    def dense_rows(self) -> Tuple[np.ndarray, np.ndarray]:
        """The constraint system with bounds materialised as ``<=`` rows.

        For engines that only understand ``A x <= b, x >= 0`` (the dense
        two-phase oracle): every finite upper bound becomes an ``x_j <= u_j``
        row and every strictly positive lower bound a ``-x_j <= -l_j`` row.
        """
        lower, upper = self.bounds()
        rows = [self.a_ub] if self.a_ub.size else []
        rhs = [self.b_ub] if self.b_ub.size else []
        finite_upper = np.where(np.isfinite(upper))[0]
        if finite_upper.size:
            upper_rows = np.zeros((finite_upper.size, self.num_vars))
            upper_rows[np.arange(finite_upper.size), finite_upper] = 1.0
            rows.append(upper_rows)
            rhs.append(upper[finite_upper])
        positive_lower = np.where(lower > 0)[0]
        if positive_lower.size:
            lower_rows = np.zeros((positive_lower.size, self.num_vars))
            lower_rows[np.arange(positive_lower.size), positive_lower] = -1.0
            rows.append(lower_rows)
            rhs.append(-lower[positive_lower])
        if not rows:
            return np.zeros((0, self.num_vars)), np.zeros(0)
        return np.vstack(rows), np.concatenate(rhs)


def build_placement_ilp(model: PlacementCostModel, r_spare: float,
                        x_limit: float) -> ILPProblem:
    """Build the linearised placement ILP from a cost model and the two knobs."""
    if x_limit < 1.0:
        raise ValueError("X_limit must be >= 1.0 (it is a slowdown bound)")
    if r_spare < 0:
        raise ValueError("R_spare must be non-negative")

    eligible = model.eligible_keys()
    index_of: Dict[str, int] = {}
    var_names: List[str] = []
    for key in eligible:
        index_of[key] = len(var_names)
        var_names.extend([f"r[{key}]", f"i[{key}]", f"z[{key}]"])

    num_vars = len(var_names)
    delta = model.e_ram - model.e_flash  # negative: RAM is cheaper

    # Pipelined timing model: a block left in flash pays its estimated fetch
    # stalls f_b (flash_stall_cycles), a block moved to RAM does not.  Moving
    # block b then changes its energy by F_b*[(C_b+L_b)*E_ram - (C_b+f_b)*
    # E_flash] = F_b*[C_b*delta + L_b*E_ram - f_b*E_flash].  All stall terms
    # are zero under the flat model, keeping the flat arithmetic bit-exact.
    objective = np.zeros(num_vars)
    constant = 0.0
    for key, params in model.parameters.items():
        stall = params.flash_stall_cycles
        if stall:
            constant += params.frequency * (params.cycles + stall) * model.e_flash
        else:
            constant += params.frequency * params.cycles * model.e_flash
        if key not in index_of:
            continue
        base = index_of[key]
        if stall:
            objective[base + 0] += params.frequency * (
                params.cycles * delta + params.ram_stall_cycles * model.e_ram
                - stall * model.e_flash)
        else:
            objective[base + 0] += params.frequency * (
                params.cycles * delta + params.ram_stall_cycles * model.e_ram)
        objective[base + 1] += params.frequency * params.instrument_cycles * model.e_flash
        objective[base + 2] += params.frequency * params.instrument_cycles * delta

    rows: List[np.ndarray] = []
    rhs: List[float] = []

    def add_row(coefficients: Dict[int, float], bound: float) -> None:
        row = np.zeros(num_vars)
        for column, value in coefficients.items():
            row[column] += value
        rows.append(row)
        rhs.append(bound)

    # Equation 5: instrumentation coupling with every successor.  Duplicate
    # successor edges produce identical rows, so each distinct row is emitted
    # once: in particular all library successors of a block collapse onto the
    # single ``i_b >= r_b`` row.
    for key in eligible:
        base = index_of[key]
        params = model.parameters[key]
        library_row_emitted = False
        for succ in dict.fromkeys(params.successors):
            if succ == key:
                continue
            succ_base = index_of.get(succ)
            if succ_base is None:
                # Successor cannot move (library): i_b >= r_b.
                if not library_row_emitted:
                    add_row({base + 0: 1.0, base + 1: -1.0}, 0.0)
                    library_row_emitted = True
                continue
            add_row({base + 0: 1.0, succ_base + 0: -1.0, base + 1: -1.0}, 0.0)
            add_row({succ_base + 0: 1.0, base + 0: -1.0, base + 1: -1.0}, 0.0)

    # McCormick envelope for z = i * r.
    for key in eligible:
        base = index_of[key]
        add_row({base + 1: 1.0, base + 0: 1.0, base + 2: -1.0}, 1.0)
        add_row({base + 2: 1.0, base + 1: -1.0}, 0.0)
        add_row({base + 2: 1.0, base + 0: -1.0}, 0.0)

    # Equation 7: RAM budget.
    ram_row: Dict[int, float] = {}
    for key in eligible:
        base = index_of[key]
        params = model.parameters[key]
        ram_row[base + 0] = float(params.size)
        ram_row[base + 2] = float(params.instrument_bytes)
    add_row(ram_row, float(r_spare))

    # Equation 9: execution-time bound.  Under the pipelined model moving a
    # block to RAM removes its flash stalls, so its time coefficient is
    # F_b*(L_b - f_b) — possibly negative (a RAM placement can *speed up*
    # execution), which the LP relaxation handles without special casing.
    # The baseline on the right-hand side includes the stalls symmetrically.
    time_row: Dict[int, float] = {}
    for key in eligible:
        base = index_of[key]
        params = model.parameters[key]
        time_row[base + 1] = params.frequency * params.instrument_cycles
        if params.flash_stall_cycles:
            time_row[base + 0] = params.frequency * (
                params.ram_stall_cycles - params.flash_stall_cycles)
        else:
            time_row[base + 0] = params.frequency * params.ram_stall_cycles
    add_row(time_row, (x_limit - 1.0) * model.baseline_cycles())

    problem = ILPProblem(
        objective=objective,
        constant=constant,
        a_ub=np.vstack(rows) if rows else np.zeros((0, num_vars)),
        b_ub=np.array(rhs),
        var_names=var_names,
        branch_vars=[index_of[key] for key in eligible],
        r_index={key: index_of[key] for key in eligible},
        # The 0/1 boxes for r, i and z live here, not in the matrix.
        lower=np.zeros(num_vars),
        upper=np.ones(num_vars),
    )
    return problem


def solution_to_ram_set(problem: ILPProblem, values: np.ndarray,
                        threshold: float = 0.5) -> List[str]:
    """Convert an assignment vector into the list of block keys placed in RAM."""
    return [key for key, index in problem.r_index.items()
            if values[index] > threshold]
