"""Static worst-case stack-usage analysis.

Section 4.1 of the paper notes that the ``R_spare`` parameter (how much RAM
the placement may use for code) "can be derived statically, by considering the
size of the variables in RAM, heap and the stack usage".  This module
implements that derivation for our machine programs: the worst-case call-chain
stack depth plus the size of mutable global data is subtracted from the
physical RAM size to obtain the spare RAM available for relocated code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set


@dataclass
class StackUsageReport:
    """Result of the static stack analysis."""

    per_function: Dict[str, int] = field(default_factory=dict)
    worst_case: int = 0
    worst_chain: List[str] = field(default_factory=list)
    recursive: bool = False


def estimate_stack_usage(frame_sizes: Dict[str, int],
                         call_edges: Dict[str, Set[str]],
                         entry: str,
                         recursion_bound: int = 8) -> StackUsageReport:
    """Compute the worst-case stack usage starting from *entry*.

    ``frame_sizes`` maps function name to its frame size in bytes (including
    saved registers).  ``call_edges`` maps function name to the set of callees.
    Recursive cycles are charged ``recursion_bound`` times, which is a
    conservative but bounded treatment suitable for deriving ``R_spare``.
    """
    report = StackUsageReport(per_function=dict(frame_sizes))
    memo: Dict[str, int] = {}
    chain_memo: Dict[str, List[str]] = {}

    def depth(name: str, visiting: Set[str]) -> int:
        if name in memo:
            return memo[name]
        own = frame_sizes.get(name, 0)
        if name in visiting:
            report.recursive = True
            return own * recursion_bound
        visiting = visiting | {name}
        best = 0
        best_chain: List[str] = []
        for callee in sorted(call_edges.get(name, set())):
            if callee not in frame_sizes and callee not in call_edges:
                continue
            sub = depth(callee, visiting)
            if sub > best:
                best = sub
                best_chain = chain_memo.get(callee, [callee])
        memo[name] = own + best
        chain_memo[name] = [name] + best_chain
        return memo[name]

    report.worst_case = depth(entry, set()) if (entry in frame_sizes or
                                                entry in call_edges) else 0
    report.worst_chain = chain_memo.get(entry, [entry])
    return report


def spare_ram_for_code(ram_size: int, data_size: int, stack_usage: int,
                       safety_margin: int = 64) -> int:
    """Derive ``R_spare``: RAM left for relocated code after data and stack."""
    spare = ram_size - data_size - stack_usage - safety_margin
    return max(spare, 0)
