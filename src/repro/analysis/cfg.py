"""Generic control-flow-graph view used by the graph analyses."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set


@dataclass
class CFGView:
    """A minimal CFG description: entry block plus successor lists.

    Both the IR and the machine representation can produce one of these, so
    dominator/loop/frequency analyses are written once.
    """

    entry: str
    successors: Dict[str, List[str]] = field(default_factory=dict)

    def predecessors(self) -> Dict[str, List[str]]:
        preds: Dict[str, List[str]] = {name: [] for name in self.successors}
        for name, succs in self.successors.items():
            for succ in succs:
                if succ in preds:
                    preds[succ].append(name)
        return preds

    def blocks(self) -> List[str]:
        return list(self.successors.keys())


def cfg_of_ir_function(function) -> CFGView:
    """Build a :class:`CFGView` from an IR function."""
    successors = {block.name: list(block.successors())
                  for block in function.iter_blocks()}
    return CFGView(entry=function.block_order[0], successors=successors)


def reachable_blocks(cfg: CFGView) -> Set[str]:
    """Set of block names reachable from the entry block."""
    seen: Set[str] = set()
    stack = [cfg.entry]
    while stack:
        name = stack.pop()
        if name in seen or name not in cfg.successors:
            continue
        seen.add(name)
        stack.extend(cfg.successors[name])
    return seen


def reverse_postorder(cfg: CFGView) -> List[str]:
    """Blocks in reverse post-order (a good iteration order for dataflow)."""
    visited: Set[str] = set()
    order: List[str] = []

    def visit(name: str) -> None:
        stack = [(name, iter(cfg.successors.get(name, [])))]
        visited.add(name)
        while stack:
            current, it = stack[-1]
            advanced = False
            for succ in it:
                if succ not in visited and succ in cfg.successors:
                    visited.add(succ)
                    stack.append((succ, iter(cfg.successors.get(succ, []))))
                    advanced = True
                    break
            if not advanced:
                order.append(current)
                stack.pop()

    visit(cfg.entry)
    order.reverse()
    return order
