"""Static invariant auditor for trace-compiled superblocks.

PR 6's superblocks are ``exec``-generated straight-line functions whose
correctness is otherwise only checked *dynamically* (bitwise parity against
the interpreted oracle on the paths a benchmark happens to execute).  This
auditor statically checks every compiled :class:`SuperblockNode` against the
decode-once records of its source block — the same
:class:`~repro.sim.decode.DecodedInstr` objects superblock compilation
consumed, because ``predecode`` caches per block and generation:

* **step coverage** — the handler closures referenced by the node's steps
  are exactly the block's decoded records, in program order, each once;
  a dropped or duplicated handler would silently skip or repeat
  architectural effects;
* **side-exit guard completeness** — every control-transfer record
  (``b``/``bcc``/``cbz``/``cbnz``/``bl``/``bx``/``ldr pc``/``pop {…,pc}``)
  is compiled as a guard step with the correct conditionality, and nothing
  else is; a transfer hidden inside a batch would escape the side-exit
  check and corrupt the simulated control flow;
* **energy-key conservation** — each step's cycle counts and
  ``(cycles, fetch_region, class, data_region)`` energy keys re-derive
  exactly from the record's static metadata and the block's section,
  including the RAM-contention stall rules; a wrong key is *silent* energy
  corruption (the run completes, Figure 5 numbers are just wrong);
* **chain consistency** — ``chain_next``/``next_index`` link node *i* to
  node *i+1* (wrapping only for loop traces) and ``fall_payload`` matches
  the block's recorded fallthrough edge.

Run it over a program's live superblock state with
:func:`audit_program_superblocks` (wired into ``repro-eval analyze``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.isa.instructions import Opcode
from repro.isa.registers import PC
from repro.isa.timing import RAM_CONTENTION_STALL
from repro.machine.program import MachineProgram
from repro.sim.decode import DecodedInstr, predecode
from repro.sim.superblock import (
    _DYNAMIC_MEM_OPS,
    _PURE_OPS,
    STEP_BATCH,
    STEP_CTRL,
    STEP_MEM,
    Superblock,
    SuperblockNode,
)


@dataclass(frozen=True)
class AuditFinding:
    """One invariant violation in a compiled superblock."""

    rule: str          # step-coverage | side-exit | energy-keys | chain
    superblock: str    # entry block key of the owning superblock
    node: str          # block key of the offending node
    message: str

    def __str__(self) -> str:
        return f"[{self.rule}] {self.superblock} node {self.node}: {self.message}"


def _expected_shape(record: DecodedInstr, fetch_is_ram: bool,
                    static_data_region: str) -> Tuple[str, Optional[str], int]:
    """(step kind, data region, taken-cycles) the compiler must have used."""
    op = record.instr.opcode
    if op in _PURE_OPS:
        return "batch", None, record.cycles_taken
    if op is Opcode.LDR_LIT:
        cycles = record.cycles_taken
        if fetch_is_ram and static_data_region == "ram":
            cycles += RAM_CONTENTION_STALL
        return "batch", static_data_region, cycles
    if op is Opcode.PUSH:
        return "batch", "ram", record.cycles_taken
    if op is Opcode.POP and not any(reg.index == PC.index for reg
                                    in record.instr.operands[0].regs):
        return "batch", "ram", record.cycles_taken
    if op in _DYNAMIC_MEM_OPS:
        return "mem", None, record.cycles_taken
    if op is Opcode.LDR_PC_LIT:
        return "ctrl", static_data_region, record.cycles_taken
    if op is Opcode.POP:
        return "ctrl", "ram", record.cycles_taken
    return "ctrl", None, record.cycles_taken


def _audit_node(program: MachineProgram, sb_key: str, node: SuperblockNode,
                findings: List[AuditFinding]) -> None:
    def report(rule: str, message: str) -> None:
        findings.append(AuditFinding(rule, sb_key, node.key, message))

    function = program.functions.get(node.function_name)
    block = None if function is None else function.blocks.get(node.block_name)
    if block is None:
        report("chain", "node references a block the program does not define")
        return
    if node.key != program.block_key(block):
        report("chain", f"node key {node.key!r} does not match its payload")

    decoded = predecode(program, block)
    if not decoded.chainable:
        report("step-coverage", "source block is not chainable (predicated "
                                "or deferred-error records)")
        return
    if node.fetch_region != decoded.fetch_region:
        report("energy-keys",
               f"node fetch region {node.fetch_region!r} != block section "
               f"region {decoded.fetch_region!r}")
    static_data_region = "ram" if block.section == "ram" else "flash"

    expected_fall = (None if block.fallthrough is None
                     else (node.function_name, block.fallthrough))
    if node.fall_payload != expected_fall:
        report("chain", f"fall_payload {node.fall_payload!r} does not match "
                        f"the block's fallthrough edge {expected_fall!r}")

    # --- step coverage: the steps' handlers are the records, in order ----- #
    step_runs: List[object] = []
    for step in node.steps:
        if step[0] == STEP_BATCH:
            step_runs.extend(step[1])
        else:
            step_runs.append(step[1])
    record_runs = [record.run for record in decoded.records]
    if not all(a is b for a, b in zip(step_runs, record_runs)) \
            or len(step_runs) != len(record_runs):
        report("step-coverage",
               f"steps reference {len(step_runs)} handlers but the decoded "
               f"block has {len(record_runs)}, or the order/identity differs")
        return  # per-step key checks below would misalign

    # --- per-step classification and energy-key conservation -------------- #
    position = 0
    for step in node.steps:
        if step[0] == STEP_BATCH:
            _tag, runs, n, cycles, energy_items = step
            if n != len(runs):
                report("energy-keys",
                       f"batch claims {n} instructions for {len(runs)} handlers")
            expected_cycles = 0
            expected_energy: Dict[tuple, int] = {}
            for _ in runs:
                record = decoded.records[position]
                position += 1
                kind, region, taken = _expected_shape(
                    record, decoded.fetch_is_ram, static_data_region)
                if kind != "batch":
                    report("side-exit",
                           f"{record.instr.opcode} (a {kind} instruction) is "
                           f"hidden inside a batch step")
                    continue
                expected_cycles += taken
                key = (taken, decoded.fetch_region, record.klass_value, region)
                expected_energy[key] = expected_energy.get(key, 0) + 1
            if cycles != expected_cycles:
                report("energy-keys",
                       f"batch cycles {cycles} != re-derived {expected_cycles}")
            if dict(energy_items) != expected_energy:
                report("energy-keys",
                       f"batch energy items {sorted(dict(energy_items).items(), key=repr)} "
                       f"!= re-derived {sorted(expected_energy.items(), key=repr)}")
        elif step[0] == STEP_MEM:
            _tag, _run, cycles, ekey_ram, ekey_flash, ekey_none = step
            record = decoded.records[position]
            position += 1
            kind, _region, taken = _expected_shape(
                record, decoded.fetch_is_ram, static_data_region)
            if kind != "mem":
                report("side-exit",
                       f"{record.instr.opcode} (a {kind} instruction) is "
                       f"compiled as a dynamic-memory step")
                continue
            stalled = taken + RAM_CONTENTION_STALL if decoded.fetch_is_ram else taken
            expected = (
                cycles == taken
                and ekey_ram == (stalled, decoded.fetch_region,
                                 record.klass_value, "ram")
                and ekey_flash == (taken, decoded.fetch_region,
                                   record.klass_value, "flash")
                and ekey_none == (taken, decoded.fetch_region,
                                  record.klass_value, None))
            if not expected:
                report("energy-keys",
                       f"memory step keys for `{record.instr}` do not "
                       f"re-derive from the record metadata")
        else:  # STEP_CTRL
            _tag, _run, conditional, cycles, ekey_taken, cycles_nt, ekey_nt = step
            record = decoded.records[position]
            position += 1
            kind, region, taken = _expected_shape(
                record, decoded.fetch_is_ram, static_data_region)
            if kind != "ctrl":
                report("side-exit",
                       f"{record.instr.opcode} (a {kind} instruction) is "
                       f"compiled as a control guard step")
                continue
            if bool(conditional) != bool(record.conditional):
                report("side-exit",
                       f"guard for `{record.instr}` has conditional="
                       f"{conditional!r}, record says {record.conditional!r}")
            expected = (
                cycles == taken
                and cycles_nt == record.cycles_not_taken
                and ekey_taken == (taken, decoded.fetch_region,
                                   record.klass_value, region)
                and ekey_nt == (record.cycles_not_taken, decoded.fetch_region,
                                record.klass_value, region))
            if not expected:
                report("energy-keys",
                       f"guard step keys for `{record.instr}` do not "
                       f"re-derive from the record metadata")


def audit_superblock(program: MachineProgram,
                     sb: Superblock) -> List[AuditFinding]:
    """Audit one superblock; returns all invariant violations found."""
    findings: List[AuditFinding] = []
    sb_key = "{}:{}".format(*sb.entry_payload)
    if not sb.nodes:
        findings.append(AuditFinding("chain", sb_key, sb_key,
                                     "superblock has no nodes"))
        return findings
    if sb.entry_payload != sb.nodes[0].payload:
        findings.append(AuditFinding(
            "chain", sb_key, sb.nodes[0].key,
            f"entry payload {sb.entry_payload!r} is not the first node"))
    for index, node in enumerate(sb.nodes):
        if index + 1 < len(sb.nodes):
            want_next, want_index = sb.nodes[index + 1].payload, index + 1
        elif sb.loop:
            want_next, want_index = sb.nodes[0].payload, 0
        else:
            want_next, want_index = None, -1
        if node.chain_next != want_next or node.next_index != want_index:
            findings.append(AuditFinding(
                "chain", sb_key, node.key,
                f"chain link ({node.chain_next!r}, {node.next_index}) != "
                f"expected ({want_next!r}, {want_index})"))
        _audit_node(program, sb_key, node, findings)
    return findings


def audit_program_superblocks(program: MachineProgram
                              ) -> Tuple[int, List[AuditFinding]]:
    """Audit every superblock currently installed on *program*.

    Returns ``(nodes_checked, findings)``; ``nodes_checked`` counts audited
    :class:`SuperblockNode` instances so callers can assert the audit
    actually saw the traces a run compiled.
    """
    superblocks, _hot_counts = program.superblock_state()
    findings: List[AuditFinding] = []
    checked = 0
    for payload in sorted(superblocks):
        sb = superblocks[payload]
        checked += len(sb.nodes)
        findings.extend(audit_superblock(program, sb))
    return checked, findings
