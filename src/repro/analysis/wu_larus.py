"""Wu–Larus style static branch prediction and block-frequency propagation.

Implements the CFG-shape subset of Wu & Larus, "Static branch frequency and
program profile analysis" (MICRO-27, 1994), which the paper's Section 4.1
loop-depth weighting approximates very coarsely: instead of ``weight**depth``
every branch edge gets a heuristic probability (back edges and loop-staying
edges are likely, loop exits unlikely), loops are contracted innermost-first
into a single node carrying the expected trip count ``1 / (1 - cp)`` (``cp``
the loop's cyclic probability, capped below 1), and frequencies propagate
through the resulting DAG in reverse post-order.

Everything here is bitwise deterministic: loops and latches are processed in
sorted order and all float accumulation happens in fixed (RPO × predecessor
list) order, so the same CFG always produces the same frequencies — sweeps
record them in content-addressed cells and assert bitwise-equal merges.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.cfg import CFGView, reverse_postorder
from repro.analysis.dominators import compute_dominators
from repro.analysis.loops import NaturalLoop, find_natural_loops

#: Probability that a branch with a loop back edge (or loop-staying edge)
#: takes it; Wu–Larus report 88% for the loop-branch heuristic.
LOOP_BRANCH_PROBABILITY = 0.88

#: Cap on a loop's cyclic probability, bounding the implied trip count at
#: ``1 / (1 - cap)`` ≈ 14 — keeps irreducible or pathological shapes finite.
MAX_CYCLIC_PROBABILITY = 0.93


def _ordered_loops(loops: List[NaturalLoop]) -> List[NaturalLoop]:
    """Loops innermost-first: by body size, header name breaking ties."""
    return sorted(loops, key=lambda loop: (len(loop.body), loop.header))


def _innermost_loop(loops: List[NaturalLoop], name: str) -> Optional[NaturalLoop]:
    for loop in loops:  # already innermost-first
        if name in loop.body:
            return loop
    return None


def branch_probabilities(cfg: CFGView) -> Dict[Tuple[str, str], float]:
    """Heuristic probability of every CFG edge ``(block, successor)``.

    Per block the raw weights are: loop back edges and edges staying inside
    the block's innermost loop score :data:`LOOP_BRANCH_PROBABILITY`, edges
    leaving it score the complement, everything else 0.5; the weights are
    then normalised to sum to 1.  Single-successor blocks get probability 1.
    """
    dominators = compute_dominators(cfg)
    loops = _ordered_loops(find_natural_loops(cfg))
    probabilities: Dict[Tuple[str, str], float] = {}

    for name, successors in cfg.successors.items():
        targets: List[str] = []
        for succ in successors:
            if succ in cfg.successors and succ not in targets:
                targets.append(succ)
        if not targets:
            continue
        if len(targets) == 1:
            probabilities[(name, targets[0])] = 1.0
            continue
        inner = _innermost_loop(loops, name)
        weights: List[float] = []
        for succ in targets:
            if succ in dominators.get(name, set()):
                weight = LOOP_BRANCH_PROBABILITY           # back edge
            elif inner is not None and succ in inner.body:
                weight = LOOP_BRANCH_PROBABILITY           # stays in loop
            elif inner is not None:
                weight = 1.0 - LOOP_BRANCH_PROBABILITY     # exits loop
            else:
                weight = 0.5
            weights.append(weight)
        total = sum(weights)
        for succ, weight in zip(targets, weights):
            probabilities[(name, succ)] = weight / total
    return probabilities


def wu_larus_frequencies(cfg: CFGView, entry_frequency: float = 1.0,
                         max_cyclic_probability: float = MAX_CYCLIC_PROBABILITY,
                         ) -> Dict[str, float]:
    """Expected per-invocation execution frequency of every block.

    Returns a dict over all blocks of *cfg*; blocks unreachable from the
    entry get frequency 0.0.
    """
    probabilities = branch_probabilities(cfg)
    dominators = compute_dominators(cfg)
    loops = _ordered_loops(find_natural_loops(cfg))
    rpo = reverse_postorder(cfg)
    preds = cfg.predecessors()

    def is_back_edge(source: str, target: str) -> bool:
        return target in dominators.get(source, set())

    # Expected trip count of each loop, computed innermost-first so outer
    # loops see their inner loops as single nodes with a known multiplier.
    multiplier: Dict[str, float] = {}

    def propagate(head: str, region: Optional[Set[str]]) -> Dict[str, float]:
        """Acyclic frequency propagation (back edges cut) from *head*."""
        freq: Dict[str, float] = {}
        for name in rpo:
            if region is not None and name not in region:
                continue
            if name == head:
                # A head that is itself a loop header (e.g. the function
                # entry) carries its trip-count multiplier; during its own
                # loop's local propagation the multiplier does not exist
                # yet, so this is a no-op there.
                value = multiplier.get(name, 1.0)
            else:
                value = 0.0
                for pred in preds.get(name, []):
                    if region is not None and pred not in region:
                        continue
                    if is_back_edge(pred, name):
                        continue
                    value += freq.get(pred, 0.0) * probabilities.get(
                        (pred, name), 0.0)
                if name in multiplier:
                    value *= multiplier[name]
            freq[name] = value
        return freq

    for loop in loops:
        local = propagate(loop.header, loop.body)
        cyclic = 0.0
        for latch in sorted(set(loop.back_edges)):
            cyclic += local.get(latch, 0.0) * probabilities.get(
                (latch, loop.header), 0.0)
        cyclic = min(cyclic, max_cyclic_probability)
        multiplier[loop.header] = 1.0 / (1.0 - cyclic)

    frequencies = {name: 0.0 for name in cfg.successors}
    if cfg.entry not in cfg.successors:
        return frequencies
    final = propagate(cfg.entry, None)
    for name, value in final.items():
        frequencies[name] = value * entry_frequency
    return frequencies
