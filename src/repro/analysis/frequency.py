"""Static execution-frequency estimation (the paper's estimated ``F_b``).

The paper notes (Section 4.1 and the evaluation) that a simple estimate based
on loop depth is good enough: blocks deeper in loop nests are weighted
geometrically higher.  The evaluation compares this estimate against exact
profiled frequencies (the dots in Figure 5); the profiled counterpart lives in
:mod:`repro.sim.profiler`.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.cfg import CFGView, reachable_blocks
from repro.analysis.loops import loop_depths

#: Assumed iteration count of a loop when nothing better is known.  Ten is the
#: traditional compiler folklore value and matches the paper's observation
#: that a rough estimate suffices.
DEFAULT_LOOP_WEIGHT = 10


def estimate_block_frequencies(cfg: CFGView,
                               loop_weight: int = DEFAULT_LOOP_WEIGHT,
                               entry_frequency: int = 1) -> Dict[str, int]:
    """Estimate how many times each block executes per function invocation.

    Returns ``entry_frequency * loop_weight ** depth(block)`` for reachable
    blocks and 0 for unreachable ones.
    """
    depths = loop_depths(cfg)
    reachable = reachable_blocks(cfg)
    frequencies: Dict[str, int] = {}
    for name in cfg.successors:
        if name not in reachable:
            frequencies[name] = 0
        else:
            frequencies[name] = entry_frequency * (loop_weight ** depths[name])
    return frequencies
