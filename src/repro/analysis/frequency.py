"""Static execution-frequency estimation (the paper's estimated ``F_b``).

The paper notes (Section 4.1 and the evaluation) that a simple estimate based
on loop depth is good enough: blocks deeper in loop nests are weighted
geometrically higher.  The evaluation compares this estimate against exact
profiled frequencies (the dots in Figure 5); the profiled counterpart lives in
:mod:`repro.sim.profiler`.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.cfg import CFGView, reachable_blocks
from repro.analysis.loops import loop_depths

#: Assumed iteration count of a loop when nothing better is known.  Ten is the
#: traditional compiler folklore value and matches the paper's observation
#: that a rough estimate suffices.
DEFAULT_LOOP_WEIGHT = 10

#: Ceiling on an estimated block frequency.  ``loop_weight ** depth`` grows
#: without bound on deep (fuzz-generated) loop nests, and the placement code
#: converts frequencies to floats where huge ints overflow.  10**9 is far
#: above anything a real BEEBS nest reaches (depth <= 4 at the default
#: weight gives 10**4) while staying exactly representable as a float, so
#: clamping never changes results on the benchmark suite.
MAX_BLOCK_FREQUENCY = 10 ** 9


def estimate_block_frequencies(cfg: CFGView,
                               loop_weight: int = DEFAULT_LOOP_WEIGHT,
                               entry_frequency: int = 1) -> Dict[str, int]:
    """Estimate how many times each block executes per function invocation.

    Returns ``entry_frequency * loop_weight ** depth(block)`` for reachable
    blocks — clamped to :data:`MAX_BLOCK_FREQUENCY` — and 0 for unreachable
    ones.
    """
    depths = loop_depths(cfg)
    reachable = reachable_blocks(cfg)
    frequencies: Dict[str, int] = {}
    for name in cfg.successors:
        if name not in reachable:
            frequencies[name] = 0
        else:
            frequencies[name] = min(
                entry_frequency * (loop_weight ** depths[name]),
                MAX_BLOCK_FREQUENCY)
    return frequencies
