"""Call-graph construction over IR modules."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.ir.instructions import Call
from repro.ir.module import Module


@dataclass
class CallGraph:
    """Static call graph: an edge per distinct (caller, callee) pair."""

    callees: Dict[str, Set[str]] = field(default_factory=dict)

    def callers_of(self, name: str) -> List[str]:
        return [caller for caller, targets in self.callees.items() if name in targets]

    def is_leaf(self, name: str) -> bool:
        return not self.callees.get(name)

    def topological_order(self) -> List[str]:
        """Callees before callers; cycles (recursion) broken arbitrarily."""
        order: List[str] = []
        visited: Dict[str, int] = {}

        def visit(node: str) -> None:
            state = visited.get(node, 0)
            if state:
                return
            visited[node] = 1
            for callee in sorted(self.callees.get(node, set())):
                visit(callee)
            visited[node] = 2
            order.append(node)

        for node in sorted(self.callees):
            visit(node)
        return order

    def reachable_from(self, root: str) -> Set[str]:
        seen: Set[str] = set()
        stack = [root]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self.callees.get(node, set()))
        return seen


def build_call_graph(module: Module) -> CallGraph:
    """Build the static call graph of an IR module."""
    graph = CallGraph()
    for function in module.functions.values():
        targets: Set[str] = set()
        for block in function.iter_blocks():
            for instr in block.all_instructions():
                if isinstance(instr, Call):
                    targets.add(instr.callee)
        graph.callees[function.name] = targets
    return graph
