"""Program analyses shared by the optimizer, code generator and placement pass.

The graph-based analyses (dominators, natural loops, loop depth, static
execution-frequency estimation) are written against a generic CFG description
(entry block name + successor map) so they can be reused unchanged on IR
functions and on machine functions.
"""

from repro.analysis.cfg import CFGView, cfg_of_ir_function, reachable_blocks
from repro.analysis.dominators import compute_dominators, immediate_dominators
from repro.analysis.loops import NaturalLoop, find_natural_loops, loop_depths
from repro.analysis.frequency import estimate_block_frequencies, DEFAULT_LOOP_WEIGHT
from repro.analysis.liveness import compute_liveness, LivenessInfo
from repro.analysis.callgraph import build_call_graph, CallGraph
from repro.analysis.stack_usage import estimate_stack_usage, StackUsageReport

__all__ = [
    "CFGView",
    "cfg_of_ir_function",
    "reachable_blocks",
    "compute_dominators",
    "immediate_dominators",
    "NaturalLoop",
    "find_natural_loops",
    "loop_depths",
    "estimate_block_frequencies",
    "DEFAULT_LOOP_WEIGHT",
    "compute_liveness",
    "LivenessInfo",
    "build_call_graph",
    "CallGraph",
    "estimate_stack_usage",
    "StackUsageReport",
]
