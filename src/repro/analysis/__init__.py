"""Program analyses shared by the optimizer, code generator and placement pass.

The graph-based analyses (dominators, natural loops, loop depth, static
execution-frequency estimation) are written against a generic CFG description
(entry block name + successor map) so they can be reused unchanged on IR
functions and on machine functions.  On top of them sit a generic worklist
dataflow solver (:mod:`repro.analysis.dataflow`), the machine-code lint
(:mod:`repro.analysis.verifier`), Wu–Larus static branch frequencies
(:mod:`repro.analysis.wu_larus`) and the superblock invariant auditor
(:mod:`repro.analysis.superblock_audit`).
"""

from repro.analysis.cfg import CFGView, cfg_of_ir_function, reachable_blocks
from repro.analysis.dominators import compute_dominators, immediate_dominators
from repro.analysis.loops import NaturalLoop, find_natural_loops, loop_depths
from repro.analysis.frequency import (estimate_block_frequencies,
                                      DEFAULT_LOOP_WEIGHT, MAX_BLOCK_FREQUENCY)
from repro.analysis.liveness import compute_liveness, LivenessInfo
from repro.analysis.callgraph import build_call_graph, CallGraph
from repro.analysis.stack_usage import estimate_stack_usage, StackUsageReport
from repro.analysis.dataflow import (DataflowResult, solve_dataflow,
                                     FORWARD, BACKWARD, MAY, MUST)
from repro.analysis.verifier import (Diagnostic, MachineVerifier,
                                     verify_machine_program)
from repro.analysis.wu_larus import (branch_probabilities,
                                     wu_larus_frequencies,
                                     LOOP_BRANCH_PROBABILITY,
                                     MAX_CYCLIC_PROBABILITY)
from repro.analysis.superblock_audit import (AuditFinding, audit_superblock,
                                             audit_program_superblocks)

__all__ = [
    "CFGView",
    "cfg_of_ir_function",
    "reachable_blocks",
    "compute_dominators",
    "immediate_dominators",
    "NaturalLoop",
    "find_natural_loops",
    "loop_depths",
    "estimate_block_frequencies",
    "DEFAULT_LOOP_WEIGHT",
    "MAX_BLOCK_FREQUENCY",
    "compute_liveness",
    "LivenessInfo",
    "build_call_graph",
    "CallGraph",
    "estimate_stack_usage",
    "StackUsageReport",
    "DataflowResult",
    "solve_dataflow",
    "FORWARD",
    "BACKWARD",
    "MAY",
    "MUST",
    "Diagnostic",
    "MachineVerifier",
    "verify_machine_program",
    "branch_probabilities",
    "wu_larus_frequencies",
    "LOOP_BRANCH_PROBABILITY",
    "MAX_CYCLIC_PROBABILITY",
    "AuditFinding",
    "audit_superblock",
    "audit_program_superblocks",
]
