"""Machine-level lint over :class:`MachineProgram`.

The verifier statically catches the bug classes that otherwise only surface
as simulator crashes (``fell off the end``, unknown-symbol decode errors,
stack running into the data section) or as *silent* energy corruption (CFG
edge metadata diverging from the instruction stream feeds wrong frequencies
into the placement cost model).  It runs after codegen and after the
flash/RAM placement transformation, and is wired into CI over every BEEBS
benchmark at every optimization level via ``repro-eval analyze --lint``.

Rule catalogue (see DESIGN.md for the failure each rule pre-empts):

``entry``             program entry function missing
``reg-undef``         read of a register no path ever defined
``flags-undef``       bcc/it with no flag-setting cmp on some incoming path
``branch-target``     branch instruction targeting an unknown block
``edge-metadata``     successor metadata inconsistent with the instructions
``fallthrough``       control can fall off the end of a block
``unreachable``       block not reachable from the function entry
``call-target``       ``bl`` to a function the program does not define
``call-graph``        ``bl`` present but ``makes_calls`` unset (frame lies)
``stack-depth``       static worst-case stack exceeds the layout's reserve

The register and flag rules are phrased as dataflow problems on the generic
worklist solver: defined-registers is a forward may-analysis (a register is
usable if *some* path defined it — the simulator zero-initialises, so only
never-defined reads are bugs), reaching-flags is a forward must-analysis
(flags must be set on *every* incoming path for a conditional to be
meaningful).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set

from repro.analysis.cfg import CFGView, reachable_blocks
from repro.analysis.dataflow import FORWARD, MAY, MUST, solve_dataflow
from repro.analysis.stack_usage import estimate_stack_usage
from repro.isa.instructions import MachineInstr, Opcode, RegList, Sym
from repro.isa.registers import ARG_REGS, LR, R0, SP, Reg
from repro.machine.blocks import MachineBlock, MachineFunction, TerminatorKind
from repro.machine.program import MachineProgram

#: The single dataflow fact tracked by the reaching-flags analysis.
_FLAGS = "flags"

#: Opcodes that branch directly to a block label of the same function.
_BLOCK_BRANCHES = {Opcode.B, Opcode.BCC, Opcode.CBZ, Opcode.CBNZ,
                   Opcode.LDR_PC_LIT}


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding."""

    rule: str
    function: str
    block: Optional[str]
    message: str

    def __str__(self) -> str:
        where = self.function if self.block is None else \
            f"{self.function}/{self.block}"
        return f"[{self.rule}] {where}: {self.message}"


def _branch_target_name(instr: MachineInstr) -> Optional[str]:
    """The block label a direct branch jumps to, or None."""
    if instr.opcode in (Opcode.B, Opcode.BCC, Opcode.LDR_PC_LIT):
        operand = instr.operands[0]
    elif instr.opcode in (Opcode.CBZ, Opcode.CBNZ):
        operand = instr.operands[1]
    else:
        return None
    return operand.name if isinstance(operand, Sym) else None


class MachineVerifier:
    """Lint a machine program; collect :class:`Diagnostic` records."""

    def __init__(self, program: MachineProgram, stack_reserve: int = 1024):
        self.program = program
        self.stack_reserve = stack_reserve
        self.diagnostics: List[Diagnostic] = []

    # ------------------------------------------------------------------ #
    def run(self) -> List[Diagnostic]:
        self.diagnostics = []
        if self.program.entry not in self.program.functions:
            self._report("entry", self.program.entry, None,
                         "program entry function is not defined")
        for function in self.program.iter_functions():
            if not function.block_order:
                self._report("fallthrough", function.name, None,
                             "function has no blocks")
                continue
            cfg = _cfg_of_function(function)
            reachable = reachable_blocks(cfg)
            self._check_structure(function, reachable)
            self._check_calls(function)
            self._check_defined_registers(function, cfg, reachable)
            self._check_flags(function, cfg, reachable)
        self._check_stack_depth()
        return self.diagnostics

    # ------------------------------------------------------------------ #
    def _report(self, rule: str, function: str, block: Optional[str],
                message: str) -> None:
        self.diagnostics.append(Diagnostic(rule, function, block, message))

    # ------------------------------------------------------------------ #
    # CFG structure: branch targets, edge metadata, fallthrough, reach
    # ------------------------------------------------------------------ #
    def _check_structure(self, function: MachineFunction,
                         reachable: Set[str]) -> None:
        for block in function.iter_blocks():
            if block.name not in reachable:
                self._report("unreachable", function.name, block.name,
                             "block is not reachable from the function entry")

            static_targets: List[str] = []
            for index, instr in enumerate(block.instructions):
                target = _branch_target_name(instr)
                if instr.opcode in _BLOCK_BRANCHES and target is not None:
                    if target not in function.blocks:
                        self._report(
                            "branch-target", function.name, block.name,
                            f"{instr.opcode} targets unknown block {target!r}")
                    else:
                        static_targets.append(target)
                if instr.is_terminator and index != len(block.instructions) - 1:
                    # The only legal non-final terminator is the conditional
                    # half of a `b<cc>/cbz + b` two-way pair.
                    is_pair = (index == len(block.instructions) - 2
                               and instr.opcode in (Opcode.BCC, Opcode.CBZ,
                                                    Opcode.CBNZ)
                               and block.instructions[-1].opcode is Opcode.B)
                    if not is_pair:
                        self._report(
                            "edge-metadata", function.name, block.name,
                            f"control transfer {instr.opcode} is not the "
                            f"block terminator (instruction {index})")

            successors = block.successors()
            for succ in successors:
                if succ not in function.blocks:
                    self._report("edge-metadata", function.name, block.name,
                                 f"successor metadata names unknown block "
                                 f"{succ!r}")
            for target in static_targets:
                if target not in successors:
                    self._report(
                        "edge-metadata", function.name, block.name,
                        f"branch to {target!r} missing from successor "
                        f"metadata {successors!r}")

            kind = block.terminator_kind()
            if kind is TerminatorKind.FALLTHROUGH and block.fallthrough is None:
                self._report("fallthrough", function.name, block.name,
                             "control falls off the end of the block")
            if kind in (TerminatorKind.CONDITIONAL,
                        TerminatorKind.SHORT_CONDITIONAL):
                last = block.instructions[-1]
                if last.opcode is not Opcode.B and block.fallthrough is None:
                    self._report("fallthrough", function.name, block.name,
                                 "conditional terminator has no not-taken "
                                 "successor")

    # ------------------------------------------------------------------ #
    # Call consistency with the callgraph and frame flags
    # ------------------------------------------------------------------ #
    def _check_calls(self, function: MachineFunction) -> None:
        has_call = False
        for block in function.iter_blocks():
            for instr in block.instructions:
                if instr.opcode is not Opcode.BL:
                    continue
                has_call = True
                target = instr.operands[0] if instr.operands else None
                name = getattr(target, "name", None)
                if name is None or name not in self.program.functions:
                    self._report("call-target", function.name, block.name,
                                 f"bl to unknown function {name!r}")
        if has_call and not function.makes_calls:
            # The frame lowering uses makes_calls to reserve the LR save
            # slot; a lying flag corrupts the return address on the stack.
            self._report("call-graph", function.name, None,
                         "function contains bl but makes_calls is False")

    # ------------------------------------------------------------------ #
    # Defined-register analysis (forward, may)
    # ------------------------------------------------------------------ #
    def _entry_defined(self, function: MachineFunction) -> FrozenSet[Reg]:
        args = ARG_REGS[:min(function.num_params, len(ARG_REGS))]
        return frozenset(args) | {SP, LR}

    def _instr_defs(self, instr: MachineInstr) -> List[Reg]:
        if instr.opcode is Opcode.BL:
            # The callee returns in r0 and leaves LR re-usable.
            return [R0, LR]
        return instr.defs()

    def _instr_uses(self, instr: MachineInstr) -> List[Reg]:
        if instr.opcode is Opcode.BL:
            target = instr.operands[0] if instr.operands else None
            callee = self.program.functions.get(getattr(target, "name", None))
            if callee is None:
                return []
            return list(ARG_REGS[:min(callee.num_params, len(ARG_REGS))])
        if instr.opcode is Opcode.PUSH:
            # Prologue pushes save callee-saved registers whose incoming
            # values belong to the caller: reading them is the whole point.
            return []
        return instr.uses()

    def _check_defined_registers(self, function: MachineFunction,
                                 cfg: CFGView, reachable: Set[str]) -> None:
        def transfer(name: str, defined):
            out = set(defined)
            for instr in function.blocks[name].instructions:
                out.update(self._instr_defs(instr))
            return out

        result = solve_dataflow(cfg, transfer, direction=FORWARD, join=MAY,
                                boundary=self._entry_defined(function))
        for block in function.iter_blocks():
            if block.name not in reachable:
                continue
            defined = set(result.in_values.get(block.name, ()))
            reported: Set[Reg] = set()
            for instr in block.instructions:
                for reg in self._instr_uses(instr):
                    if reg not in defined and reg not in reported:
                        reported.add(reg)
                        self._report(
                            "reg-undef", function.name, block.name,
                            f"{reg.name} is read by `{instr}` but never "
                            f"defined on any path")
                defined.update(self._instr_defs(instr))

    # ------------------------------------------------------------------ #
    # Reaching-flags analysis (forward, must)
    # ------------------------------------------------------------------ #
    def _check_flags(self, function: MachineFunction, cfg: CFGView,
                     reachable: Set[str]) -> None:
        def transfer(name: str, flags):
            state = _FLAGS in flags
            for instr in function.blocks[name].instructions:
                if instr.opcode is Opcode.CMP:
                    state = True
                elif instr.opcode is Opcode.BL:
                    # The callee's own compares leave unrelated flag values.
                    state = False
            return {_FLAGS} if state else ()

        result = solve_dataflow(cfg, transfer, direction=FORWARD, join=MUST,
                                boundary=(), init={_FLAGS})
        for block in function.iter_blocks():
            if block.name not in reachable:
                continue
            state = _FLAGS in result.in_values.get(block.name, frozenset())
            reported = False
            for instr in block.instructions:
                reads_flags = (instr.opcode in (Opcode.BCC, Opcode.IT)
                               or instr.predicated)
                if reads_flags and not state and not reported:
                    reported = True
                    self._report(
                        "flags-undef", function.name, block.name,
                        f"`{instr}` reads condition flags that are not set "
                        f"on every incoming path")
                if instr.opcode is Opcode.CMP:
                    state = True
                elif instr.opcode is Opcode.BL:
                    state = False

    # ------------------------------------------------------------------ #
    # Static stack bound vs the layout's reserve
    # ------------------------------------------------------------------ #
    def _check_stack_depth(self) -> None:
        program = self.program
        if program.entry not in program.functions:
            return
        frame_sizes: Dict[str, int] = {}
        call_edges: Dict[str, Set[str]] = {}
        for function in program.iter_functions():
            size = function.frame_size + 4 * len(function.saved_registers)
            if function.makes_calls:
                size += 4  # the pushed return address
            frame_sizes[function.name] = size
            call_edges[function.name] = set(function.callee_names())
        report = estimate_stack_usage(frame_sizes, call_edges, program.entry)
        if report.worst_case > self.stack_reserve:
            chain = " -> ".join(report.worst_chain)
            self._report(
                "stack-depth", program.entry, None,
                f"static worst-case stack {report.worst_case}B exceeds the "
                f"layout reserve {self.stack_reserve}B (chain: {chain})")


def _cfg_of_function(function: MachineFunction) -> CFGView:
    return CFGView(entry=function.block_order[0],
                   successors={block.name: block.successors()
                               for block in function.iter_blocks()})


def verify_machine_program(program: MachineProgram,
                           stack_reserve: int = 1024) -> List[Diagnostic]:
    """Run every lint rule over *program*; returns the findings."""
    return MachineVerifier(program, stack_reserve=stack_reserve).run()
