"""Generic worklist dataflow framework.

Analyses are phrased over a :class:`CFGView` (entry block + successor map)
with a per-block transfer function, a direction and a lattice join, so the
same solver backs liveness (backward/may), the machine verifier's
defined-register analysis (forward/may) and the reaching-flags analysis
(forward/must).  Values are frozensets of arbitrary hashable facts.

The solver seeds the worklist with *every* block — including blocks not
reachable from the entry — so clients that want a fixpoint over dead code
(liveness feeding the register allocator does) get one, and iterates in
reverse post-order (forward) or post-order (backward), which converges in
a couple of passes on reducible graphs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, Optional

from repro.analysis.cfg import CFGView, reverse_postorder

FORWARD = "forward"
BACKWARD = "backward"
MAY = "may"    # union join (facts that hold on *some* path)
MUST = "must"  # intersection join (facts that hold on *every* path)


@dataclass
class DataflowResult:
    """Fixpoint of a dataflow problem.

    ``in_values[b]`` is the joined value flowing *into* the transfer function
    of block ``b`` — the block-start value for a forward analysis, the
    block-end value for a backward one.  ``out_values[b]`` is the transfer
    function's result on that input.
    """

    in_values: Dict[str, FrozenSet]
    out_values: Dict[str, FrozenSet]


def solve_dataflow(cfg: CFGView,
                   transfer: Callable[[str, FrozenSet], Iterable],
                   *,
                   direction: str = FORWARD,
                   join: str = MAY,
                   boundary: Iterable = (),
                   init: Optional[Iterable] = None) -> DataflowResult:
    """Solve a dataflow problem to its least (may) / greatest (must) fixpoint.

    ``transfer(name, value)`` maps a block's joined input value to its output
    value.  ``boundary`` is the value at the graph boundary: the entry block
    for forward problems, blocks without (known) successors for backward
    ones.  ``init`` is the starting value of every block's output — it
    defaults to the empty set for may-problems and is *required* for
    must-problems, where it plays the role of the lattice top (the universe
    of facts); intersection from an empty starting value would pin every
    block to the bottom.
    """
    if direction not in (FORWARD, BACKWARD):
        raise ValueError(f"unknown direction {direction!r}")
    if join not in (MAY, MUST):
        raise ValueError(f"unknown join {join!r}")
    if join == MUST and init is None:
        raise ValueError("must-analyses need an explicit init (universe) value")
    boundary_value = frozenset(boundary)
    init_value = frozenset(init) if init is not None else frozenset()

    names = list(cfg.successors)
    known_succs = {name: [s for s in succs if s in cfg.successors]
                   for name, succs in cfg.successors.items()}
    if direction == FORWARD:
        join_sources = cfg.predecessors()
        propagate_to = known_succs
    else:
        join_sources = known_succs
        propagate_to = cfg.predecessors()

    order = reverse_postorder(cfg)
    in_order = set(order)
    order += [name for name in names if name not in in_order]
    if direction == BACKWARD:
        order.reverse()

    in_values: Dict[str, FrozenSet] = {}
    out_values: Dict[str, FrozenSet] = {name: init_value for name in names}

    pending = deque(order)
    on_list = set(order)
    while pending:
        name = pending.popleft()
        on_list.discard(name)
        inputs = [out_values[source] for source in join_sources[name]]
        at_boundary = (name == cfg.entry if direction == FORWARD
                       else not cfg.successors[name])
        if at_boundary:
            inputs.append(boundary_value)
        if not inputs:
            joined = init_value if join == MUST else frozenset()
        elif join == MAY:
            joined = frozenset().union(*inputs)
        else:
            joined = inputs[0].intersection(*inputs[1:])
        new_out = frozenset(transfer(name, joined))
        if joined != in_values.get(name) or new_out != out_values[name]:
            in_values[name] = joined
            out_values[name] = new_out
            for target in propagate_to[name]:
                if target not in on_list:
                    on_list.add(target)
                    pending.append(target)
    return DataflowResult(in_values=in_values, out_values=out_values)
