"""Dominator analysis (iterative dataflow formulation)."""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.analysis.cfg import CFGView, reachable_blocks, reverse_postorder


def compute_dominators(cfg: CFGView) -> Dict[str, Set[str]]:
    """Return, for every reachable block, the set of blocks dominating it.

    A block always dominates itself.  Unreachable blocks are omitted from the
    result, which is the behaviour the loop analysis expects.
    """
    reachable = reachable_blocks(cfg)
    all_blocks = set(reachable)
    dominators: Dict[str, Set[str]] = {
        name: ({cfg.entry} if name == cfg.entry else set(all_blocks))
        for name in reachable
    }
    preds = cfg.predecessors()

    order = [name for name in reverse_postorder(cfg) if name in reachable]
    changed = True
    while changed:
        changed = False
        for name in order:
            if name == cfg.entry:
                continue
            incoming = [dominators[p] for p in preds.get(name, []) if p in reachable]
            if incoming:
                new_set = set.intersection(*incoming)
            else:
                new_set = set()
            new_set = new_set | {name}
            if new_set != dominators[name]:
                dominators[name] = new_set
                changed = True
    return dominators


def immediate_dominators(cfg: CFGView) -> Dict[str, Optional[str]]:
    """Return the immediate dominator of every reachable block (entry -> None)."""
    dominators = compute_dominators(cfg)
    idom: Dict[str, Optional[str]] = {}
    for name, doms in dominators.items():
        if name == cfg.entry:
            idom[name] = None
            continue
        strict = doms - {name}
        # The immediate dominator is the strict dominator dominated by all
        # other strict dominators (the deepest one in the dominator tree).
        best = None
        for candidate in strict:
            if all(other in dominators[candidate] or candidate == other
                   for other in strict):
                best = candidate
                break
        idom[name] = best
    return idom


def dominates(dominators: Dict[str, Set[str]], a: str, b: str) -> bool:
    """True if block *a* dominates block *b* under the precomputed sets."""
    return a in dominators.get(b, set())
