"""Backward liveness analysis over virtual registers.

Works on any function-like object whose blocks expose ``all_instructions()``
and ``successors()`` and whose instructions expose ``defs()`` and ``uses()``
(the machine representation before register allocation does).  The register
allocator consumes the per-block live-out sets and derives live intervals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set


@dataclass
class LivenessInfo:
    """Per-block liveness sets."""

    live_in: Dict[str, Set] = field(default_factory=dict)
    live_out: Dict[str, Set] = field(default_factory=dict)
    use: Dict[str, Set] = field(default_factory=dict)
    defs: Dict[str, Set] = field(default_factory=dict)


def compute_liveness(function, only_virtual: bool = True) -> LivenessInfo:
    """Compute live-in/live-out sets for every block of *function*.

    With ``only_virtual`` (the default) physical registers are ignored, which
    is what the linear-scan allocator wants; the simulator never needs
    liveness.
    """
    info = LivenessInfo()
    blocks = list(function.iter_blocks())

    def keep(reg) -> bool:
        return (not only_virtual) or getattr(reg, "virtual", False)

    for block in blocks:
        use_set: Set = set()
        def_set: Set = set()
        for instr in block.all_instructions():
            for reg in instr.uses():
                if keep(reg) and reg not in def_set:
                    use_set.add(reg)
            for reg in instr.defs():
                if keep(reg):
                    def_set.add(reg)
        info.use[block.name] = use_set
        info.defs[block.name] = def_set
        info.live_in[block.name] = set()
        info.live_out[block.name] = set()

    changed = True
    while changed:
        changed = False
        for block in reversed(blocks):
            name = block.name
            live_out: Set = set()
            for succ in block.successors():
                live_out |= info.live_in.get(succ, set())
            live_in = info.use[name] | (live_out - info.defs[name])
            if live_out != info.live_out[name] or live_in != info.live_in[name]:
                info.live_out[name] = live_out
                info.live_in[name] = live_in
                changed = True
    return info
