"""Backward liveness analysis over virtual (or machine) registers.

Works on any function-like object whose blocks expose ``all_instructions()``
and ``successors()`` and whose instructions expose ``defs()`` and ``uses()``
(the machine representation before register allocation does).  The register
allocator consumes the per-block live-out sets and derives live intervals.

The fixpoint itself is delegated to the generic worklist solver in
:mod:`repro.analysis.dataflow` as a backward may-problem: a register is live
out of a block if it is live into *some* successor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set

from repro.analysis.cfg import CFGView
from repro.analysis.dataflow import BACKWARD, MAY, solve_dataflow


@dataclass
class LivenessInfo:
    """Per-block liveness sets."""

    live_in: Dict[str, Set] = field(default_factory=dict)
    live_out: Dict[str, Set] = field(default_factory=dict)
    use: Dict[str, Set] = field(default_factory=dict)
    defs: Dict[str, Set] = field(default_factory=dict)


def compute_liveness(function, only_virtual: bool = True) -> LivenessInfo:
    """Compute live-in/live-out sets for every block of *function*.

    With ``only_virtual`` (the default) physical registers are ignored, which
    is what the linear-scan allocator wants; ``only_virtual=False`` analyses
    the post-allocation machine registers instead.
    """
    info = LivenessInfo()
    blocks = list(function.iter_blocks())
    if not blocks:
        return info

    def keep(reg) -> bool:
        return (not only_virtual) or getattr(reg, "virtual", False)

    for block in blocks:
        use_set: Set = set()
        def_set: Set = set()
        for instr in block.all_instructions():
            for reg in instr.uses():
                if keep(reg) and reg not in def_set:
                    use_set.add(reg)
            for reg in instr.defs():
                if keep(reg):
                    def_set.add(reg)
        info.use[block.name] = use_set
        info.defs[block.name] = def_set

    cfg = CFGView(entry=blocks[0].name,
                  successors={block.name: list(block.successors())
                              for block in blocks})

    def transfer(name: str, live_out):
        return info.use[name] | (live_out - info.defs[name])

    result = solve_dataflow(cfg, transfer, direction=BACKWARD, join=MAY)
    for block in blocks:
        info.live_out[block.name] = set(result.in_values.get(block.name, ()))
        info.live_in[block.name] = set(result.out_values.get(block.name, ()))
    return info
