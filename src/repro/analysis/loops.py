"""Natural-loop detection and per-block loop depth.

Loop depth drives the paper's *static* execution-frequency estimate
(Section 4.1, parameter ``F_b``): a block nested ``d`` loops deep is assumed
to execute ``weight**d`` times more often than straight-line code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.analysis.cfg import CFGView, reachable_blocks
from repro.analysis.dominators import compute_dominators


@dataclass
class NaturalLoop:
    """A natural loop: header block plus the set of blocks in its body."""

    header: str
    body: Set[str] = field(default_factory=set)
    back_edges: List[str] = field(default_factory=list)

    def __contains__(self, block: str) -> bool:
        return block in self.body


def find_natural_loops(cfg: CFGView) -> List[NaturalLoop]:
    """Find all natural loops via back edges (edges to a dominator).

    Loops sharing a header are merged, matching the usual definition used by
    loop-depth computations.
    """
    dominators = compute_dominators(cfg)
    reachable = reachable_blocks(cfg)
    preds = cfg.predecessors()
    loops: Dict[str, NaturalLoop] = {}

    for block in reachable:
        for succ in cfg.successors.get(block, []):
            if succ in dominators.get(block, set()):
                # block -> succ is a back edge; succ is the loop header.
                loop = loops.setdefault(succ, NaturalLoop(header=succ, body={succ}))
                loop.back_edges.append(block)
                # Collect the loop body by walking predecessors from the latch.
                stack = [block]
                while stack:
                    current = stack.pop()
                    if current in loop.body:
                        continue
                    loop.body.add(current)
                    stack.extend(p for p in preds.get(current, []) if p in reachable)
    return list(loops.values())


def loop_depths(cfg: CFGView) -> Dict[str, int]:
    """Per-block loop nesting depth (0 for blocks outside any loop)."""
    loops = find_natural_loops(cfg)
    depths = {name: 0 for name in cfg.successors}
    for name in depths:
        depths[name] = sum(1 for loop in loops if name in loop.body)
    return depths
