"""Lowering from the mini-C AST to the register-based IR.

All floating-point operations are lowered to calls into the soft-float
runtime (``__fp_add``, ``__fp_mul``...), so the IR and everything below it is
purely integer.  Float values travel as their IEEE-754 single-precision bit
patterns in ordinary 32-bit virtual registers.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Tuple, Union

from repro.frontend import ast
from repro.frontend.sema import ProgramSymbols, analyze
from repro.frontend.parser import parse_program
from repro.frontend.types import (
    ArrayType,
    FloatType,
    IntType,
    Type,
    VOID,
    is_float,
)
from repro.ir.basicblock import BasicBlock
from repro.ir.builder import IRBuilder
from repro.ir.function import Function
from repro.ir.module import GlobalData, Module
from repro.ir.values import Const, Operand, VReg

#: Names of the soft-float runtime routines the lowering emits calls to.
SOFT_FLOAT_ROUTINES = {
    "add": "__fp_add",
    "sub": "__fp_sub",
    "mul": "__fp_mul",
    "div": "__fp_div",
    "lt": "__fp_lt",
    "le": "__fp_le",
    "eq": "__fp_eq",
    "itof": "__fp_itof",
    "ftoi": "__fp_ftoi",
}


class LoweringError(Exception):
    """Raised when the lowering encounters an unsupported construct."""


def float_to_bits(value: float) -> int:
    """IEEE-754 single-precision bit pattern of *value* as an unsigned int."""
    return struct.unpack("<I", struct.pack("<f", value))[0]


def bits_to_float(bits: int) -> float:
    """Inverse of :func:`float_to_bits`."""
    return struct.unpack("<f", struct.pack("<I", bits & 0xFFFFFFFF))[0]


# Map (mini-C operator, signedness) to IR binary ops for integer operands.
_INT_BINOPS = {
    "+": "add",
    "-": "sub",
    "*": "mul",
    "&": "and",
    "|": "or",
    "^": "xor",
    "<<": "shl",
}

_SIGNED_COMPARES = {"<": "lt", "<=": "le", ">": "gt", ">=": "ge",
                    "==": "eq", "!=": "ne"}
_UNSIGNED_COMPARES = {"<": "lo", "<=": "ls", ">": "hi", ">=": "hs",
                      "==": "eq", "!=": "ne"}

_INVERTED = {"eq": "ne", "ne": "eq", "lt": "ge", "ge": "lt", "gt": "le",
             "le": "gt", "lo": "hs", "hs": "lo", "hi": "ls", "ls": "hi"}


class _FunctionLowering:
    """Lowers a single function definition."""

    def __init__(self, func_ast: ast.FuncDef, symbols: ProgramSymbols,
                 module: Module, is_library: bool):
        self.func_ast = func_ast
        self.symbols = symbols
        self.module = module
        returns_value = func_ast.return_type != VOID
        self.function = Function(
            func_ast.name,
            num_params=len(func_ast.params),
            returns_value=returns_value,
            is_library=is_library,
        )
        self.builder = IRBuilder(self.function)
        # Scope stack: name -> ("vreg", VReg, Type) | ("frame", str, Type)
        self.scopes: List[Dict[str, Tuple[str, object, Type]]] = []
        self.loop_stack: List[Tuple[BasicBlock, BasicBlock]] = []
        self._frame_counter = 0

    # ------------------------------------------------------------------ #
    # Scope handling
    # ------------------------------------------------------------------ #
    def push_scope(self) -> None:
        self.scopes.append({})

    def pop_scope(self) -> None:
        self.scopes.pop()

    def define_scalar(self, name: str, ty: Type) -> VReg:
        reg = self.function.new_vreg()
        self.scopes[-1][name] = ("vreg", reg, ty)
        return reg

    def define_array(self, name: str, ty: ArrayType) -> str:
        self._frame_counter += 1
        frame_name = f"{name}.{self._frame_counter}"
        self.function.add_frame_object(frame_name, ty.length * 4)
        self.scopes[-1][name] = ("frame", frame_name, ty)
        return frame_name

    def lookup(self, name: str) -> Optional[Tuple[str, object, Type]]:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None

    # ------------------------------------------------------------------ #
    # Entry point
    # ------------------------------------------------------------------ #
    def lower(self) -> Function:
        entry = self.builder.new_block("entry")
        self.builder.set_block(entry)
        self.push_scope()
        for index, param in enumerate(self.func_ast.params):
            if isinstance(param.ty, ArrayType):
                # Array parameters arrive as a base address in the param vreg.
                self.scopes[-1][param.name] = ("vreg", self.function.params[index],
                                               param.ty)
            else:
                self.scopes[-1][param.name] = ("vreg", self.function.params[index],
                                               param.ty)
        self.lower_block(self.func_ast.body)
        self.pop_scope()
        self._finish_blocks()
        return self.function

    def _finish_blocks(self) -> None:
        """Terminate any block left open (implicit returns, dead joins)."""
        for block in self.function.iter_blocks():
            if not block.is_terminated:
                self.builder.set_block(block)
                if self.function.returns_value:
                    self.builder.ret(Const(0))
                else:
                    self.builder.ret()

    # ------------------------------------------------------------------ #
    # Statements
    # ------------------------------------------------------------------ #
    def lower_block(self, block: ast.Block) -> None:
        self.push_scope()
        for stmt in block.statements:
            if self.builder.is_terminated:
                break  # unreachable code after return/break/continue
            self.lower_stmt(stmt)
        self.pop_scope()

    def lower_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self.lower_block(stmt)
        elif isinstance(stmt, ast.DeclGroup):
            for decl in stmt.declarations:
                self.lower_var_decl(decl)
        elif isinstance(stmt, ast.VarDecl):
            self.lower_var_decl(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            if stmt.expr is not None:
                self.lower_expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            self.lower_if(stmt)
        elif isinstance(stmt, ast.While):
            self.lower_while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self.lower_do_while(stmt)
        elif isinstance(stmt, ast.For):
            self.lower_for(stmt)
        elif isinstance(stmt, ast.Return):
            self.lower_return(stmt)
        elif isinstance(stmt, ast.Break):
            break_target, _ = self.loop_stack[-1]
            self.builder.jump(break_target)
        elif isinstance(stmt, ast.Continue):
            _, continue_target = self.loop_stack[-1]
            self.builder.jump(continue_target)
        else:
            raise LoweringError(f"unhandled statement {type(stmt).__name__}")

    def lower_var_decl(self, decl: ast.VarDecl) -> None:
        if isinstance(decl.ty, ArrayType):
            frame_name = self.define_array(decl.name, decl.ty)
            if decl.array_init is not None:
                base = self.builder.frame_addr(frame_name)
                for index, expr in enumerate(decl.array_init):
                    value = self.lower_expr(expr)
                    value = self._coerce(value, expr.ty, decl.ty.element)
                    self.builder.store(value, base, Const(index * 4))
            return
        reg = self.define_scalar(decl.name, decl.ty)
        if decl.init is not None:
            value = self.lower_expr(decl.init)
            self.builder.block.append(_mov(reg, value))
        else:
            self.builder.block.append(_mov(reg, Const(0)))

    def lower_if(self, stmt: ast.If) -> None:
        then_block = self.builder.new_block("if.then")
        else_block = self.builder.new_block("if.else") if stmt.otherwise else None
        join_block = self.builder.new_block("if.end")
        self.lower_condition(stmt.cond, then_block, else_block or join_block)

        self.builder.set_block(then_block)
        self.lower_stmt(stmt.then)
        if not self.builder.is_terminated:
            self.builder.jump(join_block)

        if else_block is not None:
            self.builder.set_block(else_block)
            self.lower_stmt(stmt.otherwise)
            if not self.builder.is_terminated:
                self.builder.jump(join_block)

        self.builder.set_block(join_block)

    def lower_while(self, stmt: ast.While) -> None:
        cond_block = self.builder.new_block("while.cond")
        body_block = self.builder.new_block("while.body")
        exit_block = self.builder.new_block("while.end")
        self.builder.jump(cond_block)

        self.builder.set_block(cond_block)
        self.lower_condition(stmt.cond, body_block, exit_block)

        self.loop_stack.append((exit_block, cond_block))
        self.builder.set_block(body_block)
        self.lower_stmt(stmt.body)
        if not self.builder.is_terminated:
            self.builder.jump(cond_block)
        self.loop_stack.pop()

        self.builder.set_block(exit_block)

    def lower_do_while(self, stmt: ast.DoWhile) -> None:
        body_block = self.builder.new_block("do.body")
        cond_block = self.builder.new_block("do.cond")
        exit_block = self.builder.new_block("do.end")
        self.builder.jump(body_block)

        self.loop_stack.append((exit_block, cond_block))
        self.builder.set_block(body_block)
        self.lower_stmt(stmt.body)
        if not self.builder.is_terminated:
            self.builder.jump(cond_block)
        self.loop_stack.pop()

        self.builder.set_block(cond_block)
        self.lower_condition(stmt.cond, body_block, exit_block)

        self.builder.set_block(exit_block)

    def lower_for(self, stmt: ast.For) -> None:
        self.push_scope()
        if stmt.init is not None:
            self.lower_stmt(stmt.init)
        cond_block = self.builder.new_block("for.cond")
        body_block = self.builder.new_block("for.body")
        step_block = self.builder.new_block("for.step")
        exit_block = self.builder.new_block("for.end")
        self.builder.jump(cond_block)

        self.builder.set_block(cond_block)
        if stmt.cond is not None:
            self.lower_condition(stmt.cond, body_block, exit_block)
        else:
            self.builder.jump(body_block)

        self.loop_stack.append((exit_block, step_block))
        self.builder.set_block(body_block)
        self.lower_stmt(stmt.body)
        if not self.builder.is_terminated:
            self.builder.jump(step_block)
        self.loop_stack.pop()

        self.builder.set_block(step_block)
        if stmt.step is not None:
            self.lower_expr(stmt.step)
        self.builder.jump(cond_block)

        self.builder.set_block(exit_block)
        self.pop_scope()

    def lower_return(self, stmt: ast.Return) -> None:
        if stmt.value is None:
            self.builder.ret()
            return
        value = self.lower_expr(stmt.value)
        self.builder.ret(value)

    # ------------------------------------------------------------------ #
    # Conditions (control-flow lowering with short circuit)
    # ------------------------------------------------------------------ #
    def lower_condition(self, expr: ast.Expr, true_block: BasicBlock,
                        false_block: BasicBlock) -> None:
        if isinstance(expr, ast.BinaryOp) and expr.op == "&&":
            middle = self.builder.new_block("land")
            self.lower_condition(expr.lhs, middle, false_block)
            self.builder.set_block(middle)
            self.lower_condition(expr.rhs, true_block, false_block)
            return
        if isinstance(expr, ast.BinaryOp) and expr.op == "||":
            middle = self.builder.new_block("lor")
            self.lower_condition(expr.lhs, true_block, middle)
            self.builder.set_block(middle)
            self.lower_condition(expr.rhs, true_block, false_block)
            return
        if isinstance(expr, ast.UnaryOp) and expr.op == "!":
            self.lower_condition(expr.operand, false_block, true_block)
            return
        if isinstance(expr, ast.BinaryOp) and expr.op in _SIGNED_COMPARES:
            lhs_ty = expr.lhs.ty
            rhs_ty = expr.rhs.ty
            if is_float(lhs_ty) or is_float(rhs_ty):
                value = self._lower_float_compare(expr)
                self.builder.branch("ne", value, Const(0), true_block, false_block)
                return
            cond = self._compare_cond(expr.op, lhs_ty, rhs_ty)
            lhs = self.lower_expr(expr.lhs)
            rhs = self.lower_expr(expr.rhs)
            self.builder.branch(cond, lhs, rhs, true_block, false_block)
            return
        # Generic truthiness: value != 0.
        value = self.lower_expr(expr)
        self.builder.branch("ne", value, Const(0), true_block, false_block)

    def _compare_cond(self, op: str, lhs_ty: Type, rhs_ty: Type) -> str:
        unsigned = (isinstance(lhs_ty, IntType) and not lhs_ty.signed) or \
                   (isinstance(rhs_ty, IntType) and not rhs_ty.signed)
        table = _UNSIGNED_COMPARES if unsigned else _SIGNED_COMPARES
        return table[op]

    # ------------------------------------------------------------------ #
    # Expressions
    # ------------------------------------------------------------------ #
    def lower_expr(self, expr: ast.Expr) -> Operand:
        if isinstance(expr, ast.IntLiteral):
            return Const(expr.value)
        if isinstance(expr, ast.FloatLiteral):
            return Const(float_to_bits(expr.value))
        if isinstance(expr, ast.VarRef):
            return self._lower_var_ref(expr)
        if isinstance(expr, ast.Index):
            address, _ = self._lower_address(expr)
            return self.builder.load(address, Const(0))
        if isinstance(expr, ast.BinaryOp):
            return self._lower_binary(expr)
        if isinstance(expr, ast.UnaryOp):
            return self._lower_unary(expr)
        if isinstance(expr, ast.Conditional):
            return self._lower_ternary(expr)
        if isinstance(expr, ast.Call):
            return self._lower_call(expr)
        if isinstance(expr, ast.Assign):
            return self._lower_assign(expr)
        if isinstance(expr, ast.IncDec):
            return self._lower_incdec(expr)
        if isinstance(expr, ast.Convert):
            return self._lower_convert(expr)
        raise LoweringError(f"unhandled expression {type(expr).__name__}")

    def _lower_var_ref(self, expr: ast.VarRef) -> Operand:
        entry = self.lookup(expr.name)
        if entry is not None:
            kind, value, ty = entry
            if kind == "vreg":
                return value
            # Local array referenced by name: yields its base address.
            return self.builder.frame_addr(value)
        info = self.symbols.globals.get(expr.name)
        if info is None:
            raise LoweringError(f"unknown identifier {expr.name}")
        base = self.builder.addr_of(expr.name)
        if isinstance(info.ty, ArrayType):
            return base
        return self.builder.load(base, Const(0))

    def _lower_address(self, expr: ast.Index) -> Tuple[Operand, Type]:
        """Compute the byte address of an array element."""
        base_expr = expr.base
        if isinstance(base_expr, ast.VarRef):
            entry = self.lookup(base_expr.name)
            if entry is not None:
                kind, value, ty = entry
                base = value if kind == "vreg" else self.builder.frame_addr(value)
                element_ty = ty.element if isinstance(ty, ArrayType) else ty
            else:
                info = self.symbols.globals[base_expr.name]
                base = self.builder.addr_of(base_expr.name)
                element_ty = info.ty.element
        else:
            raise LoweringError("only direct array names can be subscripted")
        index_value = self.lower_expr(expr.index)
        if isinstance(index_value, Const):
            return (self._add_const(base, index_value.value * 4), element_ty)
        scaled = self.builder.binop("shl", index_value, Const(2))
        address = self.builder.binop("add", base, scaled)
        return address, element_ty

    def _add_const(self, base: Operand, offset: int) -> Operand:
        if offset == 0:
            return base
        return self.builder.binop("add", base, Const(offset))

    def _lower_binary(self, expr: ast.BinaryOp) -> Operand:
        op = expr.op
        if op in ("&&", "||"):
            return self._materialize_bool(expr)
        if op in _SIGNED_COMPARES:
            if is_float(expr.lhs.ty) or is_float(expr.rhs.ty):
                return self._lower_float_compare(expr)
            return self._materialize_bool(expr)
        result_ty = expr.ty
        if is_float(result_ty):
            return self._lower_float_binary(expr)
        lhs = self.lower_expr(expr.lhs)
        rhs = self.lower_expr(expr.rhs)
        unsigned = isinstance(result_ty, IntType) and not result_ty.signed
        if op in _INT_BINOPS:
            return self.builder.binop(_INT_BINOPS[op], lhs, rhs)
        if op == "/":
            return self.builder.binop("udiv" if unsigned else "sdiv", lhs, rhs)
        if op == "%":
            return self.builder.binop("urem" if unsigned else "srem", lhs, rhs)
        if op == ">>":
            return self.builder.binop("lshr" if unsigned else "ashr", lhs, rhs)
        raise LoweringError(f"unhandled binary operator {op!r}")

    def _lower_float_binary(self, expr: ast.BinaryOp) -> Operand:
        routines = {"+": "add", "-": "sub", "*": "mul", "/": "div"}
        if expr.op not in routines:
            raise LoweringError(f"unsupported float operator {expr.op!r}")
        lhs = self.lower_expr(expr.lhs)
        rhs = self.lower_expr(expr.rhs)
        callee = SOFT_FLOAT_ROUTINES[routines[expr.op]]
        return self.builder.call(callee, [lhs, rhs])

    def _lower_float_compare(self, expr: ast.BinaryOp) -> Operand:
        lhs = self.lower_expr(expr.lhs)
        rhs = self.lower_expr(expr.rhs)
        op = expr.op
        if op == "<":
            return self.builder.call(SOFT_FLOAT_ROUTINES["lt"], [lhs, rhs])
        if op == "<=":
            return self.builder.call(SOFT_FLOAT_ROUTINES["le"], [lhs, rhs])
        if op == ">":
            return self.builder.call(SOFT_FLOAT_ROUTINES["lt"], [rhs, lhs])
        if op == ">=":
            return self.builder.call(SOFT_FLOAT_ROUTINES["le"], [rhs, lhs])
        if op == "==":
            return self.builder.call(SOFT_FLOAT_ROUTINES["eq"], [lhs, rhs])
        if op == "!=":
            eq = self.builder.call(SOFT_FLOAT_ROUTINES["eq"], [lhs, rhs])
            return self.builder.binop("xor", eq, Const(1))
        raise LoweringError(f"unsupported float comparison {op!r}")

    def _materialize_bool(self, expr: ast.Expr) -> Operand:
        """Lower a boolean-valued expression into a 0/1 virtual register."""
        result = self.function.new_vreg()
        true_block = self.builder.new_block("bool.true")
        false_block = self.builder.new_block("bool.false")
        join_block = self.builder.new_block("bool.end")
        self.lower_condition(expr, true_block, false_block)
        self.builder.set_block(true_block)
        self.builder.block.append(_mov(result, Const(1)))
        self.builder.jump(join_block)
        self.builder.set_block(false_block)
        self.builder.block.append(_mov(result, Const(0)))
        self.builder.jump(join_block)
        self.builder.set_block(join_block)
        return result

    def _lower_unary(self, expr: ast.UnaryOp) -> Operand:
        if expr.op == "!":
            return self._materialize_bool(expr)
        operand = self.lower_expr(expr.operand)
        if expr.op == "-":
            if is_float(expr.ty):
                return self.builder.binop("xor", operand, Const(0x80000000))
            return self.builder.binop("sub", Const(0), operand)
        if expr.op == "~":
            return self.builder.binop("xor", operand, Const(0xFFFFFFFF))
        raise LoweringError(f"unhandled unary operator {expr.op!r}")

    def _lower_ternary(self, expr: ast.Conditional) -> Operand:
        result = self.function.new_vreg()
        then_block = self.builder.new_block("sel.then")
        else_block = self.builder.new_block("sel.else")
        join_block = self.builder.new_block("sel.end")
        self.lower_condition(expr.cond, then_block, else_block)
        self.builder.set_block(then_block)
        value = self.lower_expr(expr.then)
        self.builder.block.append(_mov(result, value))
        self.builder.jump(join_block)
        self.builder.set_block(else_block)
        value = self.lower_expr(expr.otherwise)
        self.builder.block.append(_mov(result, value))
        self.builder.jump(join_block)
        self.builder.set_block(join_block)
        return result

    def _lower_call(self, expr: ast.Call) -> Operand:
        signature = self.symbols.functions[expr.callee]
        args = [self.lower_expr(arg) for arg in expr.args]
        returns_value = signature.return_type != VOID
        result = self.builder.call(expr.callee, args, returns_value=returns_value)
        return result if result is not None else Const(0)

    def _lower_assign(self, expr: ast.Assign) -> Operand:
        target = expr.target
        if isinstance(target, ast.VarRef):
            entry = self.lookup(target.name)
            if entry is not None and entry[0] == "vreg":
                reg, target_ty = entry[1], entry[2]
                value = self._lower_rhs(expr, lambda: reg, target_ty)
                self.builder.block.append(_mov(reg, value))
                return reg
            # Global scalar.
            info = self.symbols.globals[target.name]
            base = self.builder.addr_of(target.name)
            value = self._lower_rhs(
                expr, lambda: self.builder.load(base, Const(0)), info.ty)
            self.builder.store(value, base, Const(0))
            return value
        if isinstance(target, ast.Index):
            address, element_ty = self._lower_address(target)
            value = self._lower_rhs(
                expr, lambda: self.builder.load(address, Const(0)), element_ty)
            self.builder.store(value, address, Const(0))
            return value
        raise LoweringError("unsupported assignment target")

    def _lower_rhs(self, expr: ast.Assign, read_current, target_ty: Type) -> Operand:
        value = self.lower_expr(expr.value)
        if not expr.op:
            return value
        current = read_current()
        if is_float(target_ty):
            routines = {"+": "add", "-": "sub", "*": "mul", "/": "div"}
            callee = SOFT_FLOAT_ROUTINES[routines[expr.op]]
            return self.builder.call(callee, [current, value])
        unsigned = isinstance(target_ty, IntType) and not target_ty.signed
        op = expr.op
        if op in _INT_BINOPS:
            return self.builder.binop(_INT_BINOPS[op], current, value)
        if op == "/":
            return self.builder.binop("udiv" if unsigned else "sdiv", current, value)
        if op == "%":
            return self.builder.binop("urem" if unsigned else "srem", current, value)
        if op == ">>":
            return self.builder.binop("lshr" if unsigned else "ashr", current, value)
        raise LoweringError(f"unsupported compound assignment {op!r}")

    def _lower_incdec(self, expr: ast.IncDec) -> Operand:
        delta = Const(1) if expr.op == "++" else Const(-1)
        target = expr.target
        if isinstance(target, ast.VarRef):
            entry = self.lookup(target.name)
            if entry is not None and entry[0] == "vreg":
                reg = entry[1]
                old = self.builder.mov(reg)
                new = self.builder.binop("add", reg, delta)
                self.builder.block.append(_mov(reg, new))
                return new if expr.prefix else old
            info = self.symbols.globals[target.name]
            base = self.builder.addr_of(target.name)
            old = self.builder.load(base, Const(0))
            new = self.builder.binop("add", old, delta)
            self.builder.store(new, base, Const(0))
            return new if expr.prefix else old
        if isinstance(target, ast.Index):
            address, _ = self._lower_address(target)
            old = self.builder.load(address, Const(0))
            new = self.builder.binop("add", old, delta)
            self.builder.store(new, address, Const(0))
            return new if expr.prefix else old
        raise LoweringError("unsupported ++/-- target")

    def _lower_convert(self, expr: ast.Convert) -> Operand:
        value = self.lower_expr(expr.value)
        from_ty = expr.value.ty
        to_ty = expr.ty
        return self._coerce(value, from_ty, to_ty)

    def _coerce(self, value: Operand, from_ty: Type, to_ty: Type) -> Operand:
        if from_ty == to_ty or from_ty is None or to_ty is None:
            return value
        if is_float(to_ty) and isinstance(from_ty, IntType):
            if isinstance(value, Const):
                return Const(float_to_bits(float(_signed(value.value))))
            return self.builder.call(SOFT_FLOAT_ROUTINES["itof"], [value])
        if isinstance(to_ty, IntType) and is_float(from_ty):
            if isinstance(value, Const):
                return Const(int(bits_to_float(value.value)) & 0xFFFFFFFF)
            return self.builder.call(SOFT_FLOAT_ROUTINES["ftoi"], [value])
        return value


def _signed(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - (1 << 32) if value & 0x80000000 else value


def _mov(dst: VReg, src: Operand):
    from repro.ir.instructions import Mov
    return Mov(dst, src)


# --------------------------------------------------------------------------- #
# Module-level entry points
# --------------------------------------------------------------------------- #
def lower_program(program: ast.Program, symbols: ProgramSymbols,
                  module_name: str = "module", is_library: bool = False) -> Module:
    """Lower an analysed AST program into an IR module."""
    module = Module(module_name)
    for decl in program.globals:
        info = symbols.globals[decl.name]
        words = []
        element_ty = info.ty.element if isinstance(info.ty, ArrayType) else info.ty
        for value in info.init_values:
            if isinstance(element_ty, FloatType):
                words.append(float_to_bits(float(value)))
            else:
                words.append(int(value) & 0xFFFFFFFF)
        module.add_global(GlobalData(decl.name, words, const=info.const))
    for func_ast in program.functions:
        lowering = _FunctionLowering(func_ast, symbols, module, is_library)
        module.add_function(lowering.lower())
    return module


def compile_source_to_ir(source: str, module_name: str = "module",
                         is_library: bool = False) -> Module:
    """Parse, analyse and lower mini-C *source* into an IR module."""
    program = parse_program(source)
    symbols = analyze(program)
    return lower_program(program, symbols, module_name, is_library=is_library)
