"""AST-to-IR lowering."""

from repro.irgen.lowering import lower_program, LoweringError, compile_source_to_ir

__all__ = ["lower_program", "LoweringError", "compile_source_to_ir"]
