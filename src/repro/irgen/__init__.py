"""AST-to-IR lowering: turns the checked mini-C AST into SSA-ish IR.

``lower_program`` walks a semantically-checked AST and emits one IR
function per mini-C function; ``compile_source_to_ir`` bundles the whole
frontend in front of it (lex → parse → sema → lower) for tools and tests.
"""

from repro.irgen.lowering import lower_program, LoweringError, compile_source_to_ir

__all__ = ["lower_program", "LoweringError", "compile_source_to_ir"]
