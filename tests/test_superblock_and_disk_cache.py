"""Tests for trace-compiled superblocks and the persistent disk cache.

Superblocks are a pure performance feature: every result a
:class:`~repro.sim.Simulator` produces with them enabled must be *bitwise*
identical to the decode-once path and to the interpreted oracle.  The disk
cache likewise must be invisible except for speed — corrupt, truncated or
stale entries are rejected loudly and recompiled, never deserialised into
wrong programs.
"""

from __future__ import annotations

import os
import pickle
import threading
import warnings

import pytest

from repro.beebs import get_benchmark
from repro.codegen import CompileOptions, compile_source
from repro.engine.cache import (
    CACHE_CODE_VERSION,
    DISK_FORMAT_VERSION,
    CacheIntegrityWarning,
    ProgramCache,
    program_key,
)
from repro.isa.registers import Reg, _canonical_reg
from repro.machine.program import MachineProgram
from repro.placement import extract_parameters
from repro.sim import Simulator
from repro.transform import apply_placement

#: Benchmarks × levels exercised by the bitwise-parity tests — kept small
#: because the interpreted oracle is slow, but covering both optimization
#: levels and a mix of control/memory/arithmetic heavy kernels.
PARITY_GRID = [
    ("crc32", "O2"),
    ("fdct", "Os"),
    ("2dfir", "O2"),
    ("int_matmult", "Os"),
]

TINY_SOURCE = "int main(void) { int x = 40; return x + 2; }"


def compile_benchmark(name: str, level: str) -> MachineProgram:
    benchmark = get_benchmark(name)
    options = CompileOptions.for_level(level, program_name=benchmark.name)
    return compile_source(benchmark.source, options)


def result_fields(result):
    """Every observable of a simulation, for bitwise comparison."""
    return (
        result.return_value,
        result.cycles,
        result.instructions,
        result.energy_j,
        result.time_s,
        dict(result.cycles_by_section),
        dict(result.profile.counts),
        dict(result.profile.cycles),
    )


# --------------------------------------------------------------------------- #
# Superblock parity
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("name,level", PARITY_GRID)
def test_superblock_three_way_bitwise_parity(name, level):
    program = compile_benchmark(name, level)
    interpreted = Simulator(program, decode_once=False).run()
    decoded = Simulator(program, superblocks=False).run()
    cold = Simulator(program).run()          # compiles superblocks
    warm = Simulator(program).run()          # reuses them via the program

    superblocks, _hot = program.superblock_state()
    assert superblocks, f"{name}/{level}: no superblock ever formed"

    expected = result_fields(interpreted)
    assert result_fields(decoded) == expected
    assert result_fields(cold) == expected
    assert result_fields(warm) == expected


def test_superblocks_invalidated_by_relayout():
    """A placement transform mid-run must drop stale superblocks."""
    program = compile_benchmark("crc32", "O2")
    Simulator(program).run()
    stale, _ = program.superblock_state()
    assert stale, "warm run should have compiled superblocks"

    params = extract_parameters(program)
    eligible = [k for k, p in params.items() if p.eligible][:3]
    assert eligible, "crc32 should have placement-eligible blocks"
    apply_placement(program, eligible)

    fresh, _ = program.superblock_state()
    assert fresh is not stale and not fresh, (
        "re-layout must invalidate the superblock cache")

    after = Simulator(program).run()
    oracle = Simulator(program, decode_once=False).run()
    assert result_fields(after) == result_fields(oracle)

    # And against an independent program that got the same transform but
    # never ran superblocked before the re-layout.
    control = compile_benchmark("crc32", "O2")
    apply_placement(control, eligible)
    control_result = Simulator(control, superblocks=False).run()
    assert result_fields(after) == result_fields(control_result)


def test_superblock_state_survives_pickle_as_empty():
    """Pickling a program drops its superblocks; the copy re-warms itself."""
    program = compile_benchmark("fdct", "O2")
    expected = result_fields(Simulator(program).run())
    superblocks, _ = program.superblock_state()
    assert superblocks

    clone = pickle.loads(pickle.dumps(program))
    cloned_sbs, _ = clone.superblock_state()
    assert not cloned_sbs
    assert result_fields(Simulator(clone).run()) == expected


# --------------------------------------------------------------------------- #
# Disk cache round trips
# --------------------------------------------------------------------------- #
def benchmark_key(name="crc32", level="O2"):
    benchmark = get_benchmark(name)
    options = CompileOptions.for_level(level, program_name=benchmark.name)
    return benchmark.source, options


def entry_path(cache: ProgramCache, source, options) -> str:
    return cache._disk_path(program_key(source, options))


def test_disk_cache_shares_compiles_across_instances(tmp_path):
    source, options = benchmark_key()
    first = ProgramCache(cache_dir=str(tmp_path))
    program = first.get(source, options)
    assert first.stats.compiles == 1
    assert first.stats.disk_misses == 1
    assert os.path.exists(entry_path(first, source, options))

    # A fresh instance (≈ a new worker process) hits disk, never compiles.
    second = ProgramCache(cache_dir=str(tmp_path))
    loaded = second.get(source, options)
    assert second.stats.disk_hits == 1
    assert second.stats.compiles == 0

    assert (result_fields(Simulator(loaded).run())
            == result_fields(Simulator(program).run()))

    # Unpickled programs must use the canonical register singletons — the
    # simulator does `reg is PC`-style identity checks.
    regs = [operand
            for block in loaded.iter_blocks()
            for instr in block.instructions
            for operand in instr.operands
            if isinstance(operand, Reg) and not operand.virtual]
    assert regs
    for reg in regs:
        assert reg is _canonical_reg(reg.index)


@pytest.mark.parametrize("damage", ["garbage", "truncate", "empty"])
def test_corrupt_disk_entries_rejected_and_recompiled(tmp_path, damage):
    source, options = benchmark_key("fdct", "Os")
    writer = ProgramCache(cache_dir=str(tmp_path))
    pristine = result_fields(Simulator(writer.get(source, options)).run())
    path = entry_path(writer, source, options)

    if damage == "garbage":
        with open(path, "wb") as handle:
            handle.write(b"\x00not a pickle at all\xff" * 16)
    elif damage == "truncate":
        size = os.path.getsize(path)
        with open(path, "rb+") as handle:
            handle.truncate(size // 2)
    else:
        open(path, "wb").close()

    reader = ProgramCache(cache_dir=str(tmp_path))
    with pytest.warns(CacheIntegrityWarning):
        recompiled = reader.get(source, options)
    assert reader.stats.compiles == 1
    assert reader.stats.disk_hits == 0
    assert result_fields(Simulator(recompiled).run()) == pristine

    # The recompile healed the entry: the next fresh instance hits disk
    # without a warning.
    healed = ProgramCache(cache_dir=str(tmp_path))
    with warnings.catch_warnings():
        warnings.simplefilter("error", CacheIntegrityWarning)
        healed.get(source, options)
    assert healed.stats.disk_hits == 1


@pytest.mark.parametrize("field,value", [
    ("format", DISK_FORMAT_VERSION + 1),
    ("code_version", CACHE_CODE_VERSION + "-stale"),
    ("key", ("someone-elses-digest", ())),
    ("program", "not a MachineProgram"),
])
def test_mismatched_disk_headers_rejected(tmp_path, field, value):
    """Hand-tampered (or hash-colliding) entries fail the header check."""
    source, options = benchmark_key()
    writer = ProgramCache(cache_dir=str(tmp_path))
    writer.get(source, options)
    path = entry_path(writer, source, options)

    with open(path, "rb") as handle:
        entry = pickle.load(handle)
    entry[field] = value
    with open(path, "wb") as handle:
        pickle.dump(entry, handle)

    reader = ProgramCache(cache_dir=str(tmp_path))
    with pytest.warns(CacheIntegrityWarning, match="stale or mismatched"):
        reader.get(source, options)
    assert reader.stats.compiles == 1
    assert reader.stats.disk_hits == 0


def test_concurrent_writers_and_readers_never_tear(tmp_path):
    """os.replace publication: readers see a whole entry or none at all."""
    options = CompileOptions.for_level("O0", program_name="tiny")
    cache = ProgramCache(cache_dir=str(tmp_path))
    program = cache.get(TINY_SOURCE, options)
    key = program_key(TINY_SOURCE, options)

    failures = []
    stop = threading.Event()

    def writer():
        while not stop.is_set():
            cache._disk_store(key, program)

    def reader():
        for _ in range(200):
            loaded = cache._disk_load(key)
            if loaded is None or not isinstance(loaded, MachineProgram):
                failures.append(loaded)

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        writers = [threading.Thread(target=writer) for _ in range(3)]
        readers = [threading.Thread(target=reader) for _ in range(3)]
        for thread in writers + readers:
            thread.start()
        for thread in readers:
            thread.join()
        stop.set()
        for thread in writers:
            thread.join()

    integrity = [w for w in caught
                 if issubclass(w.category, CacheIntegrityWarning)]
    assert not failures, f"torn or missing reads: {failures[:3]}"
    assert not integrity, [str(w.message) for w in integrity]
    assert Simulator(cache._disk_load(key)).run().return_value == 42


def test_concurrent_cache_instances_one_compile_per_machine(tmp_path):
    """N fresh processes' worth of caches → 1 compile + N-1 disk hits."""
    source, options = benchmark_key("2dfir", "O2")
    ProgramCache(cache_dir=str(tmp_path)).get(source, options)
    hits = 0
    for _ in range(3):
        cache = ProgramCache(cache_dir=str(tmp_path))
        cache.get(source, options)
        assert cache.stats.compiles == 0
        hits += cache.stats.disk_hits
    assert hits == 3


def test_unwritable_cache_dir_degrades_to_memory(tmp_path):
    blocker = tmp_path / "blocked"
    blocker.write_text("a file where the cache dir should be")
    source, options = benchmark_key()
    cache = ProgramCache(cache_dir=str(blocker))
    with pytest.warns(CacheIntegrityWarning, match="could not persist"):
        program = cache.get(source, options)
    assert cache.stats.compiles == 1
    # The memory tier still works.
    assert cache.get(source, options) is program
    assert cache.stats.hits == 1


# --------------------------------------------------------------------------- #
# Snapshot-based mutable copies
# --------------------------------------------------------------------------- #
def test_get_mutable_snapshot_copies_are_isolated(tmp_path):
    source, options = benchmark_key("crc32", "O2")
    cache = ProgramCache(cache_dir=str(tmp_path))
    pristine = cache.get(source, options)
    expected = result_fields(Simulator(pristine, superblocks=False).run())

    copy_a = cache.get_mutable(source, options)
    copy_b = cache.get_mutable(source, options)
    assert copy_a is not copy_b and copy_a is not pristine

    params = extract_parameters(copy_a)
    eligible = [k for k, p in params.items() if p.eligible][:2]
    apply_placement(copy_a, eligible)

    # Mutating one copy moves its blocks but leaves siblings pristine.
    moved = copy_a.find_block(eligible[0])
    assert moved.section == "ram"
    assert copy_b.find_block(eligible[0]).section != "ram"
    assert pristine.find_block(eligible[0]).section != "ram"
    assert result_fields(Simulator(copy_b, superblocks=False).run()) == expected
    assert (result_fields(Simulator(copy_a, superblocks=False).run())[0]
            == expected[0])
