"""Wu–Larus branch probabilities / frequencies and the frequency-mode plumbing."""

import pytest

from repro.analysis import (
    CFGView,
    LOOP_BRANCH_PROBABILITY,
    MAX_BLOCK_FREQUENCY,
    branch_probabilities,
    estimate_block_frequencies,
    wu_larus_frequencies,
)
from repro.beebs import get_benchmark
from repro.codegen import CompileOptions, compile_source
from repro.placement.parameters import FREQUENCY_MODES, extract_parameters


def simple_loop():
    return CFGView(entry="entry", successors={
        "entry": ["header"],
        "header": ["body", "exit"],
        "body": ["header"],
        "exit": [],
    })


def nested_loop():
    # Two-level nest with a dedicated inner exit block, so the inner loop's
    # leaving edge is not simultaneously the outer loop's back edge.
    return CFGView(entry="entry", successors={
        "entry": ["h1"],
        "h1": ["h2", "exit"],
        "h2": ["b2", "x2"],
        "b2": ["h2"],
        "x2": ["h1"],
        "exit": [],
    })


# --------------------------------------------------------------------------- #
# Branch probabilities
# --------------------------------------------------------------------------- #
def test_loop_branch_heuristic_on_simple_loop():
    probabilities = branch_probabilities(simple_loop())
    assert probabilities[("entry", "header")] == 1.0
    assert probabilities[("body", "header")] == 1.0       # back edge, only out
    stay = probabilities[("header", "body")]
    leave = probabilities[("header", "exit")]
    assert stay == pytest.approx(LOOP_BRANCH_PROBABILITY)
    assert leave == pytest.approx(1.0 - LOOP_BRANCH_PROBABILITY)
    assert stay + leave == pytest.approx(1.0)


def test_probabilities_of_straight_line_code_are_even():
    cfg = CFGView(entry="a", successors={"a": ["b", "c"], "b": [], "c": []})
    probabilities = branch_probabilities(cfg)
    assert probabilities[("a", "b")] == pytest.approx(0.5)
    assert probabilities[("a", "c")] == pytest.approx(0.5)


# --------------------------------------------------------------------------- #
# Frequency propagation
# --------------------------------------------------------------------------- #
def test_simple_loop_trip_count_and_mass_conservation():
    frequencies = wu_larus_frequencies(simple_loop())
    # Trip count = 1 / (1 - 0.88); the header runs once per iteration plus
    # the exit test, and exactly unit mass leaves through the exit.
    assert frequencies["header"] == pytest.approx(1.0 / 0.12)
    assert frequencies["body"] == pytest.approx(0.88 / 0.12)
    assert frequencies["exit"] == pytest.approx(1.0)
    assert frequencies["entry"] == pytest.approx(1.0)


def test_nested_loop_frequencies_multiply():
    frequencies = wu_larus_frequencies(nested_loop())
    # The inner loop runs ~1/0.12 times per entry from h1, which itself
    # loops ~1/0.12 times: trip counts multiply into the nest.
    assert frequencies["h2"] > frequencies["h1"] > frequencies["entry"]
    assert frequencies["h2"] == pytest.approx(
        frequencies["h1"] * 0.88 * (1.0 / 0.12))
    assert frequencies["x2"] == pytest.approx(frequencies["h1"] * 0.88)
    assert frequencies["exit"] == pytest.approx(1.0)


def test_unreachable_blocks_get_zero_frequency():
    cfg = CFGView(entry="a", successors={"a": [], "island": ["a"]})
    frequencies = wu_larus_frequencies(cfg)
    assert frequencies["island"] == 0.0
    assert frequencies["a"] == 1.0


def test_cyclic_probability_cap_bounds_pathological_loops():
    # Both successors stay in the loop: uncapped cp would be 1.0.
    cfg = CFGView(entry="h", successors={"h": ["a", "b"], "a": ["h"],
                                         "b": ["h"]})
    frequencies = wu_larus_frequencies(cfg)
    assert frequencies["h"] == pytest.approx(1.0 / (1.0 - 0.93))


def test_frequencies_are_bitwise_deterministic_across_dict_orders():
    forward = simple_loop()
    shuffled = CFGView(entry="entry", successors=dict(
        reversed(list(simple_loop().successors.items()))))
    first = wu_larus_frequencies(forward)
    second = wu_larus_frequencies(shuffled)
    assert first == second  # exact float equality, not approx


# --------------------------------------------------------------------------- #
# frequency_mode plumbing through the placement parameters
# --------------------------------------------------------------------------- #
def test_frequency_modes_constant_lists_all_modes():
    assert FREQUENCY_MODES == ("static", "profile", "wu_larus")


def loop_program():
    return compile_source("""
        int main(void) {
            int total = 0;
            int i = 0;
            while (i < 100) {
                total = total + i;
                i = i + 1;
            }
            return total;
        }
    """, CompileOptions.for_level("O2"))


def test_extract_parameters_accepts_wu_larus_mode():
    static = extract_parameters(loop_program(), frequency_mode="static")
    wu = extract_parameters(loop_program(), frequency_mode="wu_larus")
    assert set(static) == set(wu)
    # Both weight the loop body above straight-line code, with different
    # numbers: static uses weight**depth, Wu–Larus the expected trip count.
    assert max(p.frequency for p in wu.values()) > 1.0
    assert {p.frequency for p in static.values()} != \
        {p.frequency for p in wu.values()}


def test_extract_parameters_is_deterministic_for_wu_larus():
    first = extract_parameters(loop_program(), frequency_mode="wu_larus")
    second = extract_parameters(loop_program(), frequency_mode="wu_larus")
    assert {k: p.frequency for k, p in first.items()} == \
        {k: p.frequency for k, p in second.items()}


def test_extract_parameters_rejects_unknown_mode():
    with pytest.raises(ValueError):
        extract_parameters(loop_program(), frequency_mode="oracle")


def test_cell_key_distinguishes_frequency_modes():
    from repro.engine.engine import ExperimentSpec
    from repro.explore.sweep import SweepCell, cell_key

    def key(mode):
        return cell_key(SweepCell(spec=ExperimentSpec(
            benchmark="crc32", frequency_mode=mode), flash_ram_ratio=None))

    assert key("static") != key("wu_larus") != key("profile")


# --------------------------------------------------------------------------- #
# Frequency clamp regression (satellite): BEEBS untouched, fuzz nests capped
# --------------------------------------------------------------------------- #
def test_clamp_never_fires_on_beebs_frequencies():
    for name in ("crc32", "fdct", "int_matmult"):
        program = compile_source(get_benchmark(name).source,
                                 CompileOptions.for_level("O2"))
        parameters = extract_parameters(program, frequency_mode="static")
        assert parameters
        # Far below the ceiling: depth <= 4 at weight 10 gives 10**4.
        assert max(p.frequency for p in parameters.values()) \
            < MAX_BLOCK_FREQUENCY


def test_deep_synthetic_nest_clamps_to_documented_maximum():
    # h_{i+1} -> h_i are back edges of a 11-deep loop nest chain, so the
    # innermost header's unclamped estimate would be 10**11.
    successors = {"entry": ["h0"], "h0": ["h1", "exit"], "exit": []}
    for i in range(1, 11):
        successors[f"h{i}"] = [f"h{i + 1}", f"h{i - 1}"]
    successors["h11"] = ["h10"]
    cfg = CFGView(entry="entry", successors=successors)
    frequencies = estimate_block_frequencies(cfg, loop_weight=10)
    assert max(frequencies.values()) == MAX_BLOCK_FREQUENCY
    assert frequencies["entry"] == 1
