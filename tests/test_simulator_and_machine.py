"""Simulator, memory system, energy model, layout and frame tests."""

import pytest

from repro.codegen import CompileOptions, compile_source
from repro.isa.instructions import InstrClass
from repro.machine.frame import FrameLayout
from repro.machine.program import FLASH_REGION, RAM_REGION
from repro.sim import EnergyModel, MemoryError_, MemorySystem, Simulator
from repro.sim.energy import DEFAULT_POWER_TABLE
from tests.conftest import compile_and_run


# --------------------------------------------------------------------------- #
# Memory system
# --------------------------------------------------------------------------- #
def test_memory_word_roundtrip_and_regions():
    memory = MemorySystem(FLASH_REGION, RAM_REGION)
    address = RAM_REGION.origin + 16
    memory.write_word(address, 0xDEADBEEF)
    assert memory.read_word(address) == 0xDEADBEEF
    assert memory.read_byte(address) == 0xEF
    assert memory.region_of(address) == "ram"
    assert memory.region_of(FLASH_REGION.origin) == "flash"
    assert memory.region_of(0x1000) is None


def test_memory_rejects_flash_writes_and_unmapped_access():
    memory = MemorySystem(FLASH_REGION, RAM_REGION)
    with pytest.raises(MemoryError_):
        memory.write_word(FLASH_REGION.origin, 1)
    with pytest.raises(MemoryError_):
        memory.read_word(0x12345678)
    # Initialisation (startup data load) may write flash.
    memory.write_word(FLASH_REGION.origin, 1, initializing=True)


# --------------------------------------------------------------------------- #
# Energy model
# --------------------------------------------------------------------------- #
def test_ram_power_lower_than_flash_for_every_class():
    table = DEFAULT_POWER_TABLE
    for instr_class in InstrClass:
        assert table.power_mw("ram", instr_class) < table.power_mw("flash", instr_class)


def test_flash_data_load_from_ram_stays_expensive():
    table = DEFAULT_POWER_TABLE
    cheap = table.power_mw("ram", InstrClass.LOAD, data_region="ram")
    expensive = table.power_mw("ram", InstrClass.LOAD, data_region="flash")
    assert expensive > cheap
    assert expensive > 0.9 * table.power_mw("flash", InstrClass.LOAD)


def test_energy_model_coefficients_ordering():
    model = EnergyModel()
    assert model.e_ram < model.e_flash
    assert model.energy_j(2, "flash", InstrClass.ALU) == pytest.approx(
        2 * model.cycle_time_s * DEFAULT_POWER_TABLE.power_mw("flash", InstrClass.ALU) * 1e-3)


# --------------------------------------------------------------------------- #
# Frame layout
# --------------------------------------------------------------------------- #
def test_frame_layout_assigns_aligned_offsets():
    layout = FrameLayout()
    first = layout.add("a", 4)
    second = layout.add("b", 10)
    third = layout.add("c", 4)
    assert first == 0
    assert second == 4
    assert third == 16  # 10 rounded up to 12, aligned
    assert layout.aligned_size(8) % 8 == 0


# --------------------------------------------------------------------------- #
# Program layout
# --------------------------------------------------------------------------- #
def test_layout_places_code_in_flash_and_data_in_ram():
    source = """
        const int table[4] = {1, 2, 3, 4};
        int counters[4];
        int main(void) { counters[0] = table[0]; return counters[0]; }
    """
    program = compile_source(source, CompileOptions.for_level("O2"))
    assert FLASH_REGION.contains(program.global_addresses["table"])
    assert RAM_REGION.contains(program.global_addresses["counters"])
    for block in program.iter_blocks():
        assert FLASH_REGION.contains(block.address)
    assert program.ram_code_size() == 0


def test_layout_reports_sizes():
    program = compile_source("int main(void) { return 1; }",
                             CompileOptions.for_level("O2"))
    assert program.code_size() > 0
    assert program.mutable_data_size() == 0


# --------------------------------------------------------------------------- #
# Simulator behaviour
# --------------------------------------------------------------------------- #
def test_simulator_profile_counts_loop_iterations():
    source = """
        int main(void) {
            int s = 0;
            for (int i = 0; i < 25; ++i) { s += i; }
            return s;
        }
    """
    result = compile_and_run(source, "O2")
    assert result.return_value == 300
    hottest_key, hottest_count = result.profile.hottest(1)[0]
    assert hottest_count >= 25
    assert result.profile.total_executions() >= 25


def test_simulator_detects_infinite_loops():
    from repro.sim import SimulationError
    program = compile_source("int main(void) { while (1) { } return 0; }",
                             CompileOptions.for_level("O0"))
    simulator = Simulator(program, max_instructions=10_000)
    with pytest.raises(SimulationError):
        simulator.run()


def test_simulator_entry_arguments():
    program = compile_source("int triple(int x) { return 3 * x; } "
                             "int main(void) { return triple(2); }",
                             CompileOptions.for_level("O2"))
    result = Simulator(program).run(entry="triple", args=[14])
    assert result.signed_return_value == 42


def test_simulator_unknown_entry_raises():
    from repro.sim import SimulationError
    program = compile_source("int main(void) { return 0; }",
                             CompileOptions.for_level("O2"))
    with pytest.raises(SimulationError):
        Simulator(program).run(entry="nope")


def test_cycles_by_section_accounts_everything():
    source = "int main(void) { int s = 0; for (int i = 0; i < 10; ++i) s += i; return s; }"
    result = compile_and_run(source, "O2")
    assert result.cycles_by_section["flash"] == result.cycles
    assert result.cycles_by_section["ram"] == 0
    assert result.time_s == pytest.approx(result.cycles / 24_000_000)
    assert 5.0 < result.average_power_mw < 20.0


def test_negative_return_values_are_sign_extended():
    assert compile_and_run("int main(void) { return -7; }", "O2").signed_return_value == -7
