"""Machine-code lint: every rule must fire on a targeted mutation.

Each test takes a freshly compiled, lint-clean program, injects exactly one
class of corruption, and asserts the corresponding rule reports it.  This is
the proof that the CI gate (``repro-eval analyze --lint``) is not vacuous:
a lint that passes on every BEEBS benchmark *and* catches each mutation
here actually discriminates.
"""

import pytest

from repro.analysis import verify_machine_program
from repro.analysis.dataflow import (BACKWARD, FORWARD, MAY, MUST,
                                     solve_dataflow)
from repro.analysis.cfg import CFGView
from repro.beebs import get_benchmark
from repro.codegen import CompileOptions, compile_source
from repro.isa.conditions import Cond
from repro.isa.instructions import MachineInstr, Opcode, Sym, make
from repro.isa.registers import R4, R5
from repro.placement.optimizer import FlashRAMOptimizer, PlacementConfig

SOURCE = """
int helper(int x) {
    int total = 0;
    int i = 0;
    while (i < x) {
        total = total + i;
        i = i + 1;
    }
    return total;
}

int main(void) {
    return helper(10);
}
"""


def fresh_program(level="O2"):
    return compile_source(SOURCE, CompileOptions.for_level(level))


def fired_rules(program, **kwargs):
    return {d.rule for d in verify_machine_program(program, **kwargs)}


# --------------------------------------------------------------------------- #
# Baseline: compiled output is clean, pristine and after placement
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("level", ["O0", "O1", "O2", "O3", "Os"])
def test_compiled_program_is_lint_clean(level):
    assert verify_machine_program(fresh_program(level)) == []


def test_beebs_benchmark_clean_pristine_and_after_placement():
    program = compile_source(get_benchmark("crc32").source,
                             CompileOptions.for_level("O2"))
    assert verify_machine_program(program) == []
    FlashRAMOptimizer(program, config=PlacementConfig(
        x_limit=1.5, solver="greedy")).optimize()
    assert verify_machine_program(program) == []


# --------------------------------------------------------------------------- #
# Mutations: one per rule
# --------------------------------------------------------------------------- #
def test_entry_rule_fires_on_missing_entry_function():
    program = fresh_program()
    program.entry = "does_not_exist"
    assert "entry" in fired_rules(program)


def test_unreachable_rule_fires_on_orphan_block():
    program = fresh_program()
    function = program.functions["main"]
    orphan = function.add_block("orphan")
    orphan.append(make(Opcode.B, Sym(function.block_order[0])))
    orphan.branch_target = function.block_order[0]
    assert "unreachable" in fired_rules(program)


def test_branch_target_rule_fires_on_unknown_label():
    program = fresh_program()
    for function in program.iter_functions():
        for block in function.iter_blocks():
            for index, instr in enumerate(block.instructions):
                if instr.opcode is Opcode.B:
                    block.instructions[index] = make(Opcode.B, Sym("nowhere"))
                    assert "branch-target" in fired_rules(program)
                    return
    pytest.fail("compiled program contains no direct branch to mutate")


def test_edge_metadata_rule_fires_on_midblock_branch():
    program = fresh_program()
    function = program.functions["helper"]
    # A branch buried before the terminator: the instruction stream now
    # disagrees with the block's recorded edges.
    block = function.entry_block
    block.instructions.insert(0, make(Opcode.B, Sym(function.block_order[0])))
    assert "edge-metadata" in fired_rules(program)


def test_edge_metadata_rule_fires_on_unknown_successor():
    program = fresh_program()
    function = program.functions["main"]
    function.entry_block.extra_target = "phantom"
    assert "edge-metadata" in fired_rules(program)


def test_fallthrough_rule_fires_on_open_ended_block():
    program = fresh_program()
    function = program.functions["main"]
    entry = function.entry_block
    dangling = function.add_block("dangling")
    dangling.append(make(Opcode.NOP))   # no terminator, no fallthrough edge
    entry.extra_target = "dangling"
    assert "fallthrough" in fired_rules(program)


def test_call_target_rule_fires_on_unknown_callee():
    program = fresh_program()
    for function in program.iter_functions():
        for block in function.iter_blocks():
            for index, instr in enumerate(block.instructions):
                if instr.opcode is Opcode.BL:
                    block.instructions[index] = make(Opcode.BL, Sym("missing"))
                    assert "call-target" in fired_rules(program)
                    return
    pytest.fail("compiled program contains no call to mutate")


def test_call_graph_rule_fires_on_lying_makes_calls():
    program = fresh_program()
    assert program.functions["main"].makes_calls
    program.functions["main"].makes_calls = False
    assert "call-graph" in fired_rules(program)


def test_reg_undef_rule_fires_on_read_of_never_defined_register():
    program = fresh_program()
    entry = program.functions["main"].entry_block
    # main has no parameters, so r5 is defined on no path at this point.
    entry.instructions.insert(0, make(Opcode.MOV, R4, R5))
    diagnostics = verify_machine_program(program)
    assert any(d.rule == "reg-undef" and "r5" in d.message
               for d in diagnostics)


def test_flags_undef_rule_fires_on_conditional_without_cmp():
    program = fresh_program()
    entry = program.functions["main"].entry_block
    entry.instructions.insert(0, MachineInstr(Opcode.IT, [], cond=Cond.EQ))
    assert "flags-undef" in fired_rules(program)


def test_stack_depth_rule_fires_when_reserve_is_too_small():
    program = fresh_program()
    diagnostics = verify_machine_program(program, stack_reserve=1)
    assert any(d.rule == "stack-depth" for d in diagnostics)
    assert verify_machine_program(program, stack_reserve=1 << 20) == []


# --------------------------------------------------------------------------- #
# The generic worklist solver behind the register/flag rules
# --------------------------------------------------------------------------- #
def diamond():
    return CFGView(entry="a", successors={"a": ["b", "c"], "b": ["d"],
                                          "c": ["d"], "d": []})


def test_forward_may_union_at_join():
    defs = {"a": {"x"}, "b": {"y"}, "c": {"z"}, "d": set()}

    def transfer(name, facts):
        return set(facts) | defs[name]

    result = solve_dataflow(diamond(), transfer, direction=FORWARD, join=MAY)
    assert set(result.in_values["d"]) == {"x", "y", "z"}


def test_forward_must_intersection_at_join():
    gen = {"a": set(), "b": {"f"}, "c": set(), "d": set()}

    def transfer(name, facts):
        return set(facts) | gen[name]

    result = solve_dataflow(diamond(), transfer, direction=FORWARD, join=MUST,
                            boundary=(), init={"f"})
    # Only the b-path sets the fact, so the join at d must drop it.
    assert "f" in result.out_values["b"]
    assert "f" not in result.in_values["d"]


def test_backward_analysis_runs_against_the_edges():
    uses = {"a": set(), "b": set(), "c": set(), "d": {"v"}}

    def transfer(name, facts):
        return set(facts) | uses[name]

    result = solve_dataflow(diamond(), transfer, direction=BACKWARD, join=MAY)
    # The use in d is live-in to every block that reaches it.
    assert all("v" in result.out_values[name] for name in "abcd")


def test_loop_reaches_fixpoint_with_cycles():
    cfg = CFGView(entry="head", successors={"head": ["body", "exit"],
                                            "body": ["head"], "exit": []})
    gen = {"head": set(), "body": {"loop_fact"}, "exit": set()}

    def transfer(name, facts):
        return set(facts) | gen[name]

    result = solve_dataflow(cfg, transfer, direction=FORWARD, join=MAY)
    # The fact generated in the body flows around the back edge into the
    # header and out of the exit.
    assert "loop_fact" in result.in_values["head"]
    assert "loop_fact" in result.in_values["exit"]


def test_must_requires_universe():
    with pytest.raises(ValueError):
        solve_dataflow(diamond(), lambda name, facts: facts,
                       direction=FORWARD, join=MUST)
